//! Time-compressed versions of the paper's three experiments, asserting
//! the qualitative success criteria from DESIGN.md §4: measured tracks
//! generated with a small positive bias; hub paths sum concurrent flows;
//! switch paths isolate them.

use netqos::loadgen::LoadProfile;
use netqos::sim::time::SimDuration;
use netqos_bench::experiment::{run_experiment, ExperimentConfig};
use netqos_bench::stats::{self, StepWindow};
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};

/// Figure 4 shape at 1/10 time scale: staircase tracking with a small
/// positive bias on every step.
#[test]
fn fig4_staircase_tracks_with_positive_bias() {
    let profile = LoadProfile::staircase(12, 100_000, 100_000, 6, 5);
    let loads = vec![Load::new("L", "N1", profile)];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: 48,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "N1".into())],
    };
    let result = run_experiment(&mut tb, &config).unwrap();
    let series = result.recorder.get("S1<->N1").unwrap();

    let background = stats::background_kbps(series, 4.0, 11.0);
    assert!(
        background < 20.0,
        "background should be small, got {background} KB/s"
    );

    let windows: Vec<StepWindow> = (0..5)
        .map(|i| StepWindow {
            from_s: (12 + i * 6) as f64 + 2.0,
            to_s: (12 + (i + 1) * 6) as f64 - 1.0,
            generated_kbps: 100.0 * (i + 1) as f64,
        })
        .collect();
    let rows = stats::step_stats(series, &windows, background);
    for r in &rows {
        // Paper: ~4% positive bias (headers + SNMP); accept 0.5%..8%.
        assert!(
            r.pct_error > 0.5 && r.pct_error < 8.0,
            "step {} KB/s: error {}% out of range",
            r.generated_kbps,
            r.pct_error
        );
        assert!(
            r.max_pct_error < 25.0,
            "max single-sample error {}% too large",
            r.max_pct_error
        );
    }
    // Monotone: higher generated loads measure higher.
    for pair in rows.windows(2) {
        assert!(pair[1].avg_measured > pair[0].avg_measured);
    }
    // After shutdown the measurement returns to background levels.
    let tail = series.mean_used_kbps(44.0, 48.0).unwrap();
    assert!(
        tail < background + 15.0,
        "tail {tail} vs background {background}"
    );
}

/// Figure 5 shape: both hub paths see the *sum* of the overlapping flows.
#[test]
fn fig5_hub_paths_sum_concurrent_flows() {
    let loads = vec![
        Load::new("L", "N1", LoadProfile::pulse(4, 16, 200_000)),
        Load::new("L", "N2", LoadProfile::pulse(8, 20, 200_000)),
    ];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: 24,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "N1".into()), ("S1".into(), "N2".into())],
    };
    let result = run_experiment(&mut tb, &config).unwrap();

    for name in ["S1<->N1", "S1<->N2"] {
        let series = result.recorder.get(name).unwrap();
        let single = series.mean_used_kbps(5.5, 7.5).unwrap();
        let overlap = series.mean_used_kbps(10.0, 15.0).unwrap();
        let late = series.mean_used_kbps(17.5, 19.5).unwrap();
        assert!(
            single > 170.0 && single < 260.0,
            "{name} single-flow window: {single} KB/s"
        );
        assert!(
            overlap > 370.0 && overlap < 480.0,
            "{name} overlap window should sum both flows: {overlap} KB/s"
        );
        assert!(
            late > 170.0 && late < 260.0,
            "{name} late window: {late} KB/s"
        );
    }
}

/// Figure 6 shape: switch paths see only their own traffic; traffic to
/// the shared endpoint S1 appears on both.
#[test]
fn fig6_switch_paths_isolate_flows() {
    let loads = vec![
        Load::new("L", "S2", LoadProfile::pulse(4, 10, 2_000_000)),
        Load::new("L", "S3", LoadProfile::pulse(8, 14, 2_000_000)),
        Load::new("L", "S1", LoadProfile::pulse(18, 24, 2_000_000)),
    ];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: 26,
        poll_period: SimDuration::from_secs(1),
        paths: vec![("S1".into(), "S2".into()), ("S1".into(), "S3".into())],
    };
    let result = run_experiment(&mut tb, &config).unwrap();
    let s12 = result.recorder.get("S1<->S2").unwrap();
    let s13 = result.recorder.get("S1<->S3").unwrap();

    // S2 load visible only on S1<->S2 (window 5.5..7.5 is S2-only).
    let a = s12.mean_used_kbps(5.5, 7.5).unwrap();
    let b = s13.mean_used_kbps(5.5, 7.5).unwrap();
    assert!(a > 1800.0, "S1<->S2 should carry the S2 load, got {a}");
    assert!(b < 100.0, "S1<->S3 must not see the S2 load, got {b}");

    // S3 load visible only on S1<->S3 (window 11.5..13.5 is S3-only).
    let a = s12.mean_used_kbps(11.5, 13.5).unwrap();
    let b = s13.mean_used_kbps(11.5, 13.5).unwrap();
    assert!(a < 100.0, "S1<->S2 must not see the S3 load, got {a}");
    assert!(b > 1800.0, "S1<->S3 should carry the S3 load, got {b}");

    // S1 load visible on both (window 20..23).
    let a = s12.mean_used_kbps(20.0, 23.0).unwrap();
    let b = s13.mean_used_kbps(20.0, 23.0).unwrap();
    assert!(
        a > 1800.0 && b > 1800.0,
        "S1 load must appear on both: {a}, {b}"
    );
}

/// Paper §4.1: hosts without SNMP daemons (S3..S6) are still monitorable
/// by polling the switch's ports.
#[test]
fn agentless_hosts_monitored_via_switch() {
    let loads = vec![Load::new("L", "S4", LoadProfile::pulse(2, 10, 500_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let config = ExperimentConfig {
        duration_s: 12,
        poll_period: SimDuration::from_secs(1),
        // Neither S4 nor S5 runs an agent.
        paths: vec![("S4".into(), "S5".into())],
    };
    let result = run_experiment(&mut tb, &config).unwrap();
    let series = result.recorder.get("S4<->S5").unwrap();
    let loaded = series.mean_used_kbps(4.0, 9.0).unwrap();
    assert!(
        loaded > 450.0 && loaded < 600.0,
        "S4 traffic must be visible through switch polling: {loaded} KB/s"
    );
}
