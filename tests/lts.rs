//! Integration coverage for the long-term stats plane: a monitor run
//! with `lts_dir` set leaves a store behind whose `/query` answers are
//! byte-identical across a process restart and across `netqos lts
//! compact` — the durability contract the whole subsystem hangs on.

use netqos::monitor::live::{build_router, query_response};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{
    compact_store, parse_json, verify_store, HttpRequest, HttpRoute, JsonValue, LtsReader,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "netqos-lts-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn service_with_lts(dir: &std::path::Path) -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        lts_dir: Some(dir.to_path_buf()),
        // Flush every 5 ticks so the run exercises the cadence path, not
        // just the final explicit flush.
        baseline_save_ticks: 5,
        ..ServiceConfig::default()
    };
    MonitoringService::from_model(model, options, config).unwrap()
}

fn get_query(reader: &LtsReader, query: &str) -> (u16, String) {
    let req = HttpRequest {
        method: "GET".into(),
        path: "/query".into(),
        query: query.into(),
        accept: String::new(),
    };
    let resp = query_response(reader, &req);
    (resp.status, resp.body)
}

#[test]
fn query_is_identical_across_restart_and_compact() {
    let dir = tmpdir("restart");

    // First run: 17 ticks (three cadence flushes plus a tail) and an
    // explicit final flush, like the CLI at exit.
    let mut svc = service_with_lts(&dir);
    assert!(svc.lts_enabled(), "store must open");
    svc.run_ticks(17).unwrap();
    svc.flush_lts().expect("final flush");

    let reader = LtsReader::open(&dir);
    let queries = [
        "series=*&range=:&step=1s",
        "series=netqos_monitor_ticks_total&range=:&step=1s",
        "series=netqos_path_*&range=:&step=1s",
        "series=*&range=:&step=1m",
        "series=*&range=:&step=1h",
    ];
    let before: Vec<String> = queries
        .iter()
        .map(|q| {
            let (status, body) = get_query(&reader, q);
            assert_eq!(status, 200, "{q}: {body}");
            body
        })
        .collect();

    // The run actually recorded something: the self-instrumented tick
    // counter series has one delta point per tick.
    let doc = parse_json(&before[1]).unwrap();
    let series = doc.get("series").and_then(JsonValue::as_array).unwrap();
    assert_eq!(series.len(), 1, "{}", before[1]);
    let points = series[0]
        .get("points")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(points.len(), 17, "one delta point per tick");
    // And the per-path QoS signals were sampled too.
    assert!(
        before[2].contains("netqos_path_used_bps{path="),
        "{}",
        before[2]
    );

    // Restart: a fresh process opening the same store (recovery path
    // included) must answer every query byte-for-byte identically.
    drop(svc);
    let svc2 = service_with_lts(&dir);
    assert!(svc2.lts_enabled());
    assert_eq!(svc2.lts_open_warning(), None, "clean store, no recovery");
    drop(svc2);
    let reader2 = LtsReader::open(&dir);
    for (q, b) in queries.iter().zip(&before) {
        let (status, body) = get_query(&reader2, q);
        assert_eq!(status, 200);
        assert_eq!(&body, b, "{q} diverged across restart");
    }

    // Compact: rewriting every series into one canonical segment per
    // resolution must not change a single response byte either.
    let report = compact_store(&dir).unwrap();
    assert!(report.segments_after <= report.segments_before);
    for (q, b) in queries.iter().zip(&before) {
        let (status, body) = get_query(&reader2, q);
        assert_eq!(status, 200);
        assert_eq!(&body, b, "{q} diverged across compact");
    }
    let verify = verify_store(&dir).unwrap();
    assert!(verify.issues.is_empty(), "{:?}", verify.issues);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_serves_query_and_rejects_bad_params() {
    let dir = tmpdir("router");
    let mut svc = service_with_lts(&dir);
    svc.run_ticks(3).unwrap();
    svc.flush_lts().unwrap();

    let router = build_router(
        svc.registry().clone(),
        svc.live().clone(),
        Some(LtsReader::open(&dir)),
    );
    let get = |query: &str| -> (u16, String) {
        let req = HttpRequest {
            method: "GET".into(),
            path: "/query".into(),
            query: query.into(),
            accept: String::new(),
        };
        match router(&req) {
            Some(HttpRoute::Response(r)) => (r.status, r.body),
            _ => panic!("expected buffered response"),
        }
    };

    // Defaults (series=*, range=:, step=1s) return a parseable document
    // with at least the self-instrumented store metrics.
    let (status, body) = get("");
    assert_eq!(status, 200);
    let doc = parse_json(&body).unwrap();
    assert_eq!(doc.get("step").and_then(JsonValue::as_str), Some("1s"));
    assert!(body.contains("netqos_lts_appends_total"), "{body}");

    // Malformed parameters are 400s with JSON bodies, not panics.
    let (status, body) = get("range=nonsense");
    assert_eq!(status, 400, "{body}");
    assert!(parse_json(&body).is_ok());
    let (status, body) = get("step=5m");
    assert_eq!(status, 400, "{body}");

    // Without a store the endpoint exists but answers 404.
    let bare = build_router(svc.registry().clone(), svc.live().clone(), None);
    let req = HttpRequest {
        method: "GET".into(),
        path: "/query".into(),
        query: String::new(),
        accept: String::new(),
    };
    match bare(&req) {
        Some(HttpRoute::Response(r)) => assert_eq!(r.status, 404, "{}", r.body),
        _ => panic!("expected response"),
    }
    // The index only advertises /query when a store is attached (the
    // /api/v1 endpoints are always there — they fall back to the live
    // registry), hence the exact-string matches.
    let index = HttpRequest {
        method: "GET".into(),
        path: "/".into(),
        query: String::new(),
        accept: String::new(),
    };
    match router(&index) {
        Some(HttpRoute::Response(r)) => assert!(r.body.contains("\"/query\""), "{}", r.body),
        _ => panic!("expected response"),
    }
    match bare(&index) {
        Some(HttpRoute::Response(r)) => {
            assert!(!r.body.contains("\"/query\""), "{}", r.body);
            assert!(r.body.contains("\"/api/v1/query\""), "{}", r.body);
        }
        _ => panic!("expected response"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_is_identical_across_codec_migration() {
    let dir = tmpdir("migrate");
    let mut svc = service_with_lts(&dir);
    svc.run_ticks(17).unwrap();
    svc.flush_lts().expect("final flush");
    drop(svc);

    // Seal everything into segments first (short runs live entirely in
    // open tails, which migration leaves alone by design).
    compact_store(&dir).unwrap();

    let queries = [
        "series=*&range=:&step=1s",
        "series=netqos_monitor_ticks_total&range=:&step=1s",
        "series=*&range=:&step=1m",
    ];
    let reader = LtsReader::open(&dir);
    let before: Vec<String> = queries
        .iter()
        .map(|q| {
            let (status, body) = get_query(&reader, q);
            assert_eq!(status, 200, "{q}: {body}");
            body
        })
        .collect();

    // Downgrade to JSONL (v1), then back to binary (v2): every response
    // byte must survive both conversions, and the binary form must be
    // the smaller one.
    let down =
        netqos_telemetry::migrate_store(&dir, netqos_telemetry::SegmentCodec::Jsonl).unwrap();
    assert!(down.segments_converted > 0, "{down:?}");
    let reader = LtsReader::open(&dir);
    for (q, b) in queries.iter().zip(&before) {
        let (status, body) = get_query(&reader, q);
        assert_eq!(status, 200);
        assert_eq!(&body, b, "{q} diverged after downgrade to v1");
    }
    assert!(verify_store(&dir).unwrap().issues.is_empty());

    let up = netqos_telemetry::migrate_store(&dir, netqos_telemetry::SegmentCodec::Binary).unwrap();
    assert_eq!(up.segments_converted, down.segments_converted);
    assert!(
        up.bytes_after < up.bytes_before,
        "binary must shrink the sealed segments: {up:?}"
    );
    let reader = LtsReader::open(&dir);
    for (q, b) in queries.iter().zip(&before) {
        let (status, body) = get_query(&reader, q);
        assert_eq!(status, 200);
        assert_eq!(&body, b, "{q} diverged after upgrade to v2");
    }
    assert!(verify_store(&dir).unwrap().issues.is_empty());

    // The per-codec breakdown sees only v2 segments after the upgrade.
    let stats = netqos_telemetry::store_stats(&dir).unwrap();
    assert!(stats.resolutions[0].v2_segments > 0);
    assert_eq!(stats.resolutions[0].v1_segments, 0);

    std::fs::remove_dir_all(&dir).ok();
}
