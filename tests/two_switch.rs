//! End-to-end coverage of the second checked-in scenario
//! (`specs/two-switch.spec`): multi-switch paths, trunk bottleneck
//! diagnosis, and spec-driven RM assembly with a movable application.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos::monitor::NetworkMonitor;
use netqos::rm::{ResourceManager, RmEvent};
use netqos::sim::time::SimDuration;

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn build(loads: &[(&str, &str, LoadProfile)]) -> (SimNetwork, NetworkMonitor) {
    let model = netqos::spec::parse_and_validate(SPEC).expect("two-switch spec is valid");
    let topology = model.topology.clone();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let loads: Vec<(String, String, LoadProfile)> = loads
        .iter()
        .map(|(f, t, p)| ((*f).to_string(), (*t).to_string(), p.clone()))
        .collect();
    let net = SimNetwork::from_model_with(model, options, move |builder, map, m| {
        for (from, to, profile) in &loads {
            let f = m.topology.node_by_name(from).unwrap();
            let t = m.topology.node_by_name(to).unwrap();
            let ip = m.addresses[&t].parse().unwrap();
            builder
                .install_app(
                    map[&f],
                    Box::new(ProfiledSource::new(ip, profile.clone())),
                    None,
                )
                .unwrap();
        }
    })
    .expect("network builds");
    (net, NetworkMonitor::new(topology))
}

#[test]
fn spec_validates_and_paths_cross_the_trunk() {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    assert_eq!(model.topology.node_count(), 7);
    assert_eq!(model.topology.connection_count(), 6);
    assert_eq!(model.applications.len(), 2);
    assert_eq!(model.qos_paths.len(), 3);

    let monitor = NetworkMonitor::new(model.topology.clone());
    let feed1 = &model.qos_paths[0];
    let p = monitor.path(feed1.from, feed1.to).unwrap();
    // sensor1 -> sw-fore -> sw-aft -> console: 3 connections.
    assert_eq!(p.connections.len(), 3);
    let names: Vec<String> = p
        .nodes
        .iter()
        .map(|n| model.topology.node(*n).unwrap().name.clone())
        .collect();
    assert_eq!(names, ["sensor1", "sw-fore", "sw-aft", "console"]);
}

#[test]
fn trunk_congestion_diagnosed_at_the_trunk() {
    // Both sensors stream to the console: the trunk carries the sum and
    // becomes the bottleneck of both feed paths.
    let loads = [
        ("sensor1", "console", LoadProfile::constant(4_000_000)),
        ("sensor2", "console", LoadProfile::constant(4_500_000)),
    ];
    let (mut net, mut monitor) = build(&loads);
    for _ in 0..4 {
        let next = net.lan.now() + SimDuration::from_secs(1);
        net.run_until(next);
        net.poll_round(&mut monitor).unwrap();
    }
    let topo = monitor.topology();
    let s1 = topo.node_by_name("sensor1").unwrap();
    let console = topo.node_by_name("console").unwrap();
    let bw = monitor.path_bandwidth(s1, console).unwrap();
    let desc = topo.describe_connection(bw.bottleneck);
    assert!(
        desc.contains("trunk") || desc.contains("console"),
        "bottleneck should be the shared segment, got {desc}"
    );
    // Trunk/console-link usage is the sum of both streams (~8.5 MB/s of
    // payload + overheads ≈ 70 Mb/s).
    assert!(
        bw.used_bps > 60_000_000,
        "expected summed streams on the bottleneck, got {} b/s",
        bw.used_bps
    );
}

#[test]
fn rm_moves_fusion_off_the_congested_trunk() {
    // feed1 (sensor1 -> console) requires 2 MB/s available and is bound
    // to the movable `fusion` app. Saturate the trunk with sensor2's
    // stream: the RM should advise moving fusion to a host on the aft
    // switch (console's side), avoiding the trunk.
    // The congesting stream crosses the trunk but terminates at the
    // display host, leaving archive's and console's own links clean.
    let loads = [(
        "sensor2",
        "display",
        LoadProfile::constant(11_000_000), // ~88 Mb/s: trunk nearly full
    )];
    let (mut net, mut monitor) = build(&loads);
    let model = net.model().clone();
    let mut rm = ResourceManager::from_spec_model(&monitor, &model).unwrap();

    let mut advice_seen = false;
    for _ in 0..8 {
        let next = net.lan.now() + SimDuration::from_secs(1);
        net.run_until(next);
        net.poll_round(&mut monitor).unwrap();
        for event in rm.evaluate(&monitor) {
            if let RmEvent::Advice(a) = event {
                assert_eq!(a.app, "fusion");
                let to_name = monitor.topology().node(a.to).unwrap().name.clone();
                assert_eq!(
                    to_name, "archive",
                    "archive is the only aft-side host that dodges the trunk"
                );
                rm.apply(&a).unwrap();
                advice_seen = true;
            }
        }
        if advice_seen {
            break;
        }
    }
    assert!(
        advice_seen,
        "RM never advised a move; history: {:?}",
        rm.history()
    );
    let archive = monitor.topology().node_by_name("archive").unwrap();
    assert_eq!(rm.allocation().host_of("fusion").unwrap(), archive);
}
