//! Cross-crate integration: specification file → simulated LAN → SNMP
//! polling → monitor → resource manager, end to end.

use netqos::loadgen::LoadProfile;
use netqos::monitor::simnet::{SimNetwork, SimNetworkOptions};
use netqos::monitor::NetworkMonitor;
use netqos::rm::{Allocation, ResourceManager, RmEvent};
use netqos::sim::time::SimDuration;
use netqos_bench::testbed::{build_testbed, Load, TestbedOptions};

#[test]
fn spec_to_monitor_round_trip() {
    // Parse the real LIRTSS spec, build the network, poll everything,
    // and verify the monitor can evaluate every qospath.
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(1, 6, 150_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let qos_paths = tb.net.model().qos_paths.clone();

    // Two poll rounds one second apart -> rates exist.
    tb.net.poll_round(&mut tb.monitor).unwrap();
    for _ in 0..5 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        tb.net.poll_round(&mut tb.monitor).unwrap();
    }

    for q in &qos_paths {
        let bw = tb.monitor.path_bandwidth(q.from, q.to).unwrap();
        assert!(bw.available_bps > 0, "path {} has no bandwidth", q.name);
        assert!(!bw.connections.is_empty());
    }

    // The loaded path S1<->N1 must show ~150 KB/s at the hub bottleneck.
    let topo = tb.monitor.topology();
    let s1 = topo.node_by_name("S1").unwrap();
    let n1 = topo.node_by_name("N1").unwrap();
    let bw = tb.monitor.path_bandwidth(s1, n1).unwrap();
    let used_kbps = bw.used_bps as f64 / 8000.0;
    assert!(
        used_kbps > 120.0 && used_kbps < 180.0,
        "expected ~150 KB/s, measured {used_kbps}"
    );
}

#[test]
fn monitor_reports_feed_resource_manager() {
    // Saturate the 10 Mb/s hub segment; the RM must detect the qospath
    // violation and diagnose a hub connection as the bottleneck.
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(1, 20, 1_200_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let model_paths = tb.net.model().qos_paths.clone();
    // s1n1 requires min_available 100KBps = 800_000 bps; 1.2 MB/s of load
    // (~9.9 Mb/s on the wire) essentially saturates the 10 Mb/s hub:
    // violation.
    let spec: Vec<_> = model_paths
        .iter()
        .filter(|q| q.name == "s1n1")
        .cloned()
        .collect();
    assert_eq!(spec.len(), 1);

    let mut alloc = Allocation::new();
    let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
    alloc.place("tracker", s1, true).unwrap();
    let mut rm = ResourceManager::new(&tb.monitor, &spec, alloc).unwrap();
    rm.bind_app("s1n1", "tracker");

    let mut violated = false;
    for _ in 0..8 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        tb.net.poll_round(&mut tb.monitor).unwrap();
        for event in rm.evaluate(&tb.monitor) {
            if let RmEvent::ViolationDetected {
                path_name,
                bottleneck_desc,
                ..
            } = &event
            {
                assert_eq!(path_name, "s1n1");
                assert!(
                    bottleneck_desc.contains("hub1"),
                    "bottleneck should be on the hub, got {bottleneck_desc}"
                );
                violated = true;
            }
        }
    }
    assert!(
        violated,
        "RM never saw the violation; history: {:?}",
        rm.history()
    );
}

#[test]
fn latency_probe_scales_with_path_length() {
    let mut tb = build_testbed(&[], &TestbedOptions::default());
    let topo = tb.monitor.topology();
    let s1 = topo.node_by_name("S1").unwrap();
    let n1 = topo.node_by_name("N1").unwrap();
    let fast = tb
        .net
        .measure_rtt(s1, 5, 64, SimDuration::from_millis(100))
        .unwrap();
    let slow = tb
        .net
        .measure_rtt(n1, 5, 64, SimDuration::from_millis(100))
        .unwrap();
    assert_eq!(fast.lost, 0);
    assert_eq!(slow.lost, 0);
    // N1 sits behind the hub (extra hop at 10 Mb/s): strictly slower.
    assert!(
        slow.mean > fast.mean,
        "hub path RTT {:?} should exceed switch path RTT {:?}",
        slow.mean,
        fast.mean
    );
}

#[test]
fn topology_verification_audit_on_lirtss() {
    use netqos::monitor::discovery::{self, Verdict};

    let mut tb = build_testbed(&[], &TestbedOptions::default());
    // One poll round makes every agent transmit, teaching the switch the
    // MACs of L, S1, S2, N1, N2.
    tb.net.poll_round(&mut tb.monitor).unwrap();

    let findings = discovery::audit(&mut tb.net).expect("audit runs");
    // The switch has 7 host connections (L, S1..S6); N1/N2 hang off the
    // hub and are not directly audited against switch ports.
    assert_eq!(findings.len(), 7);

    let confirmed: Vec<&str> = findings
        .iter()
        .filter(|f| f.verdict == Verdict::Confirmed)
        .map(|f| f.description.as_str())
        .collect();
    // Hosts with agents that transmitted are confirmed on their specified
    // ports.
    for name in ["L.", "S1.", "S2."] {
        assert!(
            confirmed.iter().any(|d| d.starts_with(name)),
            "{name} should be confirmed; findings: {findings:?}"
        );
    }
    // Agentless, silent hosts remain unverified — never mismatched.
    assert!(findings
        .iter()
        .all(|f| !matches!(f.verdict, Verdict::Mismatch { .. })));
    let unverified = findings
        .iter()
        .filter(|f| f.verdict == Verdict::Unverified)
        .count();
    assert_eq!(unverified, 4, "S3..S6 have no agents and sent nothing");
}

#[test]
fn small_spec_without_bench_harness() {
    // The SimNetwork API works with arbitrary specs, not just LIRTSS.
    let spec = r#"
        host M { address 192.168.1.1; snmp community "c1"; interface eth0 { speed 10Mbps; } }
        host W { address 192.168.1.2; snmp community "c1"; interface eth0 { speed 10Mbps; } }
        connection M.eth0 <-> W.eth0;
    "#;
    let model = netqos::spec::parse_and_validate(spec).unwrap();
    let topo = model.topology.clone();
    let options = SimNetworkOptions {
        monitor_host: "M".into(),
        ..SimNetworkOptions::default()
    };
    let mut net = SimNetwork::from_model(model, options).unwrap();
    let mut monitor = NetworkMonitor::new(topo);
    assert_eq!(net.poll_round(&mut monitor).unwrap(), 2);
    let next = net.lan.now() + SimDuration::from_secs(1);
    net.run_until(next);
    assert_eq!(net.poll_round(&mut monitor).unwrap(), 2);
    let m = monitor.topology().node_by_name("M").unwrap();
    let w = monitor.topology().node_by_name("W").unwrap();
    let bw = monitor.path_bandwidth(m, w).unwrap();
    assert_eq!(bw.connections.len(), 1);
    assert!(bw.available_bps <= 10_000_000);
}

#[test]
fn counter_wrap_survives_full_snmp_pipeline() {
    // Preload N1's NIC counters just below 2^32, run load across the
    // wrap, and verify the measured rate stays correct: the wrap-safe
    // delta must survive BER encoding, agent, transport, and parsing.
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(0, 20, 400_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let n1 = tb.monitor.topology().node_by_name("N1").unwrap();
    let n1_dev = tb.net.device_of(n1).unwrap();
    tb.net
        .lan
        .preload_octet_counters(n1_dev, netqos::sim::PortIx(0), u32::MAX - 100_000, 0)
        .unwrap();

    let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
    // Baseline poll so the very first loop round can already form rates.
    tb.net.poll_round(&mut tb.monitor).unwrap();
    let mut wrapped_rate_seen = false;
    let mut prev_raw: Option<u32> = Some(
        tb.net
            .lan
            .nic_counters(n1_dev, netqos::sim::PortIx(0))
            .unwrap()
            .in_octets
            .value(),
    );
    for _ in 0..8 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        tb.net.poll_round(&mut tb.monitor).unwrap();
        // Track the raw 32-bit counter to confirm a wrap actually occurs.
        let raw = tb
            .net
            .lan
            .nic_counters(n1_dev, netqos::sim::PortIx(0))
            .unwrap()
            .in_octets
            .value();
        if let Some(p) = prev_raw {
            if raw < p {
                // The counter wrapped within this interval; the measured
                // rate must still be ~400 KB/s, not garbage.
                let bw = tb.monitor.path_bandwidth(s1, n1).unwrap();
                let kbps = bw.used_bps as f64 / 8000.0;
                assert!(
                    kbps > 350.0 && kbps < 480.0,
                    "rate corrupted across wrap: {kbps} KB/s"
                );
                wrapped_rate_seen = true;
            }
        }
        prev_raw = Some(raw);
    }
    assert!(wrapped_rate_seen, "counter never wrapped during the test");
}

#[test]
fn monitoring_survives_lossy_network() {
    // 20% frame loss on the monitor host's own uplink: polls will time
    // out sometimes, but the monitor must keep producing rates from the
    // rounds that do succeed.
    // Long-lived load: retransmitted polls stretch rounds beyond 1 s of
    // simulated time, so the load must outlast the whole test.
    let loads = vec![Load::new("L", "N1", LoadProfile::pulse(0, 600, 200_000))];
    let mut tb = build_testbed(&loads, &TestbedOptions::default());
    let l = tb.monitor.topology().node_by_name("L").unwrap();
    let l_dev = tb.net.device_of(l).unwrap();
    tb.net
        .lan
        .set_link_loss(l_dev, netqos::sim::PortIx(0), 0.2)
        .unwrap();

    let s1 = tb.monitor.topology().node_by_name("S1").unwrap();
    let n1 = tb.monitor.topology().node_by_name("N1").unwrap();
    let mut good_samples = 0;
    for _ in 0..25 {
        let next = tb.net.lan.now() + SimDuration::from_secs(1);
        tb.net.run_until(next);
        let _ = tb.net.poll_round(&mut tb.monitor);
        if let Ok(bw) = tb.monitor.path_bandwidth(s1, n1) {
            let kbps = bw.used_bps as f64 / 8000.0;
            if kbps > 150.0 && kbps < 300.0 {
                good_samples += 1;
            }
        }
    }
    assert!(
        tb.net.timeouts > 0,
        "with 20% loss some polls must time out"
    );
    assert!(
        good_samples > 10,
        "monitoring must keep working despite loss; got {good_samples} good samples, \
         {} timeouts",
        tb.net.timeouts
    );
}

#[test]
fn community_mismatch_means_unmonitored() {
    // An agent with the wrong community never answers; the poll times out
    // and the monitor has no rates for that node.
    let spec = r#"
        host M { address 192.168.1.1; snmp community "right"; interface eth0 { speed 10Mbps; } }
        host W { address 192.168.1.2; snmp community "right"; interface eth0 { speed 10Mbps; } }
        connection M.eth0 <-> W.eth0;
    "#;
    let mut model = netqos::spec::parse_and_validate(spec).unwrap();
    // Sabotage: monitor will use a wrong community for W.
    let w = model.topology.node_by_name("W").unwrap();
    model.topology.set_snmp(w, "wrong-on-purpose").unwrap();
    // Rebuild the agents from the modified topology: the sim installs the
    // agent with "wrong-on-purpose" too, so instead sabotage only the
    // client side by re-setting after construction is not possible —
    // verify the timeout path with an agentless node instead.
    let spec2 = r#"
        host M { address 192.168.1.1; snmp community "c"; interface eth0 { speed 10Mbps; } }
        host W { address 192.168.1.2; interface eth0 { speed 10Mbps; } }
        connection M.eth0 <-> W.eth0;
    "#;
    let model2 = netqos::spec::parse_and_validate(spec2).unwrap();
    let topo2 = model2.topology.clone();
    let options = SimNetworkOptions {
        monitor_host: "M".into(),
        ..SimNetworkOptions::default()
    };
    let mut net = SimNetwork::from_model(model2, options).unwrap();
    let mut monitor = NetworkMonitor::new(topo2);
    // Only M is pollable.
    assert_eq!(net.pollable_nodes().len(), 1);
    assert_eq!(net.poll_round(&mut monitor).unwrap(), 1);
}
