//! Integration coverage for push-based OTLP delivery: a monitoring
//! service wired with `enable_otlp_push` must deliver valid OTLP/JSON
//! flight snapshots to a collector over real TCP when violations fire,
//! retry with backoff against a flapping collector, count drops when
//! the collector stays down, and do all of the above from the `netqos
//! monitor --otlp-push` CLI.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{parse_push_url, validate_otlp, PushConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const SPEC: &str = include_str!("../specs/two-switch.spec");

/// A one-thread HTTP sink: answers every POST with 200 and forwards
/// each body on a channel until the listener is dropped.
fn spawn_sink(listener: TcpListener, bodies: mpsc::Sender<String>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut content_len = 0usize;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if line.trim().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_len = v.trim().parse().unwrap_or(0);
                }
            }
            let mut body = vec![0u8; content_len];
            if reader.read_exact(&mut body).is_ok() {
                let _ = bodies.send(String::from_utf8_lossy(&body).into_owned());
            }
            let _ = stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
            // The channel hanging up means the test is done.
            if bodies.send(String::new()).is_err() {
                break;
            }
        }
    })
}

/// Wakes the sink's accept loop after the receiver is dropped so its
/// thread notices the hang-up and exits.
fn stop_sink(port: u16) {
    let _ = TcpStream::connect(("127.0.0.1", port));
}

/// A traced service with a 9 MB/s sensor1→console pulse from t=2 s —
/// ~72 Mb/s on the wire, over `feed1`'s 70% utilization limit on the
/// 100 Mb/s trunk, so a violation fires within a few ticks.
fn violating_service() -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let mut svc = MonitoringService::from_model_with(
        model,
        options,
        ServiceConfig::default(),
        |builder, map, m| {
            let from = m.topology.node_by_name("sensor1").unwrap();
            let to = m.topology.node_by_name("console").unwrap();
            let ip = m.addresses[&to].parse().unwrap();
            builder
                .install_app(
                    map[&from],
                    Box::new(ProfiledSource::new(
                        ip,
                        LoadProfile::pulse(2, 60, 9_000_000),
                    )),
                    None,
                )
                .unwrap();
        },
    )
    .unwrap();
    svc.set_tracing(true);
    svc
}

#[test]
fn violation_pushes_valid_otlp_snapshot_to_sink() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let (tx, rx) = mpsc::channel();
    let sink = spawn_sink(listener, tx);

    let mut svc = violating_service();
    let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
    let pusher = svc.enable_otlp_push(PushConfig::new(target));
    let events = svc.run_ticks(8).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, netqos::monitor::qos::QosEvent::Violated { .. })),
        "no violation fired: {events:?}"
    );
    pusher.shutdown();

    // The sink received at least one snapshot and it is valid OTLP with
    // the whole flight ring in it.
    let body = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("sink received nothing");
    assert!(!body.is_empty());
    let stats = validate_otlp(&body).expect("pushed body is valid OTLP/JSON");
    assert!(stats.spans > 0);
    assert!(stats.traces >= 1);
    // Several paths can trip across ticks, each onset pushing once.
    let pushed = svc.telemetry().otlp_pushed.get();
    assert!(pushed >= 1);
    assert_eq!(svc.telemetry().otlp_push_dropped.get(), 0);
    // Delivery counters surface on /metrics.
    let text = svc.registry().render_prometheus();
    assert!(
        text.contains(&format!("netqos_monitor_otlp_pushed_total {pushed}")),
        "{text}"
    );
    drop(rx);
    stop_sink(port);
    sink.join().unwrap();
}

#[test]
fn dead_collector_counts_drops_not_hangs() {
    // Bind then drop: the port refuses connections for the whole test.
    let port = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().port()
    };
    let mut svc = violating_service();
    let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
    let mut config = PushConfig::new(target);
    config.max_attempts = 2;
    config.backoff_ms = 5;
    config.backoff_cap_ms = 10;
    let pusher = svc.enable_otlp_push(config);
    let start = std::time::Instant::now();
    svc.run_ticks(8).unwrap();
    // The tick loop never blocks on the dead collector: the worker
    // retries in the background while ticks continue.
    assert!(start.elapsed() < Duration::from_secs(5));
    pusher.shutdown();
    assert_eq!(svc.telemetry().otlp_pushed.get(), 0);
    assert!(
        svc.telemetry().otlp_push_retries.get() >= 1,
        "refused connection must be retried"
    );
    assert!(
        svc.telemetry().otlp_push_dropped.get() >= 1,
        "exhausted retries must count a drop"
    );
}

#[test]
fn cli_otlp_push_delivers_final_snapshot() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let (tx, rx) = mpsc::channel();
    let sink = spawn_sink(listener, tx);

    let bin = {
        let mut path = std::env::current_exe().expect("test exe path");
        path.pop();
        path.pop();
        path.push("netqos");
        path
    };
    let out = std::process::Command::new(&bin)
        .args([
            "monitor",
            "specs/two-switch.spec",
            "--duration",
            "5",
            "--otlp-push",
            &format!("http://127.0.0.1:{port}/v1/traces"),
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run netqos monitor --otlp-push");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pushing OTLP to"), "{stderr}");
    assert!(stderr.contains("delivered"), "{stderr}");

    // --otlp-push implies tracing, and the run's final snapshot is
    // pushed even without violations.
    let body = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("sink received nothing");
    let stats = validate_otlp(&body).expect("CLI pushed valid OTLP/JSON");
    assert!(stats.spans > 0);
    drop(rx);
    stop_sink(port);
    sink.join().unwrap();
}
