//! Integration tests for the `netqos` command-line binary: exercises the
//! compiled binary's contract (exit codes, output shape) end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn netqos_bin() -> PathBuf {
    // Cargo puts integration-test binaries in target/<profile>/deps; the
    // CLI lives one level up.
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // debug/ (or release/)
    path.push("netqos");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(netqos_bin())
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs")
}

#[test]
fn check_accepts_the_shipped_specs() {
    for spec in ["specs/lirtss.spec", "specs/two-switch.spec"] {
        let out = run(&["check", spec]);
        assert!(out.status.success(), "{spec}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("OK"), "{stdout}");
    }
}

#[test]
fn check_rejects_broken_spec_with_position() {
    let dir = std::env::temp_dir().join("netqos-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.spec");
    std::fs::write(&bad, "host A {\n  interface e;\n}\n").unwrap(); // no speed
    let out = run(&["check", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no speed"), "{stderr}");
    assert!(
        stderr.contains("2:"),
        "should carry the line number: {stderr}"
    );
}

#[test]
fn fmt_output_reparses_identically() {
    let out = run(&["fmt", "specs/lirtss.spec"]);
    assert!(out.status.success());
    let formatted = String::from_utf8(out.stdout).unwrap();
    // The canonical form must itself validate.
    let model = netqos::spec::parse_and_validate(&formatted).expect("fmt output valid");
    assert_eq!(model.topology.node_count(), 11);
    assert_eq!(model.applications.len(), 3);
}

#[test]
fn paths_lists_all_qospaths() {
    let out = run(&["paths", "specs/lirtss.spec"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["s1n1", "s1n2", "s1s2", "s1s3"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
    assert!(stdout.contains("hub1"), "hub paths must show the hub hop");
}

#[test]
fn monitor_emits_csv_with_load() {
    let out = run(&[
        "monitor",
        "specs/lirtss.spec",
        "--duration",
        "6",
        "--load",
        "L:N1:200:1:5",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("t_s,"), "{}", lines[0]);
    assert!(lines[0].contains("s1n1_used_kBps"));
    // 6 data rows follow the header, then the latency summary line.
    assert_eq!(lines.len(), 8, "{stdout}");
    assert!(
        lines[7].starts_with("# path_rtt: p50 "),
        "expected latency p50/p99 summary: {}",
        lines[7]
    );
    assert!(lines[7].contains("p99 "), "{}", lines[7]);
    // At least one loaded sample near 200 KB/s on s1n1 (first column pair).
    let loaded = lines[1..7].iter().any(|l| {
        l.split(',')
            .nth(1)
            .and_then(|v| v.parse::<f64>().ok())
            .map(|v| (150.0..280.0).contains(&v))
            .unwrap_or(false)
    });
    assert!(loaded, "expected a ~200 KB/s sample: {stdout}");
}

#[test]
fn audit_reports_verdicts() {
    let out = run(&["audit", "specs/lirtss.spec"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CONFIRMED"), "{stdout}");
    assert!(stdout.contains("unverified"), "{stdout}");
}

#[test]
fn alerts_lints_rules_files() {
    // The shipped example file parses; every echoed line is itself a
    // valid rule (canonical form round trips).
    let out = run(&["alerts", "specs/alerts.rules"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("alert path_hot if path_rank >= 0.99"),
        "{stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("5 rule(s) OK"));

    // Builtins are listed in the same grammar.
    let out = run(&["alerts", "--builtin"]);
    assert!(out.status.success());
    let builtin = String::from_utf8_lossy(&out.stdout);
    assert!(
        builtin.contains("alert path_qos_violation if path_violated > 0.5"),
        "{builtin}"
    );

    // A broken file fails with line context and a nonzero exit.
    let bad = std::env::temp_dir().join(format!("netqos-bad-{}.rules", std::process::id()));
    std::fs::write(
        &bad,
        "alert ok if s > 1 for 1 severity info\nalert bad if s ?? 1\n",
    )
    .unwrap();
    let out = run(&["alerts", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // --alert-rules on a monitor run rejects the same broken file.
    std::fs::write(&bad, "alert bad if\n").unwrap();
    let out = run(&[
        "monitor",
        "specs/two-switch.spec",
        "--duration",
        "1",
        "--alert-rules",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&bad).ok();

    // --otlp-push-delta is rejected without a push target.
    let out = run(&["monitor", "specs/two-switch.spec", "--otlp-push-delta"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--otlp-push"));
}

#[test]
fn usage_on_bad_invocations() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(1));
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["check", "/nonexistent/x.spec"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
}

#[test]
fn stats_prints_prometheus_snapshot() {
    let out = run(&["stats", "specs/lirtss.spec", "--duration", "3"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# TYPE netqos_monitor_ticks_total counter"));
    assert!(stdout.contains("netqos_monitor_ticks_total 3"), "{stdout}");
    // Poll RTT and tick-duration histograms must have samples.
    for count_line in [
        "netqos_monitor_poll_rtt_us_count",
        "netqos_monitor_tick_duration_ns_count",
    ] {
        let nonzero = stdout.lines().any(|l| {
            l.starts_with(count_line)
                && l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(|v| v > 0)
                    .unwrap_or(false)
        });
        assert!(nonzero, "{count_line} should be non-zero:\n{stdout}");
    }
}

#[test]
fn trace_writes_validatable_flight_snapshots() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-trace-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = run(&[
        "trace",
        "specs/two-switch.spec",
        "--duration",
        "10",
        "--load",
        "sensor1:console:9000",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("traced 10 cycles"), "{stdout}");
    assert!(stdout.contains("violation(s)"), "{stdout}");
    assert!(stdout.contains("baseline feed1"), "{stdout}");

    // `flight check` validates the Chrome trace the run produced.
    let chrome = dir.join("last.trace.json");
    let out = run(&["flight", "check", chrome.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "{stdout}");

    // `flight show` summarizes the JSONL snapshot with baseline ranks.
    let jsonl = dir.join("last.jsonl");
    let out = run(&["flight", "show", jsonl.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cycle"), "{stdout}");
    assert!(stdout.contains("rank"), "{stdout}");

    // `flight dump` converts JSONL back into valid Chrome trace JSON.
    let out = run(&["flight", "dump", jsonl.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let roundtrip = String::from_utf8(out.stdout).unwrap();
    netqos_telemetry::validate_chrome_trace(&roundtrip).expect("dump output is a valid trace");

    // `flight check` rejects garbage.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"traceEvents\":[{\"ph\":\"X\"}]}").unwrap();
    let out = run(&["flight", "check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_dump_otlp_round_trips_and_checks() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-otlp-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = run(&[
        "trace",
        "specs/two-switch.spec",
        "--duration",
        "10",
        "--load",
        "sensor1:console:9000",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("otlp:"),
        "trace should report the OTLP snapshot path"
    );
    // The run itself wrote an OTLP snapshot alongside the JSONL.
    let otlp_file = dir.join("last.otlp.json");
    let on_disk = std::fs::read_to_string(&otlp_file).expect("last.otlp.json written");
    netqos_telemetry::validate_otlp(&on_disk).expect("snapshot OTLP validates");

    // `flight dump --otlp` re-derives the same document from the JSONL.
    let jsonl = dir.join("last.jsonl");
    let out = run(&["flight", "dump", jsonl.to_str().unwrap(), "--otlp"]);
    assert!(out.status.success(), "{out:?}");
    let dumped = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        dumped.trim_end(),
        on_disk.trim_end(),
        "dump --otlp must match the live export"
    );

    // `flight check` auto-detects the OTLP shape and validates it.
    let out = run(&["flight", "check", otlp_file.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK") && stdout.contains("OTLP"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_state_accumulates_across_runs() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-baseline-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let state = dir.join("baselines.json");

    let samples_of = |out: &Output| -> u64 {
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.contains("baseline feed1"))
            .unwrap_or_else(|| panic!("no baseline line in {stdout}"));
        // "... over N samples"
        line.split_whitespace()
            .rev()
            .nth(1)
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable baseline line {line:?}"))
    };
    let flight_dir = dir.join("flight");
    let trace = |extra: &[&str]| {
        let mut args = vec![
            "trace",
            "specs/two-switch.spec",
            "--duration",
            "8",
            "--out",
            flight_dir.to_str().unwrap(),
            "--baseline-state",
            state.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        run(&args)
    };

    // First run starts cold and saves its histograms on exit.
    let out = trace(&[]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("baseline state saved to"),
        "{out:?}"
    );
    let first = samples_of(&out);
    assert!(state.exists());

    // Second run restores them: its baselines carry both runs' samples.
    let out = trace(&[]);
    assert!(out.status.success(), "{out:?}");
    let second = samples_of(&out);
    assert!(
        second > first,
        "restored baselines should accumulate: {first} then {second}"
    );

    // A corrupt state file is ignored with a warning, not a crash.
    std::fs::write(&state, "not json at all").unwrap();
    let out = trace(&[]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("baseline state ignored"),
        "{out:?}"
    );
    assert_eq!(
        samples_of(&out),
        first,
        "corrupt state must mean a cold start"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitor_telemetry_flag_writes_prom_and_jsonl() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("t");
    let out = run(&[
        "monitor",
        "specs/lirtss.spec",
        "--duration",
        "4",
        "--telemetry",
        prefix.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");

    let prom = std::fs::read_to_string(dir.join("t.prom")).expect("t.prom written");
    assert!(prom.contains("netqos_monitor_ticks_total 4"), "{prom}");
    assert!(prom.contains("netqos_monitor_poll_rtt_us_count"), "{prom}");

    let jsonl = std::fs::read_to_string(dir.join("t.jsonl")).expect("t.jsonl written");
    let ticks = jsonl
        .lines()
        .filter(|l| l.contains("\"target\":\"monitor.tick\""))
        .count();
    assert_eq!(ticks, 4, "one tick event per tick:\n{jsonl}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lts_subcommand_round_trip() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-lts-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");

    // A monitor run leaves a store behind...
    let out = run(&[
        "monitor",
        "specs/two-switch.spec",
        "--duration",
        "8",
        "--lts",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("long-term stats flushed"), "{stderr}");

    // ...that info summarizes, verify blesses, and query reads.
    let out = run(&["lts", "info", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("netqos_monitor_ticks_total"), "{stdout}");

    let out = run(&["lts", "verify", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    let query = [
        "lts",
        "query",
        store.to_str().unwrap(),
        "--series",
        "netqos_monitor_ticks_total",
        "--step",
        "1s",
    ];
    let out = run(&query);
    assert!(out.status.success(), "{out:?}");
    let before = String::from_utf8(out.stdout).unwrap();
    assert!(before.contains("\"points\":[["), "{before}");

    // Compaction changes the layout, not one byte of the answers.
    let out = run(&["lts", "compact", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let out = run(&query);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(String::from_utf8(out.stdout).unwrap(), before);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn record_lints_rules_files() {
    // The shipped example parses; each stanza echoes back canonically.
    let out = run(&["record", "lint", "specs/record.rules"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("record: path:used_bps:sum"), "{stdout}");
    assert!(
        stdout.contains("expr: sum(netqos_path_used_bps)"),
        "{stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("4 rule(s) OK"));

    // Broken files fail with line context and a nonzero exit.
    let bad = std::env::temp_dir().join(format!("netqos-bad-{}.record", std::process::id()));
    std::fs::write(&bad, "record: orphaned\n").unwrap();
    let out = run(&["record", "lint", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 1"), "{stderr}");
    assert!(stderr.contains("has no expr"), "{stderr}");

    std::fs::write(&bad, "record: x\nexpr: rate(\n").unwrap();
    let out = run(&["record", "lint", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 2"),
        "{out:?}"
    );
    std::fs::remove_file(&bad).ok();
}

#[test]
fn monitor_record_rules_produce_queryable_derived_series() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-record-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");

    // --record-rules without --lts is refused up front.
    let out = run(&[
        "monitor",
        "specs/two-switch.spec",
        "--duration",
        "4",
        "--record-rules",
        "specs/record.rules",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("needs --lts"),
        "{out:?}"
    );

    // A short run with a save tick inside it evaluates the rules and
    // appends derived series into the same store.
    let out = run(&[
        "monitor",
        "specs/two-switch.spec",
        "--duration",
        "12",
        "--lts",
        store.to_str().unwrap(),
        "--record-rules",
        "specs/record.rules",
        "--baseline-save-ticks",
        "5",
    ]);
    assert!(out.status.success(), "{out:?}");

    // The derived series answers offline queries like any sampled one.
    let out = run(&[
        "query",
        "path:used_bps:sum",
        "--lts",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("path:used_bps:sum"), "{stdout}");

    // And `lts info` lists it with the per-resolution codec breakdown.
    let out = run(&["lts", "info", store.to_str().unwrap(), "--segments"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("path:used_bps:sum"), "{stdout}");
    assert!(stdout.contains("open tail(s)"), "{stdout}");
    assert!(stdout.contains("1s "), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lts_migrate_round_trips_on_disk() {
    let dir = std::env::temp_dir().join(format!("netqos-cli-migrate-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");

    let out = run(&[
        "monitor",
        "specs/two-switch.spec",
        "--duration",
        "10",
        "--lts",
        store.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    // Seal the open tails so migration has segments to convert.
    let out = run(&["lts", "compact", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    let query = |store: &str| -> String {
        let out = run(&["lts", "query", store, "--series", "*", "--step", "1s"]);
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).unwrap()
    };
    let before = query(store.to_str().unwrap());

    // Binary -> JSONL -> binary: byte-identical answers, verify clean,
    // and both conversions are reported.
    let out = run(&[
        "lts",
        "migrate",
        store.to_str().unwrap(),
        "--codec",
        "jsonl",
    ]);
    assert!(out.status.success(), "{out:?}");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("converted to v1"), "{report}");
    assert_eq!(query(store.to_str().unwrap()), before);

    let out = run(&["lts", "migrate", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("converted to v2"),
        "{out:?}"
    );
    assert_eq!(query(store.to_str().unwrap()), before);

    let out = run(&["lts", "verify", store.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}
