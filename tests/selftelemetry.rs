//! The monitor monitoring itself: run the service, then read its own
//! telemetry back through SNMP — a management station polling the
//! self-agent's private-enterprise subtree, exactly the way the monitor
//! polls everyone else.

use netqos::monitor::selfagent::{telemetry_base, SelfAgent};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos::snmp::message::{MessageBody, SnmpMessage, SnmpVersion};
use netqos::snmp::oid::Oid;
use netqos::snmp::pdu::{ErrorStatus, Pdu, PduType, VarBind};
use netqos::snmp::value::SnmpValue;

const SPEC: &str = include_str!("../specs/lirtss.spec");

fn request(pdu_type: PduType, oid: Oid) -> Vec<u8> {
    SnmpMessage {
        version: SnmpVersion::V1,
        community: b"public".to_vec(),
        body: MessageBody::Pdu(Pdu {
            pdu_type,
            request_id: 42,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            bindings: vec![VarBind {
                oid,
                value: SnmpValue::Null,
            }],
        }),
    }
    .encode()
    .unwrap()
}

fn first_binding(response: &[u8]) -> Option<(Oid, SnmpValue)> {
    let msg = SnmpMessage::decode(response).unwrap();
    match msg.body {
        MessageBody::Pdu(pdu) if pdu.error_status == ErrorStatus::NoError => {
            pdu.bindings.into_iter().next().map(|vb| (vb.oid, vb.value))
        }
        _ => None,
    }
}

/// Walks the whole telemetry subtree with GetNext datagrams, like
/// `snmpwalk` would.
fn walk_subtree(agent: &mut SelfAgent) -> Vec<(Oid, SnmpValue)> {
    let base = telemetry_base();
    let mut cur = base.clone();
    let mut out = Vec::new();
    while let Some(resp) = agent.handle(&request(PduType::GetNextRequest, cur.clone())) {
        let Some((oid, value)) = first_binding(&resp) else {
            break; // noSuchName: walked off the end of the MIB
        };
        if !oid.starts_with(&base) {
            break;
        }
        cur = oid.clone();
        out.push((oid, value));
    }
    out
}

/// Pairs each counter-table value with its name column.
fn counters_by_name(walked: &[(Oid, SnmpValue)]) -> Vec<(String, u32)> {
    let base = telemetry_base();
    let names: Vec<(u32, String)> = walked
        .iter()
        .filter_map(|(oid, v)| {
            let suffix = oid.suffix_of(&base.extend(&[1, 1]))?;
            match v {
                SnmpValue::OctetString(b) => {
                    Some((suffix[0], String::from_utf8_lossy(b).into_owned()))
                }
                _ => None,
            }
        })
        .collect();
    names
        .into_iter()
        .filter_map(|(idx, name)| {
            walked.iter().find_map(|(oid, v)| {
                let suffix = oid.suffix_of(&base.extend(&[1, 2]))?;
                match (suffix[0] == idx, v) {
                    (true, SnmpValue::Counter32(c)) => Some((name.clone(), *c)),
                    _ => None,
                }
            })
        })
        .collect()
}

#[test]
fn self_agent_subtree_reflects_ticks_and_polls() {
    let options = SimNetworkOptions {
        monitor_host: "L".to_owned(),
        ..SimNetworkOptions::default()
    };
    let mut service =
        MonitoringService::from_spec(SPEC, options, ServiceConfig::default()).unwrap();
    let snmp_devices = service.net_mut().model().snmp_nodes().len() as u32;
    assert!(snmp_devices > 0);

    let ticks = 7u32;
    for _ in 0..ticks {
        service.tick().unwrap();
    }

    let mut agent = SelfAgent::new(service.registry().clone(), "public");
    let walked = walk_subtree(&mut agent);
    assert!(
        !walked.is_empty(),
        "telemetry subtree should not be empty after {ticks} ticks"
    );
    // The walk must return instances in strictly increasing MIB order.
    for pair in walked.windows(2) {
        assert!(pair[0].0 < pair[1].0, "GetNext went backwards");
    }

    let counters = counters_by_name(&walked);
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} not in subtree"))
            .1
    };

    // The poll counter must match the work actually executed: one poll
    // per SNMP device per tick, and one tick per `tick()` call.
    assert_eq!(get("netqos_monitor_ticks_total"), ticks);
    assert_eq!(get("netqos_monitor_polls_total"), ticks * snmp_devices);

    // A direct Get of the ticks instance agrees with the walk.
    let oid = agent
        .counter_value_oid("netqos_monitor_ticks_total")
        .unwrap();
    let resp = agent.handle(&request(PduType::GetRequest, oid)).unwrap();
    let (_, value) = first_binding(&resp).unwrap();
    assert_eq!(value, SnmpValue::Counter32(ticks));
}

#[test]
fn self_agent_tracks_live_service_between_requests() {
    let options = SimNetworkOptions {
        monitor_host: "L".to_owned(),
        ..SimNetworkOptions::default()
    };
    let mut service =
        MonitoringService::from_spec(SPEC, options, ServiceConfig::default()).unwrap();
    service.tick().unwrap();

    let mut agent = SelfAgent::new(service.registry().clone(), "public");
    let oid = agent
        .counter_value_oid("netqos_monitor_ticks_total")
        .unwrap();
    let read = |agent: &mut SelfAgent| {
        let resp = agent
            .handle(&request(PduType::GetRequest, oid.clone()))
            .unwrap();
        first_binding(&resp).unwrap().1
    };
    assert_eq!(read(&mut agent), SnmpValue::Counter32(1));

    // More ticks happen while the agent is alive; the next poll sees them.
    service.tick().unwrap();
    service.tick().unwrap();
    assert_eq!(read(&mut agent), SnmpValue::Counter32(3));
}
