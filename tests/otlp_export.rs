//! End-to-end OTLP/JSON export coverage: a forced QoS violation on the
//! two-switch testbed must leave `*.otlp.json` snapshots whose spans
//! carry well-formed ids, absolute nanosecond timestamps, resolvable
//! parent links, and the flight recorder's attributes — and the JSONL →
//! `flight dump --otlp` path must reproduce the live export byte for
//! byte.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::qos::QosEvent;
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{
    cycles_from_jsonl, parse_json, parsed_to_otlp, to_otlp, validate_otlp, JsonValue,
};
use std::path::PathBuf;

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-otlp-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn violating_service(flight_dir: PathBuf) -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).expect("two-switch spec is valid");
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        flight_dir: Some(flight_dir),
        ..ServiceConfig::default()
    };
    let mut svc =
        MonitoringService::from_model_with(model, options, config, move |builder, map, m| {
            let f = m.topology.node_by_name("sensor1").unwrap();
            let t = m.topology.node_by_name("console").unwrap();
            let ip = m.addresses[&t].parse().unwrap();
            // 9 MB/s from t=9 s saturates feed1's 70% utilization limit.
            builder
                .install_app(
                    map[&f],
                    Box::new(ProfiledSource::new(
                        ip,
                        LoadProfile::pulse(9, 60, 9_000_000),
                    )),
                    None,
                )
                .unwrap();
        })
        .expect("service builds");
    svc.set_tracing(true);
    svc
}

#[test]
fn violation_writes_valid_otlp_snapshots() {
    let dir = tmpdir("violation");
    let mut svc = violating_service(dir.clone());
    let mut violated = false;
    for _ in 0..14 {
        for e in svc.tick().expect("tick") {
            violated |= matches!(e, QosEvent::Violated { .. });
        }
    }
    assert!(violated, "the forced load never tripped a QoS violation");
    let paths = svc.snapshots().last().expect("snapshot written").clone();
    assert!(paths.otlp.exists(), "missing {}", paths.otlp.display());
    assert!(dir.join("last.otlp.json").exists());

    let otlp = std::fs::read_to_string(&paths.otlp).unwrap();
    let stats = validate_otlp(&otlp).expect("snapshot OTLP validates");
    assert!(
        stats.traces >= 8,
        "expected >= 8 traces, got {}",
        stats.traces
    );
    assert!(
        stats.child_spans > stats.traces,
        "pipeline spans must nest under each cycle root"
    );

    // Golden structural checks on the first span: the exact field set
    // and encodings the OTLP/JSON mapping requires.
    let doc = parse_json(&otlp).unwrap();
    let spans = doc
        .get("resourceSpans")
        .and_then(JsonValue::as_array)
        .and_then(|rs| rs[0].get("scopeSpans"))
        .and_then(JsonValue::as_array)
        .and_then(|ss| ss[0].get("spans"))
        .and_then(JsonValue::as_array)
        .expect("resourceSpans -> scopeSpans -> spans nesting");
    assert!(!spans.is_empty());
    for sp in spans {
        let trace_id = sp.get("traceId").and_then(JsonValue::as_str).unwrap();
        assert_eq!(trace_id.len(), 32);
        let span_id = sp.get("spanId").and_then(JsonValue::as_str).unwrap();
        assert_eq!(span_id.len(), 16);
        // Timestamps: strings of absolute Unix nanoseconds (the year-2020
        // epoch boundary in ns is 1.577e18).
        let start = sp
            .get("startTimeUnixNano")
            .and_then(JsonValue::as_str)
            .expect("startTimeUnixNano is a string")
            .parse::<u64>()
            .expect("nanosecond count");
        assert!(
            start > 1_577_836_800_000_000_000,
            "timestamp not absolute: {start}"
        );
        assert_eq!(sp.get("kind").and_then(JsonValue::as_u64), Some(1));
    }
    // The service.name resource attribute identifies the exporter.
    assert!(otlp.contains("\"service.name\""));
    assert!(otlp.contains(netqos_telemetry::OTLP_SERVICE));

    // Round trip: the JSONL snapshot re-exported through the parsed path
    // (what `netqos flight dump --otlp` runs) is byte-identical.
    let jsonl = std::fs::read_to_string(&paths.jsonl).unwrap();
    let parsed = cycles_from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed_to_otlp(&parsed), otlp);

    // And it matches the live ring's export of the same cycles.
    let live = to_otlp(&svc.flight().snapshot());
    validate_otlp(&live).expect("live export validates");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_policy_caps_snapshot_files() {
    let dir = tmpdir("retention");
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        flight_dir: Some(dir.clone()),
        retention: netqos_telemetry::RetentionPolicy {
            max_snapshots: 2,
            max_bytes: 0,
        },
        ..ServiceConfig::default()
    };
    // An on/off load that keeps re-tripping the violation, producing a
    // new snapshot on each onset.
    let mut svc =
        MonitoringService::from_model_with(model, options, config, move |builder, map, m| {
            let f = m.topology.node_by_name("sensor1").unwrap();
            let t = m.topology.node_by_name("console").unwrap();
            let ip = m.addresses[&t].parse().unwrap();
            for start in [4u64, 10, 16, 22] {
                builder
                    .install_app(
                        map[&f],
                        Box::new(ProfiledSource::new(
                            ip,
                            LoadProfile::pulse(start, start + 3, 9_000_000),
                        )),
                        None,
                    )
                    .unwrap();
            }
        })
        .unwrap();
    svc.set_tracing(true);
    let mut onsets = 0;
    for _ in 0..30 {
        onsets += svc
            .tick()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, QosEvent::Violated { .. }))
            .count();
    }
    assert!(onsets >= 3, "expected repeated violations, got {onsets}");
    assert!(svc.snapshots().len() >= 3);
    // Retention kept only the 2 newest tagged snapshots on disk.
    let tagged: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("flight-") && n.ends_with(".jsonl"))
        .collect();
    assert_eq!(tagged.len(), 2, "retention left {tagged:?}");
    assert!(svc.telemetry().flight_retention_deleted.get() > 0);
    // The newest snapshot always survives.
    let newest = svc.snapshots().last().unwrap();
    assert!(newest.jsonl.exists() && newest.otlp.exists());
    // `last.*` files are never retention targets.
    assert!(dir.join("last.jsonl").exists());
    std::fs::remove_dir_all(&dir).ok();
}
