//! End-to-end coverage of the alerting plane on the two-switch
//! scenario: a sustained trunk overload must raise the builtin
//! `path_qos_violation` alert through its pending → firing hysteresis,
//! diagnose the trunk as the bottleneck, publish the alert over
//! `GET /alerts`, summarize it in `/healthz`, record the transition in
//! the flight ring, deliver transition batches to a webhook sink, and
//! resolve once the load stops.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::live::build_router;
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{parse_json, parse_webhook_url, HttpServer, JsonValue, PushConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

const SPEC: &str = include_str!("../specs/two-switch.spec");

/// A one-thread HTTP sink: answers every POST with 200 and forwards
/// each body on a channel until the listener is dropped.
fn spawn_sink(listener: TcpListener, bodies: mpsc::Sender<String>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut content_len = 0usize;
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    break;
                }
                if line.trim().is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_len = v.trim().parse().unwrap_or(0);
                }
            }
            let mut body = vec![0u8; content_len];
            if reader.read_exact(&mut body).is_ok() {
                let _ = bodies.send(String::from_utf8_lossy(&body).into_owned());
            }
            let _ = stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\nConnection: close\r\n\r\n");
            // The channel hanging up means the test is done.
            if bodies.send(String::new()).is_err() {
                break;
            }
        }
    })
}

/// Wakes the sink's accept loop after the receiver is dropped so its
/// thread notices the hang-up and exits.
fn stop_sink(port: u16) {
    let _ = TcpStream::connect(("127.0.0.1", port));
}

/// Minimal HTTP/1.1 GET: returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// A traced two-switch service where both sensors pulse 5 MB/s from
/// t=2 s to t=8 s. Each access link carries one 40 Mb/s stream but the
/// inter-switch trunk carries their 80 Mb/s sum — the unique bottleneck
/// of `feed1` (sensor2's stream terminates at `display`, keeping the
/// console link at 40 Mb/s) and over feed1's 70% utilization limit.
fn trunk_overload_service() -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let mut svc = MonitoringService::from_model_with(
        model,
        options,
        ServiceConfig::default(),
        |builder, map, m| {
            for (from, to) in [("sensor1", "console"), ("sensor2", "display")] {
                let f = m.topology.node_by_name(from).unwrap();
                let t = m.topology.node_by_name(to).unwrap();
                let ip = m.addresses[&t].parse().unwrap();
                builder
                    .install_app(
                        map[&f],
                        Box::new(ProfiledSource::new(ip, LoadProfile::pulse(2, 8, 5_000_000))),
                        None,
                    )
                    .unwrap();
            }
        },
    )
    .unwrap();
    svc.set_tracing(true);
    svc
}

#[test]
fn trunk_overload_fires_diagnosed_alert_end_to_end() {
    // Webhook sink first, so the notifier has somewhere to deliver.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let (tx, rx) = mpsc::channel();
    let sink = spawn_sink(listener, tx);

    let mut svc = trunk_overload_service();
    let target = parse_webhook_url(&format!("http://127.0.0.1:{port}/alerts")).unwrap();
    let hook = svc.enable_alert_webhook(PushConfig::new(target));

    // Tick until the builtin rule crosses its `for 2` hysteresis.
    let mut fired_at = None;
    for tick in 1..=10u64 {
        svc.tick().unwrap();
        if svc.alerts().firing_count() > 0 {
            fired_at = Some(tick);
            break;
        }
    }
    let fired_at = fired_at.expect("trunk overload never fired an alert");
    assert!(fired_at >= 2, "hysteresis cannot fire on the first tick");

    // GET /alerts names the rule, the path, and the true bottleneck.
    let router = build_router(svc.registry().clone(), svc.live().clone(), None);
    let server = HttpServer::serve("127.0.0.1:0", router).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let (status, body) = http_get(&addr, "/alerts");
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body).expect("alerts body is JSON");
    assert!(doc.get("firing").and_then(JsonValue::as_u64).unwrap_or(0) >= 1);
    let alerts = doc.get("alerts").and_then(JsonValue::as_array).unwrap();
    let firing = alerts
        .iter()
        .find(|a| a.get("state").and_then(JsonValue::as_str) == Some("firing"))
        .expect("firing alert listed");
    assert_eq!(
        firing.get("rule").and_then(JsonValue::as_str),
        Some("path_qos_violation")
    );
    assert_eq!(
        firing
            .get("labels")
            .and_then(|l| l.get("path"))
            .and_then(JsonValue::as_str),
        Some("feed1"),
        "{body}"
    );
    let bottleneck = firing
        .get("annotations")
        .and_then(|a| a.get("bottleneck"))
        .and_then(JsonValue::as_str)
        .expect("bottleneck annotation");
    assert!(
        bottleneck.contains("trunk"),
        "diagnosis must name the trunk, got {bottleneck}"
    );
    assert_eq!(
        firing
            .get("annotations")
            .and_then(|a| a.get("bottleneck_kind"))
            .and_then(JsonValue::as_str),
        Some("point_to_point")
    );

    // /healthz carries the summary; /metrics the transition counters.
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    let h = parse_json(&health).unwrap();
    assert!(
        h.get("alerts")
            .and_then(|a| a.get("firing"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            >= 1,
        "{health}"
    );
    let (_, metrics) = http_get(&addr, "/metrics");
    assert!(
        metrics.contains("netqos_alerts_firing_total 1"),
        "{metrics}"
    );
    server.stop();

    // The transition is part of the forensic record.
    assert!(
        svc.flight()
            .snapshot()
            .iter()
            .any(|c| c.events.iter().any(|e| e.starts_with("alert_firing"))),
        "alert_firing missing from the flight ring"
    );

    // Load stops at t=8 s: the violation clears and the alert resolves.
    let mut resolved_at = None;
    for tick in fired_at + 1..=fired_at + 14 {
        svc.tick().unwrap();
        if svc.alerts().firing_count() == 0 {
            resolved_at = Some(tick);
            break;
        }
    }
    assert!(resolved_at.is_some(), "alert never resolved after the load");
    assert!(svc.telemetry().alerts_resolved_total.get() >= 1);

    // The webhook sink saw the firing batch and the resolved batch:
    // shutdown drains the queue synchronously, so every delivered body
    // is already on the channel.
    hook.shutdown();
    drop(svc);
    let batches: Vec<String> = rx.try_iter().filter(|b| !b.is_empty()).collect();
    drop(rx);
    stop_sink(port);
    sink.join().unwrap();
    assert!(!batches.is_empty(), "no webhook batches delivered");
    let mut saw = std::collections::BTreeSet::new();
    for batch in &batches {
        let doc = parse_json(batch).expect("webhook batch is JSON");
        assert_eq!(
            doc.get("source").and_then(JsonValue::as_str),
            Some("netqos")
        );
        for tr in doc
            .get("transitions")
            .and_then(JsonValue::as_array)
            .expect("transitions array")
        {
            if tr.get("rule").and_then(JsonValue::as_str) == Some("path_qos_violation") {
                if let Some(to) = tr.get("to").and_then(JsonValue::as_str) {
                    saw.insert(to.to_string());
                }
            }
        }
    }
    for state in ["pending", "firing", "resolved"] {
        assert!(saw.contains(state), "missing {state} transition: {saw:?}");
    }
}
