//! Integration coverage for the PromQL-subset query plane: golden
//! `/api/v1/query[_range]` response shapes through the live router, the
//! byte-identity of range answers across in-monitor background
//! compaction, and the federation engine's cross-shard merge agreeing
//! with hand-merged per-shard answers.

use netqos::monitor::live::{build_router, shard_for};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{
    parse_json, HttpRequest, HttpRoute, JsonValue, LtsReader, LtsSource, QueryEngine, SeriesSource,
    Shard, ShardRegistry,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "netqos-query-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn service_with_lts(dir: &std::path::Path, compact: bool) -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        lts_dir: Some(dir.to_path_buf()),
        baseline_save_ticks: 5,
        lts_compact: compact,
        ..ServiceConfig::default()
    };
    MonitoringService::from_model(model, options, config).unwrap()
}

fn get(router: &netqos_telemetry::Router, path: &str, query: &str) -> (u16, String) {
    let req = HttpRequest {
        method: "GET".into(),
        path: path.into(),
        query: query.into(),
        accept: String::new(),
    };
    match router(&req) {
        Some(HttpRoute::Response(r)) => (r.status, r.body),
        _ => panic!("expected buffered response for {path}?{query}"),
    }
}

#[test]
fn api_v1_golden_shapes_through_live_router() {
    let dir = tmpdir("golden");
    let mut svc = service_with_lts(&dir, false);
    svc.run_ticks(7).unwrap();
    svc.flush_lts().expect("final flush");

    let router = build_router(
        svc.registry().clone(),
        svc.live().clone(),
        Some(LtsReader::open(&dir)),
    );
    let t = LtsReader::open(&dir).newest_t().expect("store has points");

    // Golden instant vector: after 7 ticks the self-tick counter's
    // running total is exactly 7, and the response shape is pinned down
    // to the byte (quoted values, metric-first key order, newline).
    let (status, body) = get(
        &*router,
        "/api/v1/query",
        &format!("query=netqos_monitor_ticks_total&time={t}"),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body,
        format!(
            "{{\"status\":\"success\",\"data\":{{\"resultType\":\"vector\",\"result\":\
             [{{\"metric\":{{\"__name__\":\"netqos_monitor_ticks_total\"}},\
             \"value\":[{t},\"7\"]}}]}}}}\n"
        )
    );

    // Golden range matrix: a steady 1-tick/s counter rates to exactly 1
    // at every step; rate() drops __name__.
    let (status, body) = get(
        &*router,
        "/api/v1/query_range",
        &format!(
            "query=rate(netqos_monitor_ticks_total[3])&start={}&end={t}&step=1",
            t - 2
        ),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body,
        format!(
            "{{\"status\":\"success\",\"data\":{{\"resultType\":\"matrix\",\"result\":\
             [{{\"metric\":{{}},\"values\":[[{},\"1\"],[{},\"1\"],[{t},\"1\"]]}}]}}}}\n",
            t - 2,
            t - 1
        )
    );

    // Golden error shape: malformed expressions are 400s with the
    // Prometheus error envelope, not panics.
    let (status, body) = get(&*router, "/api/v1/query", "query=rate(x");
    assert_eq!(status, 400, "{body}");
    let doc = parse_json(&body).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("error"));
    assert_eq!(
        doc.get("errorType").and_then(JsonValue::as_str),
        Some("bad_data")
    );
    let (status, _) = get(&*router, "/api/v1/query", "");
    assert_eq!(status, 400, "missing query= must be a bad request");

    // The query path instruments itself: per-endpoint/status counters
    // and the evaluation-time histogram land in the scraped registry.
    let prom = svc.registry().render_prometheus();
    assert!(
        prom.contains("netqos_query_requests_total{endpoint=\"query\",status=\"ok\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("netqos_query_requests_total{endpoint=\"query\",status=\"bad_request\"} 2"),
        "{prom}"
    );
    assert!(
        prom.contains("netqos_query_requests_total{endpoint=\"query_range\",status=\"ok\"} 1"),
        "{prom}"
    );
    assert!(prom.contains("netqos_query_eval_ns_count 4"), "{prom}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rate_range_is_byte_identical_across_inmonitor_compaction() {
    let dir = tmpdir("compact");
    let mut svc = service_with_lts(&dir, true);
    svc.run_ticks(7).unwrap();
    svc.flush_lts().expect("flush");

    let router = build_router(
        svc.registry().clone(),
        svc.live().clone(),
        Some(LtsReader::open(&dir)),
    );
    let t = LtsReader::open(&dir).newest_t().unwrap();
    let range_query = format!(
        "query=rate(netqos_path_used_bps[5])&start={}&end={t}&step=1",
        t - 4
    );
    let (status, before) = get(&*router, "/api/v1/query_range", &range_query);
    assert_eq!(status, 200, "{before}");
    assert!(before.contains("\"resultType\":\"matrix\""), "{before}");

    // Keep ticking: save ticks now compact in the background (the
    // store's own counter proves at least one ran), while the original
    // range query must not change by a single byte.
    let compactions_before = svc.registry().counter("netqos_lts_compactions_total").get();
    svc.run_ticks(10).unwrap();
    assert!(
        svc.registry().counter("netqos_lts_compactions_total").get() > compactions_before,
        "background compaction should have run on a save tick"
    );
    let (status, after) = get(&*router, "/api/v1/query_range", &range_query);
    assert_eq!(status, 200);
    assert_eq!(before, after, "range answer diverged across compaction");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn federation_cross_shard_sum_matches_hand_merged_answers() {
    let dir_a = tmpdir("shard-a");
    let dir_b = tmpdir("shard-b");
    for dir in [&dir_a, &dir_b] {
        let mut svc = service_with_lts(dir, false);
        svc.run_ticks(6).unwrap();
        svc.flush_lts().expect("flush");
        drop(svc);
    }
    let t = [&dir_a, &dir_b]
        .iter()
        .map(|d| LtsReader::open(d).newest_t().unwrap())
        .min()
        .unwrap();

    // Per-shard ground truth: each store answers alone.
    let expr = "sum by (path) (netqos_path_used_bps)";
    let mut merged: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for dir in [&dir_a, &dir_b] {
        let engine = QueryEngine::new().with_source(
            None,
            Arc::new(LtsSource::new(LtsReader::open(dir))) as Arc<dyn SeriesSource>,
        );
        let out = engine
            .instant(expr, t, netqos_telemetry::Resolution::Raw1s)
            .unwrap();
        let doc = parse_json(&out.to_api_json()).unwrap();
        for item in doc
            .get("data")
            .and_then(|d| d.get("result"))
            .and_then(JsonValue::as_array)
            .unwrap()
        {
            let path = item
                .get("metric")
                .and_then(|m| m.get("path"))
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
            let v: f64 = item.get("value").and_then(JsonValue::as_array).unwrap()[1]
                .as_str()
                .unwrap()
                .parse()
                .unwrap();
            *merged.entry(path).or_insert(0.0) += v;
        }
    }
    assert!(!merged.is_empty(), "shards recorded path gauges");

    // The federation engine fans out to both stores and folds across
    // shards in one evaluation.
    let fed = ShardRegistry::new();
    for (name, dir) in [("north", &dir_a), ("south", &dir_b)] {
        let registry = netqos_telemetry::Registry::new();
        let live = netqos::monitor::live::LiveStatus::new();
        let shard: Shard = shard_for(name, registry, live)
            .with_promql(Arc::new(LtsSource::new(LtsReader::open(dir))));
        fed.register(shard).unwrap();
    }
    let fed_query = |q: &str| -> (u16, String) {
        let req = HttpRequest {
            method: "GET".into(),
            path: "/api/v1/query".into(),
            query: q.into(),
            accept: String::new(),
        };
        let resp = fed.promql_response(&req, false);
        (resp.status, resp.body)
    };

    let encoded = "sum%20by%20(path)%20(netqos_path_used_bps)";
    let (status, body) = fed_query(&format!("query={encoded}&time={t}"));
    assert_eq!(status, 200, "{body}");
    let doc = parse_json(&body).unwrap();
    let result = doc
        .get("data")
        .and_then(|d| d.get("result"))
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(result.len(), merged.len(), "{body}");
    for item in result {
        let path = item
            .get("metric")
            .and_then(|m| m.get("path"))
            .and_then(JsonValue::as_str)
            .unwrap();
        let v: f64 = item.get("value").and_then(JsonValue::as_array).unwrap()[1]
            .as_str()
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            Some(&v),
            merged.get(path),
            "cross-shard sum for {path} diverged from hand-merged answer"
        );
    }

    // Unaggregated selectors carry the shard label the engine spliced in.
    let (status, body) = fed_query(&format!("query=netqos_path_used_bps&time={t}"));
    assert_eq!(status, 200);
    assert!(body.contains("\"shard\":\"north\""), "{body}");
    assert!(body.contains("\"shard\":\"south\""), "{body}");

    // Merge determinism: the same question twice answers byte-for-byte
    // the same (source order, label sort, and value formatting are all
    // canonical).
    let (_, again) = fed_query(&format!("query={encoded}&time={t}"));
    let (_, first) = fed_query(&format!("query={encoded}&time={t}"));
    assert_eq!(first, again, "cross-shard merge must be deterministic");

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn stats_param_exposes_pushdown_through_router() {
    let dir = tmpdir("stats");
    let mut svc = service_with_lts(&dir, false);
    svc.run_ticks(12).unwrap();
    svc.flush_lts().expect("final flush");

    let router = build_router(
        svc.registry().clone(),
        svc.live().clone(),
        Some(LtsReader::open(&dir)),
    );
    let t = LtsReader::open(&dir).newest_t().expect("store has points");
    let expr = format!("query=increase(netqos_monitor_ticks_total[10])&time={t}");

    // Without stats= the body is exactly the pinned Prometheus shape.
    let (status, plain) = get(&*router, "/api/v1/query", &expr);
    assert_eq!(status, 200, "{plain}");
    assert!(!plain.contains("\"stats\""), "{plain}");

    // With stats=1 the data object grows a stats member; the result is
    // otherwise identical, and the full-window counter evaluation took
    // the segment-fold fast path.
    let (status, with) = get(&*router, "/api/v1/query", &format!("{expr}&stats=1"));
    assert_eq!(status, 200, "{with}");
    let doc = parse_json(&with).unwrap();
    let stats = doc
        .get("data")
        .and_then(|d| d.get("stats"))
        .expect("stats object present");
    let num = |k: &str| -> u64 {
        stats
            .get(k)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("{k} missing: {with}")) as u64
    };
    assert!(num("series") >= 1, "{with}");
    assert!(
        num("pushdownEvals") >= 1,
        "full-window increase must fold, not materialize: {with}"
    );
    // Stripping the stats member restores the plain body byte-for-byte.
    let result_part = with.split(",\"stats\":").next().unwrap();
    assert!(
        plain.starts_with(result_part),
        "result payload diverged:\n{plain}\n{with}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
