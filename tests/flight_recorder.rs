//! End-to-end coverage of the causal tracing + flight recorder pipeline
//! on the two-switch testbed: a forced QoS violation must leave a disk
//! snapshot holding full cycle traces — nested spans from the poll
//! round down through SNMP codec, delta ingestion, path traversal, and
//! the QoS decision — with per-connection quantile annotations, in both
//! JSONL and Chrome `trace_event` form.

use netqos::loadgen::{LoadProfile, ProfiledSource};
use netqos::monitor::qos::QosEvent;
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{cycles_from_jsonl, validate_chrome_trace, ParsedCycle};
use std::path::PathBuf;

const SPEC: &str = include_str!("../specs/two-switch.spec");

fn traced_service(flight_dir: PathBuf, loads: &[(&str, &str, LoadProfile)]) -> MonitoringService {
    let model = netqos::spec::parse_and_validate(SPEC).expect("two-switch spec is valid");
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        flight_dir: Some(flight_dir),
        ..ServiceConfig::default()
    };
    let loads: Vec<(String, String, LoadProfile)> = loads
        .iter()
        .map(|(f, t, p)| ((*f).to_string(), (*t).to_string(), p.clone()))
        .collect();
    let mut svc =
        MonitoringService::from_model_with(model, options, config, move |builder, map, m| {
            for (from, to, profile) in &loads {
                let f = m.topology.node_by_name(from).unwrap();
                let t = m.topology.node_by_name(to).unwrap();
                let ip = m.addresses[&t].parse().unwrap();
                builder
                    .install_app(
                        map[&f],
                        Box::new(ProfiledSource::new(ip, profile.clone())),
                        None,
                    )
                    .unwrap();
            }
        })
        .expect("service builds");
    svc.set_tracing(true);
    svc
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netqos-flight-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every stage of the paper's pipeline must appear in the cycle:
/// poll round -> per-device poll -> codec decode -> delta ingest ->
/// path bandwidth -> QoS decision.
fn assert_full_pipeline(cycle: &ParsedCycle) {
    for (target, name) in [
        ("monitor", "cycle"),
        ("monitor.poll", "round"),
        ("monitor.poll", "device"),
        ("snmp.codec", "encode"),
        ("snmp.codec", "decode"),
        ("monitor.delta", "ingest"),
        ("topology.path", "bandwidth"),
        ("monitor.qos", "evaluate"),
    ] {
        assert!(
            cycle
                .spans
                .iter()
                .any(|s| s.target == target && s.name == name),
            "cycle {} is missing span {target}/{name}",
            cycle.seq
        );
    }
}

/// Child spans must nest inside their parents, timewise and by id.
fn assert_nesting(cycle: &ParsedCycle) {
    let root = cycle
        .spans
        .iter()
        .find(|s| s.name == "cycle")
        .expect("root cycle span");
    assert!(root.parent.is_none());
    for s in &cycle.spans {
        let Some(pid) = s.parent else { continue };
        let parent = cycle
            .spans
            .iter()
            .find(|p| p.span_id == pid)
            .unwrap_or_else(|| panic!("span {} orphaned (parent {pid})", s.span_id));
        assert!(
            s.start_ns >= parent.start_ns
                && s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns,
            "span {}/{} [{}, +{}] escapes parent {}/{} [{}, +{}]",
            s.target,
            s.name,
            s.start_ns,
            s.dur_ns,
            parent.target,
            parent.name,
            parent.start_ns,
            parent.dur_ns
        );
    }
}

#[test]
fn violation_snapshots_full_cycle_traces() {
    let dir = tmpdir("violation");
    // 9 MB/s of payload from sensor1 to console ≈ 72 Mb/s on the wire:
    // over feed1's 70% utilization limit on the 100 Mb/s trunk. The
    // load starts at t=9 s so the ring holds plenty of pre-violation
    // history when the snapshot fires.
    let mut svc = traced_service(
        dir.clone(),
        &[("sensor1", "console", LoadProfile::pulse(9, 60, 9_000_000))],
    );
    let mut violated = false;
    for _ in 0..14 {
        for e in svc.tick().expect("tick") {
            violated |= matches!(e, QosEvent::Violated { .. });
        }
    }
    assert!(violated, "the forced load never tripped a QoS violation");
    assert!(
        svc.telemetry().flight_snapshots.get() >= 1,
        "violation should have snapshotted the flight recorder"
    );
    let paths = svc.snapshots().last().expect("snapshot path").clone();
    assert!(paths.jsonl.exists() && paths.chrome.exists());

    // The ring keeps growing after the violation snapshot; `last.*`
    // written on the snapshot trigger is what forensics would read.
    let jsonl = std::fs::read_to_string(dir.join("last.jsonl")).expect("last.jsonl");
    let cycles = cycles_from_jsonl(&jsonl).expect("snapshot parses");
    assert!(
        cycles.len() >= 8,
        "expected >= 8 full cycle traces, got {}",
        cycles.len()
    );
    for cycle in &cycles {
        assert_ne!(cycle.trace_id, 0);
        assert_full_pipeline(cycle);
        assert_nesting(cycle);
    }

    // Per-connection quantile annotations: once baselines exist, every
    // cycle's samples carry a rank and baseline percentiles.
    let annotated: Vec<_> = cycles.iter().flat_map(|c| &c.samples).collect();
    assert!(!annotated.is_empty(), "no bandwidth samples were annotated");
    for s in annotated {
        assert!(!s.path.is_empty() && !s.connection.is_empty());
        assert!((0.0..=1.0).contains(&s.used_rank), "rank {}", s.used_rank);
    }
    // The violating cycle itself is in the record.
    assert!(
        cycles
            .iter()
            .any(|c| c.events.iter().any(|e| e.starts_with("qos_violation"))),
        "no cycle carries the qos_violation event"
    );

    // The Chrome export is valid trace_event JSON with intact nesting.
    let chrome = std::fs::read_to_string(dir.join("last.trace.json")).expect("last.trace.json");
    let stats = validate_chrome_trace(&chrome).expect("valid Chrome trace");
    assert!(stats.cycles >= 8 && stats.spans > stats.cycles);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn anomaly_warnings_fire_before_violation_threshold() {
    let dir = tmpdir("anomaly");
    // Steady light load long enough to mature the baseline, then a step
    // to a heavier (but sub-violation) load: the step is anomalous vs.
    // the connection's own history even though no QoS rule trips.
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let config = ServiceConfig {
        flight_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let mut svc =
        MonitoringService::from_model_with(model, options, config, move |builder, map, m| {
            let f = m.topology.node_by_name("sensor1").unwrap();
            let t = m.topology.node_by_name("console").unwrap();
            let ip = m.addresses[&t].parse().unwrap();
            // 200 KB/s for 25 s, then 4 MB/s (~32 Mb/s, under the 70%
            // utilization and 2 MB/s min_available limits).
            builder
                .install_app(
                    map[&f],
                    Box::new(ProfiledSource::new(ip, LoadProfile::pulse(0, 25, 200_000))),
                    None,
                )
                .unwrap();
            builder
                .install_app(
                    map[&f],
                    Box::new(ProfiledSource::new(
                        ip,
                        LoadProfile::pulse(25, 40, 4_000_000),
                    )),
                    None,
                )
                .unwrap();
        })
        .unwrap();
    svc.set_tracing(true);
    let mut violations = 0;
    for _ in 0..32 {
        violations += svc
            .tick()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, QosEvent::Violated { .. }))
            .count();
    }
    assert_eq!(violations, 0, "the step load must stay under QoS limits");
    assert!(
        svc.telemetry().anomaly_warnings.get() > 0,
        "the load step should rank above p99 of the quiet baseline"
    );
    std::fs::remove_dir_all(&dir).ok();
}
