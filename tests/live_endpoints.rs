//! Integration coverage for the live export plane: a running monitor
//! must answer `GET /metrics`, `/healthz`, and `/snapshot` over real
//! TCP — first in-process (service + router + HttpServer), then through
//! the `netqos monitor --serve` CLI, scraping while the loop is alive.

use netqos::monitor::live::{build_router, unix_now_ns};
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{parse_json, HttpServer, JsonValue};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SPEC: &str = include_str!("../specs/two-switch.spec");

/// Minimal HTTP/1.1 GET: returns (status, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn in_process_router_serves_all_endpoints() {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let mut svc = MonitoringService::from_model(model, options, ServiceConfig::default()).unwrap();
    svc.run_ticks(4).unwrap();

    let router = build_router(svc.registry().clone(), svc.live().clone(), None);
    let server = HttpServer::serve("127.0.0.1:0", router).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    // /metrics: Prometheus text with the pipeline's counters.
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE netqos_monitor_ticks_total counter"));
    assert!(body.contains("netqos_monitor_ticks_total 4"), "{body}");

    // /healthz: the loop ticked milliseconds ago, so it is healthy.
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // /snapshot: JSON digest listing the spec's qospaths and baselines.
    let (status, body) = http_get(&addr, "/snapshot");
    assert_eq!(status, 200);
    let doc = parse_json(&body).expect("snapshot is JSON");
    assert_eq!(doc.get("ticks").and_then(JsonValue::as_u64), Some(4));
    let paths = doc
        .get("paths")
        .and_then(JsonValue::as_array)
        .expect("paths array");
    let names: Vec<&str> = paths
        .iter()
        .filter_map(|p| p.get("name").and_then(JsonValue::as_str))
        .collect();
    assert!(names.contains(&"feed1"), "{names:?}");
    for p in paths {
        assert!(p.get("used_bps").is_some());
        assert!(p.get("baseline").is_some());
    }
    assert!(doc.get("flight").is_some());
    assert!(doc.get("sampler").is_some());
    assert!(doc.get("alerts").is_some());

    // /alerts: the alerting plane's state — quiet run, nothing firing,
    // but the engine's builtin rules are loaded and evaluating.
    let (status, body) = http_get(&addr, "/alerts");
    assert_eq!(status, 200);
    let doc = parse_json(&body).expect("alerts body is JSON");
    assert_eq!(doc.get("firing").and_then(JsonValue::as_u64), Some(0));
    assert!(doc.get("rules").and_then(JsonValue::as_u64).unwrap_or(0) >= 3);
    assert!(doc.get("alerts").and_then(JsonValue::as_array).is_some());

    // /healthz carries the alert summary.
    let (_, health) = http_get(&addr, "/healthz");
    assert!(health.contains("\"alerts\""), "{health}");

    // Unknown path: 404. Wrong method: 405.
    let (status, _) = http_get(&addr, "/nope");
    assert_eq!(status, 404);
    let mut stream = TcpStream::connect(&addr).unwrap();
    write!(
        stream,
        "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");

    // Staleness: with no further ticks and a tiny budget, /healthz flips
    // to 503 (the liveness signal, not just reachability).
    svc.live().set_stale_after_ns(1);
    std::thread::sleep(Duration::from_millis(5));
    let (status, body) = http_get(&addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("\"status\":\"stale\""), "{body}");
    // A clean finish restores 200.
    svc.live().mark_finished();
    let (status, _) = http_get(&addr, "/healthz");
    assert_eq!(status, 200);

    assert!(server.requests_served() >= 6);
    server.stop();
    // After stop, the port no longer accepts.
    assert!(
        TcpStream::connect(&addr).is_err() || {
            // Accept may race on some platforms; a connected socket must at
            // least see EOF instead of a response.
            let mut s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    );
    let _ = unix_now_ns(); // keep the helper import exercised
}

#[test]
fn snapshot_sse_streams_one_event_per_tick() {
    let model = netqos::spec::parse_and_validate(SPEC).unwrap();
    let options = SimNetworkOptions {
        monitor_host: "console".into(),
        ..SimNetworkOptions::default()
    };
    let mut svc = MonitoringService::from_model(model, options, ServiceConfig::default()).unwrap();
    let router = build_router(svc.registry().clone(), svc.live().clone(), None);
    let server = HttpServer::serve("127.0.0.1:0", router).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    // Follow the stream on a client thread while the loop ticks.
    let stream_addr = addr.clone();
    let reader = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&stream_addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(
            stream,
            "GET /snapshot?follow=1 HTTP/1.1\r\nHost: x\r\n\
             Accept: text/event-stream\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        // The server closes the stream once the run finishes, so
        // read_to_string terminates.
        stream.read_to_string(&mut response).unwrap();
        response
    });

    for _ in 0..3 {
        svc.tick().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    svc.live().mark_finished();
    let response = reader.join().unwrap();

    assert!(
        response.contains("Content-Type: text/event-stream"),
        "{response}"
    );
    // Events carry the tick number as the SSE id and the snapshot JSON
    // as data; a 60ms pause per tick gives the 20ms poller time to
    // deliver each one individually.
    let ids: Vec<&str> = response
        .lines()
        .filter_map(|l| l.strip_prefix("id: "))
        .collect();
    assert!(ids.len() >= 2, "wanted >=2 SSE events, got {response:?}");
    assert_eq!(*ids.last().unwrap(), "3", "last event is the last tick");
    let datas: Vec<&str> = response
        .lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .collect();
    assert_eq!(ids.len(), datas.len());
    for data in &datas {
        let doc = parse_json(data).expect("SSE data is the snapshot JSON");
        assert!(doc.get("paths").is_some());
    }
    // Ids are strictly increasing: no tick delivered twice.
    let nums: Vec<u64> = ids.iter().map(|s| s.parse().unwrap()).collect();
    assert!(nums.windows(2).all(|w| w[0] < w[1]), "{nums:?}");

    server.stop();
}

#[test]
fn cli_monitor_serve_scrapes_while_running() {
    let bin = {
        let mut path = std::env::current_exe().expect("test exe path");
        path.pop(); // deps/
        path.pop(); // debug/
        path.push("netqos");
        path
    };
    let mut child = std::process::Command::new(&bin)
        .args([
            "monitor",
            "specs/two-switch.spec",
            "--duration",
            "120",
            "--pace-ms",
            "100",
            "--trace-sample",
            "3",
            "--serve",
            "127.0.0.1:0",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn netqos monitor --serve");
    // The bound address is announced on stderr before the loop starts.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read serve line");
    let addr = line
        .trim()
        .strip_prefix("serving http://")
        .and_then(|r| r.split('/').next())
        .unwrap_or_else(|| panic!("unexpected serve line {line:?}"))
        .to_string();

    // Scrape all three endpoints while the paced loop is still running.
    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("netqos_monitor_ticks_total"), "{metrics}");
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    // Give the loop time to tick a few times, then check the snapshot
    // reflects live progress and the sampler is thinning traces.
    std::thread::sleep(Duration::from_millis(600));
    let (status, snap) = http_get(&addr, "/snapshot");
    assert_eq!(status, 200);
    let doc = parse_json(&snap).expect("snapshot JSON");
    assert!(doc.get("ticks").and_then(JsonValue::as_u64).unwrap_or(0) >= 2);
    let sampler = doc.get("sampler").expect("sampler block");
    let seen = sampler.get("seen").and_then(JsonValue::as_u64).unwrap();
    let dropped = sampler.get("dropped").and_then(JsonValue::as_u64).unwrap();
    assert!(seen >= 2, "sampler saw {seen} cycles");
    assert!(dropped >= 1, "1-in-3 head sampling should drop cycles");

    let _ = child.kill();
    let _ = child.wait();
}
