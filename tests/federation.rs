//! Integration coverage for the federated export plane: N monitoring
//! shards behind one merged `/metrics`, `/healthz`, and `/snapshot` —
//! first in-process (two concurrently ticking services behind one
//! `ShardRegistry`), then through the `netqos federate` CLI.

use netqos::monitor::live::shard_for;
use netqos::monitor::service::{MonitoringService, ServiceConfig};
use netqos::monitor::simnet::SimNetworkOptions;
use netqos_telemetry::{parse_json, HttpServer, JsonValue, ShardRegistry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const TWO_SWITCH: &str = include_str!("../specs/two-switch.spec");
const LIRTSS: &str = include_str!("../specs/lirtss.spec");

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn service_from(spec: &str, monitor_host: &str) -> MonitoringService {
    let model = netqos::spec::parse_and_validate(spec).unwrap();
    let options = SimNetworkOptions {
        monitor_host: monitor_host.into(),
        ..SimNetworkOptions::default()
    };
    MonitoringService::from_model(model, options, ServiceConfig::default()).unwrap()
}

#[test]
fn two_shards_merge_behind_one_export_plane() {
    // Two independent services from two different spec files, each
    // built and ticking on its own thread (MonitoringService itself is
    // not Send) while the federation scrapes their shared handles — the
    // exact shape `netqos federate` runs in production.
    let (tx, rx) = std::sync::mpsc::channel();
    let spawn_shard = |name: &'static str, spec: &'static str, host: &'static str, ticks: u64| {
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut svc = service_from(spec, host);
            svc.set_tracing(true);
            tx.send((name, svc.registry().clone(), svc.live().clone()))
                .unwrap();
            drop(tx);
            for _ in 0..ticks {
                svc.tick().unwrap();
                std::thread::sleep(Duration::from_millis(20));
            }
            // The wall-clock histogram totals, to check merge fidelity.
            (
                svc.telemetry().tick_ns.count(),
                svc.telemetry().tick_ns.sum(),
            )
        })
    };
    let a = spawn_shard("two-switch", TWO_SWITCH, "console", 6);
    let b = spawn_shard("lirtss", LIRTSS, "L", 4);
    drop(tx);

    let fed = ShardRegistry::new();
    let mut lives = std::collections::HashMap::new();
    for (name, registry, live) in rx.iter().take(2) {
        lives.insert(name, live.clone());
        fed.register(shard_for(name, registry, live)).unwrap();
    }
    let server = HttpServer::serve("127.0.0.1:0", fed.router()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    std::thread::sleep(Duration::from_millis(60));
    let (status, mid_scrape) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(
        mid_scrape.contains("shard=\"two-switch\"") && mid_scrape.contains("shard=\"lirtss\""),
        "mid-run scrape must already carry both shards"
    );
    let (a_count, a_sum) = a.join().unwrap();
    let (b_count, b_sum) = b.join().unwrap();

    // Merged /metrics: shard-labelled series plus unlabelled aggregate.
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("netqos_federation_shards 2"), "{body}");
    assert!(body.contains("netqos_monitor_ticks_total{shard=\"two-switch\"} 6"));
    assert!(body.contains("netqos_monitor_ticks_total{shard=\"lirtss\"} 4"));
    assert!(
        body.contains("\nnetqos_monitor_ticks_total 10\n"),
        "aggregate is the sum across shards"
    );
    // Histogram exposition with per-shard and merged buckets.
    assert!(body.contains("netqos_monitor_tick_duration_ns_bucket{shard=\"two-switch\",le="));
    assert!(body.contains("netqos_monitor_tick_duration_ns_bucket{le=\"+Inf\"} 10"));
    assert_eq!(
        body.matches("# TYPE netqos_monitor_ticks_total counter")
            .count(),
        1,
        "one TYPE header per family"
    );

    // The merged histogram preserves per-shard totals exactly.
    let merged = fed.merged();
    let h = merged.histogram("netqos_monitor_tick_duration_ns");
    assert_eq!(h.count(), a_count + b_count);
    assert_eq!(h.sum(), a_sum + b_sum);

    // /healthz: both loops ticked moments ago.
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    let doc = parse_json(&health).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(
        doc.get("shards")
            .and_then(JsonValue::as_array)
            .map(|s| s.len()),
        Some(2)
    );

    // /snapshot: per-shard digest array with live tick counts.
    let (status, snap) = http_get(&addr, "/snapshot");
    assert_eq!(status, 200);
    let doc = parse_json(&snap).unwrap();
    let shards = doc.get("shards").and_then(JsonValue::as_array).unwrap();
    assert_eq!(shards.len(), 2);
    for shard in shards {
        let name = shard.get("shard").and_then(JsonValue::as_str).unwrap();
        let ticks = shard
            .get("snapshot")
            .and_then(|s| s.get("ticks"))
            .and_then(JsonValue::as_u64)
            .unwrap();
        match name {
            "two-switch" => assert_eq!(ticks, 6),
            "lirtss" => assert_eq!(ticks, 4),
            other => panic!("unexpected shard {other}"),
        }
    }

    // A stalled shard degrades the whole federation to 503, with the
    // healthy shard still reported healthy in the detail.
    lives["two-switch"].set_stale_after_ns(1);
    lives["lirtss"].mark_finished();
    std::thread::sleep(Duration::from_millis(5));
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 503, "{health}");
    let doc = parse_json(&health).unwrap();
    assert_eq!(
        doc.get("status").and_then(JsonValue::as_str),
        Some("degraded")
    );
    let shards = doc.get("shards").and_then(JsonValue::as_array).unwrap();
    let healthy_flags: Vec<(String, bool)> = shards
        .iter()
        .map(|s| {
            (
                s.get("shard")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
                s.get("healthy").and_then(JsonValue::as_bool).unwrap(),
            )
        })
        .collect();
    assert!(healthy_flags.contains(&("two-switch".into(), false)));
    assert!(healthy_flags.contains(&("lirtss".into(), true)));

    server.stop();
}

#[test]
fn cli_federate_serves_merged_metrics_from_two_spec_files() {
    let bin = {
        let mut path = std::env::current_exe().expect("test exe path");
        path.pop(); // deps/
        path.pop(); // debug/
        path.push("netqos");
        path
    };
    let mut child = std::process::Command::new(&bin)
        .args([
            "federate",
            "specs/two-switch.spec",
            "specs/lirtss.spec",
            "--duration",
            "120",
            "--pace-ms",
            "100",
            "--trace-sample",
            "2",
            "--serve",
            "127.0.0.1:0",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn netqos federate");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read serve line");
    let addr = line
        .trim()
        .strip_prefix("federation serving http://")
        .and_then(|r| r.split('/').next())
        .unwrap_or_else(|| panic!("unexpected serve line {line:?}"))
        .to_string();
    assert!(line.contains("(2 shards"), "{line}");

    // Scrape while both paced shards are still polling.
    std::thread::sleep(Duration::from_millis(400));
    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    for needle in [
        "netqos_federation_shards 2",
        "netqos_monitor_ticks_total{shard=\"two-switch\"}",
        "netqos_monitor_ticks_total{shard=\"lirtss\"}",
        "_bucket{shard=\"two-switch\",le=",
        "_bucket{le=\"+Inf\"}",
        "# TYPE netqos_monitor_tick_duration_ns histogram",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in {metrics}");
    }
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    let doc = parse_json(&health).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    let (status, snap) = http_get(&addr, "/snapshot");
    assert_eq!(status, 200);
    let doc = parse_json(&snap).unwrap();
    assert_eq!(
        doc.get("shards")
            .and_then(JsonValue::as_array)
            .map(|s| s.len()),
        Some(2)
    );

    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn cli_federate_rejects_a_single_spec() {
    let bin = {
        let mut path = std::env::current_exe().expect("test exe path");
        path.pop();
        path.pop();
        path.push("netqos");
        path
    };
    let out = std::process::Command::new(&bin)
        .args(["federate", "specs/two-switch.spec"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("run netqos federate");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("at least two"), "{stderr}");
}
