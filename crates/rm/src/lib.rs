//! # netqos-rm
//!
//! A DeSiDeRaTa-style resource-manager substrate — the consumer of the
//! network monitor's reports.
//!
//! The paper positions its monitor as a component of the DeSiDeRaTa
//! middleware, which "performs QoS monitoring and failure detection, QoS
//! diagnosis, and reallocation of resources to adapt the system to achieve
//! acceptable levels of QoS". The original middleware managed only
//! computational resources and "assumed no QoS violation is caused by
//! network delays"; this crate closes the loop on the network side:
//!
//! * [`app`] — real-time applications allocated to hosts;
//! * [`manager`] — the RM event loop: ingest monitor state, detect path
//!   QoS violations, **diagnose** the bottleneck connection, and propose a
//!   **reallocation** (moving an application endpoint to a host whose
//!   communication path avoids the bottleneck).
//!
//! The reallocation heuristic is intentionally simple and fully
//! deterministic: among candidate hosts it picks the one whose path to the
//! fixed peer has the largest available bandwidth while avoiding the
//! diagnosed bottleneck. A production middleware would add CPU load and
//! deadline feasibility; those dimensions belong to the original
//! DeSiDeRaTa work and are out of the reproduced paper's scope.

pub mod app;
pub mod manager;

pub use app::{Allocation, RtApp};
pub use manager::{ReallocationAdvice, ResourceManager, RmEvent};
