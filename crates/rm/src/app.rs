//! Real-time applications and their host allocation.

use netqos_topology::NodeId;
use std::collections::HashMap;
use std::fmt;

/// A real-time application endpoint managed by the RM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtApp {
    /// Application name (unique).
    pub name: String,
    /// Host the application currently runs on.
    pub host: NodeId,
    /// Whether the RM may move this application (some apps are pinned to
    /// special hardware).
    pub movable: bool,
}

/// Errors from allocation bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// Application name already registered.
    DuplicateApp(String),
    /// Unknown application.
    NoSuchApp(String),
    /// The application is pinned.
    AppPinned(String),
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::DuplicateApp(a) => write!(f, "application `{a}` already exists"),
            AllocationError::NoSuchApp(a) => write!(f, "no such application `{a}`"),
            AllocationError::AppPinned(a) => write!(f, "application `{a}` is pinned to its host"),
        }
    }
}

impl std::error::Error for AllocationError {}

/// The current application-to-host allocation.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    apps: HashMap<String, RtApp>,
}

impl Allocation {
    /// Creates an empty allocation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an application on a host.
    pub fn place(
        &mut self,
        name: &str,
        host: NodeId,
        movable: bool,
    ) -> Result<(), AllocationError> {
        if self.apps.contains_key(name) {
            return Err(AllocationError::DuplicateApp(name.to_owned()));
        }
        self.apps.insert(
            name.to_owned(),
            RtApp {
                name: name.to_owned(),
                host,
                movable,
            },
        );
        Ok(())
    }

    /// Looks up an application.
    pub fn get(&self, name: &str) -> Option<&RtApp> {
        self.apps.get(name)
    }

    /// The host of an application.
    pub fn host_of(&self, name: &str) -> Result<NodeId, AllocationError> {
        self.apps
            .get(name)
            .map(|a| a.host)
            .ok_or_else(|| AllocationError::NoSuchApp(name.to_owned()))
    }

    /// Moves an application to a new host (the migration itself is outside
    /// this substrate's scope).
    pub fn migrate(&mut self, name: &str, to: NodeId) -> Result<(), AllocationError> {
        let app = self
            .apps
            .get_mut(name)
            .ok_or_else(|| AllocationError::NoSuchApp(name.to_owned()))?;
        if !app.movable {
            return Err(AllocationError::AppPinned(name.to_owned()));
        }
        app.host = to;
        Ok(())
    }

    /// All applications on a host.
    pub fn apps_on(&self, host: NodeId) -> Vec<&RtApp> {
        let mut v: Vec<&RtApp> = self.apps.values().filter(|a| a.host == host).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Number of applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no applications are registered.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_lookup() {
        let mut a = Allocation::new();
        a.place("radar", NodeId(1), true).unwrap();
        assert_eq!(a.host_of("radar").unwrap(), NodeId(1));
        assert_eq!(a.len(), 1);
        assert!(a.place("radar", NodeId(2), true).is_err());
        assert!(a.host_of("ghost").is_err());
    }

    #[test]
    fn migrate_respects_pinning() {
        let mut a = Allocation::new();
        a.place("radar", NodeId(1), true).unwrap();
        a.place("sensor", NodeId(1), false).unwrap();
        a.migrate("radar", NodeId(2)).unwrap();
        assert_eq!(a.host_of("radar").unwrap(), NodeId(2));
        assert_eq!(
            a.migrate("sensor", NodeId(2)),
            Err(AllocationError::AppPinned("sensor".into()))
        );
    }

    #[test]
    fn apps_on_host_sorted() {
        let mut a = Allocation::new();
        a.place("b", NodeId(1), true).unwrap();
        a.place("a", NodeId(1), true).unwrap();
        a.place("c", NodeId(2), true).unwrap();
        let names: Vec<&str> = a
            .apps_on(NodeId(1))
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
