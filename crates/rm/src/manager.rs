//! The resource-manager event loop: violation → diagnosis → advice.

use crate::app::Allocation;
use netqos_monitor::qos::{QosEvent, QosMonitor, ViolationKind};
use netqos_monitor::{MonitorError, NetworkMonitor};
use netqos_spec::QosPathSpec;
use netqos_telemetry::{Counter, Histogram, Tracer};
use netqos_topology::bandwidth;
use netqos_topology::path;
use netqos_topology::{ConnId, NodeId};
use std::collections::HashMap;

/// A proposed application move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReallocationAdvice {
    /// The qospath whose violation triggered the advice.
    pub path_name: String,
    /// The application to move.
    pub app: String,
    /// Current host.
    pub from: NodeId,
    /// Proposed host.
    pub to: NodeId,
    /// Expected available bandwidth of the new path (bits/s).
    pub expected_available_bps: u64,
}

/// Resource-manager events, in occurrence order.
#[derive(Debug, Clone, PartialEq)]
pub enum RmEvent {
    /// A path QoS violation was detected; carries the diagnosed
    /// bottleneck connection (described by name for operator logs).
    ViolationDetected {
        /// The qospath name.
        path_name: String,
        /// Why.
        kind: ViolationKind,
        /// The diagnosed bottleneck.
        bottleneck: ConnId,
        /// Human-readable bottleneck description.
        bottleneck_desc: String,
    },
    /// A reallocation proposal (requires an app registered on a violated
    /// path endpoint and a strictly better candidate host).
    Advice(ReallocationAdvice),
    /// No better placement exists; the violation stands.
    NoRemedy {
        /// The qospath name.
        path_name: String,
    },
    /// The path recovered.
    Recovered {
        /// The qospath name.
        path_name: String,
    },
}

/// The network-aware slice of the DeSiDeRaTa resource manager.
pub struct ResourceManager {
    qos: QosMonitor,
    specs: HashMap<String, QosPathSpec>,
    /// Which application implements the `from` endpoint of each qospath.
    path_apps: HashMap<String, String>,
    allocation: Allocation,
    history: Vec<RmEvent>,
    evaluations: Counter,
    advice_issued: Counter,
    no_remedy: Counter,
    decision_ns: Histogram,
    tracer: Tracer,
}

impl ResourceManager {
    /// Creates a manager over qospath requirements.
    pub fn new(
        monitor: &NetworkMonitor,
        specs: &[QosPathSpec],
        allocation: Allocation,
    ) -> Result<Self, MonitorError> {
        let r = netqos_telemetry::global();
        Ok(ResourceManager {
            qos: QosMonitor::new(monitor, specs)?,
            specs: specs.iter().map(|s| (s.name.clone(), s.clone())).collect(),
            path_apps: HashMap::new(),
            allocation,
            history: Vec::new(),
            evaluations: r.counter("netqos_rm_evaluations_total"),
            advice_issued: r.counter("netqos_rm_advice_total"),
            no_remedy: r.counter("netqos_rm_no_remedy_total"),
            decision_ns: r.histogram("netqos_rm_decision_latency_ns"),
            tracer: Tracer::disabled(),
        })
    }

    /// Routes this manager's causal spans into `tracer` (disabled by
    /// default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Re-resolves this manager's metric handles against `registry`
    /// instead of the process-global one (used by services that keep one
    /// registry per pipeline).
    pub fn set_registry(&mut self, registry: &netqos_telemetry::Registry) {
        self.evaluations = registry.counter("netqos_rm_evaluations_total");
        self.advice_issued = registry.counter("netqos_rm_advice_total");
        self.no_remedy = registry.counter("netqos_rm_no_remedy_total");
        self.decision_ns = registry.histogram("netqos_rm_decision_latency_ns");
    }

    /// Builds a manager straight from a validated specification: the
    /// spec's `application` declarations become the initial allocation,
    /// and every `qospath` with an `application` property is bound to it.
    pub fn from_spec_model(
        monitor: &NetworkMonitor,
        model: &netqos_spec::SpecModel,
    ) -> Result<Self, MonitorError> {
        let mut allocation = Allocation::new();
        for app in &model.applications {
            allocation
                .place(&app.name, app.host, app.movable)
                .map_err(|e| MonitorError::Topology(e.to_string()))?;
        }
        let mut rm = Self::new(monitor, &model.qos_paths, allocation)?;
        for q in &model.qos_paths {
            if let Some(app) = &q.application {
                rm.bind_app(&q.name, app);
            }
        }
        Ok(rm)
    }

    /// Declares that `app` implements the sending endpoint of `path_name`
    /// (so a violation of that path may be remedied by moving `app`).
    pub fn bind_app(&mut self, path_name: &str, app: &str) {
        self.path_apps.insert(path_name.to_owned(), app.to_owned());
    }

    /// The current allocation.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// All events so far.
    pub fn history(&self) -> &[RmEvent] {
        &self.history
    }

    /// Runs one RM evaluation cycle against current monitor state.
    ///
    /// The cycle's wall-clock cost lands in the
    /// `netqos_rm_decision_latency_ns` histogram — the RM is part of the
    /// paper's real-time control loop, so its own decision latency is a
    /// monitored quantity.
    pub fn evaluate(&mut self, monitor: &NetworkMonitor) -> Vec<RmEvent> {
        let mut span = self.tracer.span("rm.manager", "decision");
        let decision_timer = self.decision_ns.start_timer();
        self.evaluations.inc();
        let mut out = Vec::new();
        for event in self.qos.evaluate(monitor) {
            match event {
                QosEvent::Violated {
                    path_name,
                    kind,
                    bottleneck,
                } => {
                    out.push(RmEvent::ViolationDetected {
                        path_name: path_name.clone(),
                        kind,
                        bottleneck,
                        bottleneck_desc: monitor.topology().describe_connection(bottleneck),
                    });
                    match self.diagnose(monitor, &path_name, bottleneck) {
                        Some(advice) => {
                            self.advice_issued.inc();
                            out.push(RmEvent::Advice(advice));
                        }
                        None => {
                            self.no_remedy.inc();
                            out.push(RmEvent::NoRemedy { path_name });
                        }
                    }
                }
                QosEvent::Cleared { path_name } => {
                    out.push(RmEvent::Recovered { path_name });
                }
            }
        }
        self.history.extend(out.iter().cloned());
        drop(decision_timer);
        span.set_attr("events", out.len());
        out
    }

    /// Proposes the best alternative host for the app bound to a violated
    /// path: among hosts whose path to the fixed peer avoids the
    /// bottleneck connection, pick the one with maximum available
    /// bandwidth; require it to satisfy the requirement if one is set.
    fn diagnose(
        &self,
        monitor: &NetworkMonitor,
        path_name: &str,
        bottleneck: ConnId,
    ) -> Option<ReallocationAdvice> {
        let spec = self.specs.get(path_name)?;
        let app_name = self.path_apps.get(path_name)?;
        let app = self.allocation.get(app_name)?;
        if !app.movable {
            return None;
        }
        // The app sits on one endpoint; the peer is the other.
        let (from, peer) = if app.host == spec.from {
            (spec.from, spec.to)
        } else if app.host == spec.to {
            (spec.to, spec.from)
        } else {
            return None; // stale binding
        };

        let topo = monitor.topology();
        let mut best: Option<(NodeId, u64)> = None;
        for (candidate, node) in topo.nodes() {
            if !node.kind.is_host() || candidate == from || candidate == peer {
                continue;
            }
            let Ok(p) = path::find_path(topo, candidate, peer) else {
                continue;
            };
            if p.connections.contains(&bottleneck) {
                continue; // still crosses the congested segment
            }
            let Ok(bw) = bandwidth::path_bandwidth(topo, &p, monitor.rates()) else {
                continue;
            };
            if let Some(required) = spec.min_available_bps {
                if bw.available_bps < required {
                    continue;
                }
            }
            if best.map(|(_, b)| bw.available_bps > b).unwrap_or(true) {
                best = Some((candidate, bw.available_bps));
            }
        }
        best.map(|(to, expected)| ReallocationAdvice {
            path_name: path_name.to_owned(),
            app: app_name.clone(),
            from,
            to,
            expected_available_bps: expected,
        })
    }

    /// Applies a previously issued advice to the allocation.
    pub fn apply(
        &mut self,
        advice: &ReallocationAdvice,
    ) -> Result<(), crate::app::AllocationError> {
        self.allocation.migrate(&advice.app, advice.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_monitor::poll::{DeviceSnapshot, IfSample};
    use netqos_topology::{IfIx, NetworkTopology, NodeKind};

    /// Topology: A and C on a fast switch; B behind a hub shared with A's
    /// path; requirement on A<->B. Overloading the hub violates; moving
    /// the app from A to... wait — the app endpoint is A and the peer B is
    /// behind the hub, so every path to B crosses the hub. Instead the
    /// test uses B's side: peer A, app on B, candidate host C avoids
    /// nothing... so build a topology where the bottleneck is avoidable:
    /// A -- sw1 -- B and C -- sw2 -- B (B dual-homed switches? hosts have
    /// one NIC). Simplest: two switches bridged; A on sw1, C on sw2, peer
    /// P on sw2. Path A->P crosses the sw1-sw2 trunk (bottleneck);
    /// candidate C reaches P within sw2 and avoids the trunk.
    fn build() -> (NetworkTopology, NodeId, NodeId, NodeId, ConnId) {
        let mut t = NetworkTopology::new();
        let sw1 = t.add_node("sw1", NodeKind::Switch).unwrap();
        let sw2 = t.add_node("sw2", NodeKind::Switch).unwrap();
        for sw in [sw1, sw2] {
            for p in 0..3 {
                t.add_interface(sw, &format!("p{p}"), 100_000_000).unwrap();
            }
        }
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 100_000_000).unwrap();
        let c = t.add_node("C", NodeKind::Host).unwrap();
        t.add_interface(c, "eth0", 100_000_000).unwrap();
        let p = t.add_node("P", NodeKind::Host).unwrap();
        t.add_interface(p, "eth0", 100_000_000).unwrap();
        t.connect((a, IfIx(0)), (sw1, IfIx(0))).unwrap();
        let trunk = t.connect((sw1, IfIx(2)), (sw2, IfIx(2))).unwrap();
        t.connect((c, IfIx(0)), (sw2, IfIx(0))).unwrap();
        t.connect((p, IfIx(0)), (sw2, IfIx(1))).unwrap();
        (t, a, c, p, trunk)
    }

    fn feed(m: &mut NetworkMonitor, node: NodeId, descr: &str, uptime: u32, in_octets: u32) {
        m.ingest(
            node,
            DeviceSnapshot {
                uptime_ticks: uptime,
                interfaces: vec![IfSample {
                    if_index: 1,
                    descr: descr.into(),
                    speed_bps: 100_000_000,
                    in_octets,
                    out_octets: 0,
                    in_ucast_pkts: 0,
                    out_nucast_pkts: 0,
                }],
            },
        )
        .unwrap();
    }

    fn feed_switch(m: &mut NetworkMonitor, node: NodeId, uptime: u32, trunk_octets: u32) {
        let mk = |ix: u32, in_oct: u32| IfSample {
            if_index: ix,
            descr: format!("p{}", ix - 1),
            speed_bps: 100_000_000,
            in_octets: in_oct,
            out_octets: 0,
            in_ucast_pkts: 0,
            out_nucast_pkts: 0,
        };
        m.ingest(
            node,
            DeviceSnapshot {
                uptime_ticks: uptime,
                interfaces: vec![mk(1, 0), mk(2, 0), mk(3, trunk_octets)],
            },
        )
        .unwrap();
    }

    #[test]
    fn violation_yields_advice_avoiding_bottleneck() {
        let (t, a, c, p, trunk) = build();
        let sw1 = t.node_by_name("sw1").unwrap();
        let sw2 = t.node_by_name("sw2").unwrap();
        let mut monitor = NetworkMonitor::new(t);
        let specs = vec![QosPathSpec {
            name: "ap".into(),
            from: a,
            to: p,
            min_available_bps: Some(50_000_000),
            max_utilization: None,
            application: None,
        }];
        let mut alloc = Allocation::new();
        alloc.place("tracker", a, true).unwrap();
        let mut rm = ResourceManager::new(&monitor, &specs, alloc).unwrap();
        rm.bind_app("ap", "tracker");

        // Baselines.
        for (n, d) in [(a, "eth0"), (c, "eth0"), (p, "eth0")] {
            feed(&mut monitor, n, d, 0, 0);
        }
        feed_switch(&mut monitor, sw1, 0, 0);
        feed_switch(&mut monitor, sw2, 0, 0);
        // 1 s later: the trunk carries 60 Mb/s of cross traffic.
        for (n, d) in [(a, "eth0"), (c, "eth0"), (p, "eth0")] {
            feed(&mut monitor, n, d, 100, 0);
        }
        feed_switch(&mut monitor, sw1, 100, 7_500_000);
        feed_switch(&mut monitor, sw2, 100, 7_500_000);

        let events = rm.evaluate(&monitor);
        assert!(
            matches!(&events[0], RmEvent::ViolationDetected { bottleneck, .. } if *bottleneck == trunk),
            "{events:?}"
        );
        match &events[1] {
            RmEvent::Advice(advice) => {
                assert_eq!(advice.app, "tracker");
                assert_eq!(advice.from, a);
                assert_eq!(advice.to, c, "C avoids the trunk");
                assert!(advice.expected_available_bps >= 50_000_000);
                rm.apply(&advice.clone()).unwrap();
                assert_eq!(rm.allocation().host_of("tracker").unwrap(), c);
            }
            other => panic!("expected advice, got {other:?}"),
        }
    }

    #[test]
    fn from_spec_model_builds_allocation_and_bindings() {
        let src = r#"
            host A { address 10.0.0.1; interface e { speed 10Mbps; } }
            host B { address 10.0.0.2; interface e { speed 10Mbps; } }
            connection A.e <-> B.e;
            application radar on A;
            application logger on B { pinned; }
            qospath ab from A to B { min_available 9Mbps; application radar; }
        "#;
        let model = netqos_spec::parse_and_validate(src).unwrap();
        let mut monitor = NetworkMonitor::new(model.topology.clone());
        let mut rm = ResourceManager::from_spec_model(&monitor, &model).unwrap();
        assert_eq!(rm.allocation().len(), 2);
        let a = model.topology.node_by_name("A").unwrap();
        assert_eq!(rm.allocation().host_of("radar").unwrap(), a);

        // Drive a violation; the bound app is found automatically (two
        // hosts only, so the verdict is NoRemedy, proving the binding
        // resolved and diagnosis ran).
        feed(&mut monitor, a, "e", 0, 0);
        let b = model.topology.node_by_name("B").unwrap();
        feed(&mut monitor, b, "e", 0, 0);
        feed(&mut monitor, a, "e", 100, 0);
        feed(&mut monitor, b, "e", 100, 500_000); // 4 Mb/s used
        let events = rm.evaluate(&monitor);
        assert!(matches!(events[0], RmEvent::ViolationDetected { .. }));
        assert!(matches!(events[1], RmEvent::NoRemedy { .. }));
    }

    #[test]
    fn no_remedy_when_no_candidate_escapes_bottleneck() {
        // Two hosts only: every alternative still crosses the same link.
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 10_000_000).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        t.add_interface(b, "eth0", 10_000_000).unwrap();
        t.connect((a, IfIx(0)), (b, IfIx(0))).unwrap();
        let mut monitor = NetworkMonitor::new(t);
        let specs = vec![QosPathSpec {
            name: "ab".into(),
            from: a,
            to: b,
            min_available_bps: Some(9_000_000),
            max_utilization: None,
            application: None,
        }];
        let mut alloc = Allocation::new();
        alloc.place("x", a, true).unwrap();
        let mut rm = ResourceManager::new(&monitor, &specs, alloc).unwrap();
        rm.bind_app("ab", "x");

        feed(&mut monitor, a, "eth0", 0, 0);
        feed(&mut monitor, b, "eth0", 0, 0);
        feed(&mut monitor, a, "eth0", 100, 0);
        feed(&mut monitor, b, "eth0", 100, 500_000); // 4 Mb/s used
        let events = rm.evaluate(&monitor);
        assert!(matches!(events[0], RmEvent::ViolationDetected { .. }));
        assert!(matches!(events[1], RmEvent::NoRemedy { .. }));
    }

    #[test]
    fn recovery_event_emitted() {
        let (t, a, _c, p, _) = build();
        let sw1 = t.node_by_name("sw1").unwrap();
        let sw2 = t.node_by_name("sw2").unwrap();
        let c = t.node_by_name("C").unwrap();
        let mut monitor = NetworkMonitor::new(t);
        let specs = vec![QosPathSpec {
            name: "ap".into(),
            from: a,
            to: p,
            min_available_bps: Some(50_000_000),
            max_utilization: None,
            application: None,
        }];
        let mut rm = ResourceManager::new(&monitor, &specs, Allocation::new()).unwrap();

        for (n, d) in [(a, "eth0"), (c, "eth0"), (p, "eth0")] {
            feed(&mut monitor, n, d, 0, 0);
        }
        feed_switch(&mut monitor, sw1, 0, 0);
        feed_switch(&mut monitor, sw2, 0, 0);
        for (n, d) in [(a, "eth0"), (c, "eth0"), (p, "eth0")] {
            feed(&mut monitor, n, d, 100, 0);
        }
        feed_switch(&mut monitor, sw1, 100, 7_500_000);
        feed_switch(&mut monitor, sw2, 100, 7_500_000);
        let events = rm.evaluate(&monitor);
        // No app bound: violation + no remedy.
        assert_eq!(events.len(), 2);

        // Load stops.
        for (n, d) in [(a, "eth0"), (c, "eth0"), (p, "eth0")] {
            feed(&mut monitor, n, d, 200, 0);
        }
        feed_switch(&mut monitor, sw1, 200, 7_500_000);
        feed_switch(&mut monitor, sw2, 200, 7_500_000);
        let events = rm.evaluate(&monitor);
        assert_eq!(
            events,
            vec![RmEvent::Recovered {
                path_name: "ap".into()
            }]
        );
        assert_eq!(rm.history().len(), 3);
    }
}
