//! The in-simulation load generator: a [`UdpApp`] that executes a
//! [`LoadProfile`] against a destination host's DISCARD port.
//!
//! The generator wakes on a fixed tick (default 10 ms), reads the
//! commanded rate for *now*, and emits the accumulated byte quota as UDP
//! datagrams of at most `chunk_bytes` payload each. Accumulation in
//! fractional bytes makes the long-run average rate exact even when the
//! per-tick quota is not an integral number of chunks.

use crate::profile::LoadProfile;
use bytes::Bytes;
use netqos_sim::app::{AppCtx, UdpApp};
use netqos_sim::packet::DISCARD_PORT;
use netqos_sim::time::SimDuration;
use netqos_sim::Ipv4Addr;

/// A profile-driven UDP traffic source.
pub struct ProfiledSource {
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Destination UDP port (DISCARD by default).
    pub dst_port: u16,
    /// Source port stamped on emitted datagrams.
    pub src_port: u16,
    /// The schedule.
    pub profile: LoadProfile,
    /// Tick between emissions.
    pub tick: SimDuration,
    /// Max payload bytes per datagram (the paper's generator used packets
    /// near the MTU; default 1400).
    pub chunk_bytes: usize,
    carry: f64,
    sent_bytes: u64,
}

impl ProfiledSource {
    /// Creates a generator toward the DISCARD port of `dst_ip`.
    pub fn new(dst_ip: Ipv4Addr, profile: LoadProfile) -> Self {
        ProfiledSource {
            dst_ip,
            dst_port: DISCARD_PORT,
            src_port: 20000,
            profile,
            tick: SimDuration::from_millis(10),
            chunk_bytes: 1400,
            carry: 0.0,
            sent_bytes: 0,
        }
    }

    /// Application bytes emitted so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }
}

impl UdpApp for ProfiledSource {
    fn on_start(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.schedule(self.tick, 0);
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _token: u64) {
        let rate = self.profile.rate_at(ctx.now());
        if rate > 0 {
            self.carry += rate as f64 * self.tick.as_secs_f64();
            while self.carry >= self.chunk_bytes as f64 {
                self.carry -= self.chunk_bytes as f64;
                self.sent_bytes += self.chunk_bytes as u64;
                ctx.send_udp(
                    self.src_port,
                    self.dst_ip,
                    self.dst_port,
                    Bytes::from(vec![0u8; self.chunk_bytes]),
                );
            }
        } else {
            // Drop any sub-chunk remainder when the profile goes silent so
            // a later segment starts clean.
            self.carry = 0.0;
        }
        // Keep ticking while the profile can still produce load.
        let done = match self.profile.end_s() {
            Some(end) => ctx.now().as_secs_f64() > end as f64 + 1.0,
            None => true,
        };
        if !done {
            ctx.schedule(self.tick, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_sim::app::DiscardSink;
    use netqos_sim::builder::LanBuilder;
    use netqos_sim::time::SimTime;
    use netqos_sim::PortIx;

    fn run_profile(profile: LoadProfile, seconds: u64) -> u64 {
        let mut b = LanBuilder::new();
        let a = b.add_host("A", "10.0.0.1").unwrap();
        b.add_nic(a, "eth0", 100_000_000).unwrap();
        let d = b.add_host("B", "10.0.0.2").unwrap();
        b.add_nic(d, "eth0", 100_000_000).unwrap();
        b.connect((a, PortIx(0)), (d, PortIx(0))).unwrap();
        let (sink, handle) = DiscardSink::with_handle();
        b.install_app(d, Box::new(sink), Some(DISCARD_PORT))
            .unwrap();
        b.install_app(
            a,
            Box::new(ProfiledSource::new("10.0.0.2".parse().unwrap(), profile)),
            None,
        )
        .unwrap();
        let mut lan = b.build();
        lan.run_until(SimTime::ZERO + SimDuration::from_secs(seconds));
        let bytes = handle.borrow().payload_bytes;
        bytes
    }

    #[test]
    fn constant_profile_delivers_commanded_volume() {
        // 100 KB/s for 20 s -> 2 MB ± 2%.
        let got = run_profile(LoadProfile::pulse(0, 20, 100_000), 25) as f64;
        let expect = 2_000_000.0;
        assert!((got - expect).abs() / expect < 0.02, "got {got}");
    }

    #[test]
    fn staircase_total_volume_matches_profile() {
        let p = LoadProfile::staircase(2, 50_000, 50_000, 4, 3);
        let expect = p.total_bytes() as f64; // 4s*(50+100+150) KB = 1.2 MB
        let got = run_profile(p, 20) as f64;
        assert!(
            (got - expect).abs() / expect < 0.02,
            "got {got} vs {expect}"
        );
    }

    #[test]
    fn silent_profile_sends_nothing() {
        assert_eq!(run_profile(LoadProfile::silent(), 5), 0);
    }

    #[test]
    fn pulse_respects_start_time() {
        // Pulse only in [10, 12): nothing should arrive in the first 10 s.
        let got = run_profile(LoadProfile::pulse(10, 12, 100_000), 9);
        assert_eq!(got, 0);
    }

    #[test]
    fn sub_chunk_rates_average_out() {
        // 1 KB/s with 1400-byte chunks: one chunk every 1.4 s, so 9 or 10
        // chunks depending on tick alignment at the profile boundary.
        let got = run_profile(LoadProfile::pulse(0, 14, 1_000), 20);
        assert!(got == 9 * 1400 || got == 10 * 1400, "got {got}");
    }
}
