//! Real-socket load generation, for exercising the monitor against live
//! agents (the "distributed monitoring" deployment).
//!
//! [`UdpLoadGenerator::run_blocking`] executes a [`LoadProfile`] against a
//! real destination with wall-clock pacing. Like the paper's generator it
//! sends UDP datagrams to the DISCARD port and reports the achieved
//! application rate (which excludes the 28 bytes/packet of UDP/IP header
//! overhead the network additionally carries).

use crate::profile::LoadProfile;
use netqos_sim::time::SimTime;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// A wall-clock UDP load generator.
pub struct UdpLoadGenerator {
    /// Destination address (e.g. `"127.0.0.1:9"`).
    pub dest: SocketAddr,
    /// The schedule.
    pub profile: LoadProfile,
    /// Payload bytes per datagram.
    pub chunk_bytes: usize,
    /// Pacing tick.
    pub tick: Duration,
}

/// Outcome of a finished generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenReport {
    /// Application bytes sent.
    pub bytes_sent: u64,
    /// Datagrams sent.
    pub datagrams: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl UdpLoadGenerator {
    /// Creates a generator.
    pub fn new(dest: impl ToSocketAddrs, profile: LoadProfile) -> std::io::Result<Self> {
        let dest = dest
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("destination resolved to nothing"))?;
        Ok(UdpLoadGenerator {
            dest,
            profile,
            chunk_bytes: 1400,
            tick: Duration::from_millis(10),
        })
    }

    /// Runs the whole profile to completion (or `max_wall` if sooner),
    /// blocking the calling thread.
    pub fn run_blocking(&self, max_wall: Duration) -> std::io::Result<GenReport> {
        let socket = UdpSocket::bind("0.0.0.0:0")?;
        socket.connect(self.dest)?;
        let chunk = vec![0u8; self.chunk_bytes];
        let start = Instant::now();
        let r = netqos_telemetry::global();
        let datagrams_total = r.counter("netqos_loadgen_datagrams_total");
        let bytes_total = r.counter("netqos_loadgen_bytes_total");
        let mut carry = 0.0f64;
        let mut bytes_sent = 0u64;
        let mut datagrams = 0u64;
        let profile_end = self.profile.end_s().unwrap_or(0);

        loop {
            let elapsed = start.elapsed();
            if elapsed > max_wall || elapsed.as_secs() >= profile_end {
                break;
            }
            let sim_now = SimTime::from_micros(elapsed.as_micros() as u64);
            let rate = self.profile.rate_at(sim_now);
            if rate > 0 {
                carry += rate as f64 * self.tick.as_secs_f64();
                while carry >= self.chunk_bytes as f64 {
                    carry -= self.chunk_bytes as f64;
                    socket.send(&chunk)?;
                    bytes_sent += self.chunk_bytes as u64;
                    datagrams += 1;
                    datagrams_total.inc();
                    bytes_total.add(self.chunk_bytes as u64);
                }
            } else {
                carry = 0.0;
            }
            std::thread::sleep(self.tick);
        }
        Ok(GenReport {
            bytes_sent,
            datagrams,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_against_a_real_socket() {
        // A local sink plays DISCARD.
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        sink.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let dest = sink.local_addr().unwrap();

        let profile = LoadProfile::pulse(0, 1, 200_000); // 200 KB/s for 1 s
        let generator = UdpLoadGenerator::new(dest, profile).unwrap();
        let handle =
            std::thread::spawn(move || generator.run_blocking(Duration::from_secs(3)).unwrap());

        let mut received = 0u64;
        let mut buf = vec![0u8; 2048];
        let deadline = Instant::now() + Duration::from_secs(3);
        while Instant::now() < deadline {
            match sink.recv(&mut buf) {
                Ok(n) => received += n as u64,
                Err(_) => {
                    if received > 0 {
                        break; // stream ended
                    }
                }
            }
        }
        let report = handle.join().unwrap();
        assert!(report.bytes_sent >= 150_000, "{report:?}");
        // Loopback should deliver nearly everything.
        assert!(received as f64 >= report.bytes_sent as f64 * 0.8);
        assert_eq!(report.bytes_sent, report.datagrams * 1400);
    }

    #[test]
    fn silent_profile_ends_immediately() {
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        let generator =
            UdpLoadGenerator::new(sink.local_addr().unwrap(), LoadProfile::silent()).unwrap();
        let report = generator.run_blocking(Duration::from_secs(2)).unwrap();
        assert_eq!(report.bytes_sent, 0);
        assert!(report.elapsed < Duration::from_secs(1));
    }
}
