//! Rate schedules.
//!
//! A [`LoadProfile`] maps simulated time to an application-payload rate in
//! bytes/second. Profiles are piecewise-constant segment lists with
//! convenience constructors for the paper's experiment shapes:
//!
//! * [`LoadProfile::staircase`] — Figure 4: "Starting at 100 Kbytes/second
//!   for 120 seconds, we increased the amount of data sent by the load
//!   generator by 100 Kbytes/second each 60 seconds. […] The entire load
//!   was eliminated at 420 seconds."
//! * [`LoadProfile::pulse`] — Figures 5 and 6: fixed-rate bursts with
//!   start/stop times.

use netqos_sim::time::SimTime;

/// One piece of a piecewise-constant schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment start (inclusive), seconds from experiment start.
    pub start_s: u64,
    /// Segment end (exclusive), seconds from experiment start.
    pub end_s: u64,
    /// Payload rate during the segment, bytes/second.
    pub rate_bytes_per_sec: u64,
}

/// A piecewise-constant load schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadProfile {
    segments: Vec<Segment>,
}

impl LoadProfile {
    /// An always-zero profile.
    pub fn silent() -> Self {
        LoadProfile::default()
    }

    /// A constant rate from `start_s` to `end_s`.
    pub fn pulse(start_s: u64, end_s: u64, rate_bytes_per_sec: u64) -> Self {
        LoadProfile {
            segments: vec![Segment {
                start_s,
                end_s,
                rate_bytes_per_sec,
            }],
        }
    }

    /// A constant rate forever (well, for `u64::MAX` seconds).
    pub fn constant(rate_bytes_per_sec: u64) -> Self {
        Self::pulse(0, u64::MAX, rate_bytes_per_sec)
    }

    /// The paper's Figure 4(a) staircase: `initial` bytes/s starting at
    /// `start_s`, increased by `step` every `step_len_s` seconds for
    /// `steps` levels, then silence.
    ///
    /// `LoadProfile::staircase(120, 100_000, 100_000, 60, 5)` reproduces
    /// the paper exactly: 100 KB/s at t=120 s, stepping to 500 KB/s, all
    /// load eliminated at t=420 s.
    pub fn staircase(start_s: u64, initial: u64, step: u64, step_len_s: u64, steps: u32) -> Self {
        let mut segments = Vec::with_capacity(steps as usize);
        let mut t = start_s;
        let mut rate = initial;
        for _ in 0..steps {
            segments.push(Segment {
                start_s: t,
                end_s: t + step_len_s,
                rate_bytes_per_sec: rate,
            });
            t += step_len_s;
            rate += step;
        }
        LoadProfile { segments }
    }

    /// A linear ramp approximated by 1-second stairs from `from` to `to`
    /// bytes/s across `[start_s, end_s)`.
    pub fn ramp(start_s: u64, end_s: u64, from: u64, to: u64) -> Self {
        let n = end_s.saturating_sub(start_s).max(1);
        let mut segments = Vec::with_capacity(n as usize);
        for i in 0..n {
            let frac = i as f64 / n as f64;
            let rate = from as f64 + (to as f64 - from as f64) * frac;
            segments.push(Segment {
                start_s: start_s + i,
                end_s: start_s + i + 1,
                rate_bytes_per_sec: rate.round() as u64,
            });
        }
        LoadProfile { segments }
    }

    /// Adds the segments of another profile (rates sum where they
    /// overlap — evaluated lazily by [`LoadProfile::rate_at`]).
    pub fn overlay(mut self, other: &LoadProfile) -> Self {
        self.segments.extend_from_slice(&other.segments);
        self
    }

    /// The commanded rate at time `t` (bytes/second).
    pub fn rate_at(&self, t: SimTime) -> u64 {
        let secs = t.as_micros() / 1_000_000;
        self.segments
            .iter()
            .filter(|s| secs >= s.start_s && secs < s.end_s)
            .map(|s| s.rate_bytes_per_sec)
            .sum()
    }

    /// The last instant at which the profile may be nonzero, in seconds
    /// (`None` for an empty profile).
    pub fn end_s(&self) -> Option<u64> {
        self.segments.iter().map(|s| s.end_s).max()
    }

    /// The raw segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total payload bytes the profile commands over its lifetime.
    pub fn total_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| (s.end_s - s.start_s).saturating_mul(s.rate_bytes_per_sec))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_sim::time::SimDuration;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn paper_staircase_shape() {
        // Fig 4a: start at 120 s with 100 KB/s, +100 KB/s every 60 s,
        // off at 420 s.
        let p = LoadProfile::staircase(120, 100_000, 100_000, 60, 5);
        assert_eq!(p.rate_at(at(0)), 0);
        assert_eq!(p.rate_at(at(119)), 0);
        assert_eq!(p.rate_at(at(120)), 100_000);
        assert_eq!(p.rate_at(at(179)), 100_000);
        assert_eq!(p.rate_at(at(180)), 200_000);
        assert_eq!(p.rate_at(at(300)), 400_000);
        assert_eq!(p.rate_at(at(419)), 500_000);
        assert_eq!(p.rate_at(at(420)), 0);
        assert_eq!(p.end_s(), Some(420));
    }

    #[test]
    fn pulse_boundaries() {
        let p = LoadProfile::pulse(20, 80, 200_000);
        assert_eq!(p.rate_at(at(19)), 0);
        assert_eq!(p.rate_at(at(20)), 200_000);
        assert_eq!(p.rate_at(at(79)), 200_000);
        assert_eq!(p.rate_at(at(80)), 0);
    }

    #[test]
    fn overlay_sums_rates() {
        let p = LoadProfile::pulse(0, 10, 100).overlay(&LoadProfile::pulse(5, 15, 50));
        assert_eq!(p.rate_at(at(2)), 100);
        assert_eq!(p.rate_at(at(7)), 150);
        assert_eq!(p.rate_at(at(12)), 50);
    }

    #[test]
    fn ramp_is_monotone() {
        let p = LoadProfile::ramp(0, 10, 0, 1000);
        let mut prev = 0;
        for s in 0..10 {
            let r = p.rate_at(at(s));
            assert!(r >= prev);
            prev = r;
        }
        assert!(p.rate_at(at(9)) <= 1000);
    }

    #[test]
    fn totals() {
        let p = LoadProfile::pulse(0, 10, 100);
        assert_eq!(p.total_bytes(), 1000);
        assert_eq!(LoadProfile::silent().total_bytes(), 0);
        assert_eq!(LoadProfile::silent().end_s(), None);
    }

    #[test]
    fn sub_second_times_floor_to_segment() {
        let p = LoadProfile::pulse(1, 2, 7);
        assert_eq!(p.rate_at(SimTime::from_micros(999_999)), 0);
        assert_eq!(p.rate_at(SimTime::from_micros(1_000_000)), 7);
        assert_eq!(p.rate_at(SimTime::from_micros(1_999_999)), 7);
        assert_eq!(p.rate_at(SimTime::from_micros(2_000_000)), 0);
    }
}
