//! Property tests for load profiles: algebraic laws that the experiment
//! harness depends on.

use netqos_loadgen::LoadProfile;
use netqos_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn at(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

proptest! {
    /// A staircase is monotone non-decreasing within its active window and
    /// zero outside it.
    #[test]
    fn staircase_monotone_within_window(
        start in 0u64..100,
        initial in 1u64..1_000_000,
        step in 0u64..1_000_000,
        step_len in 1u64..30,
        steps in 1u32..8,
    ) {
        let p = LoadProfile::staircase(start, initial, step, step_len, steps);
        let end = start + step_len * steps as u64;
        prop_assert_eq!(p.end_s(), Some(end));
        if start > 0 {
            prop_assert_eq!(p.rate_at(at(start - 1)), 0);
        }
        let mut prev = 0;
        for s in start..end {
            let r = p.rate_at(at(s));
            prop_assert!(r >= prev, "staircase decreased at {s}");
            prop_assert!(r >= initial);
            prev = r;
        }
        prop_assert_eq!(p.rate_at(at(end)), 0);
    }

    /// Overlay is commutative and pointwise additive.
    #[test]
    fn overlay_commutative_and_additive(
        a_start in 0u64..50, a_len in 1u64..50, a_rate in 0u64..1_000_000,
        b_start in 0u64..50, b_len in 1u64..50, b_rate in 0u64..1_000_000,
        sample in 0u64..120,
    ) {
        let a = LoadProfile::pulse(a_start, a_start + a_len, a_rate);
        let b = LoadProfile::pulse(b_start, b_start + b_len, b_rate);
        let ab = a.clone().overlay(&b);
        let ba = b.clone().overlay(&a);
        let t = at(sample);
        prop_assert_eq!(ab.rate_at(t), ba.rate_at(t));
        prop_assert_eq!(ab.rate_at(t), a.rate_at(t) + b.rate_at(t));
    }

    /// total_bytes equals the second-by-second integral of rate_at.
    #[test]
    fn total_bytes_is_integral_of_rate(
        start in 0u64..20,
        initial in 1u64..100_000,
        step in 0u64..100_000,
        step_len in 1u64..10,
        steps in 1u32..5,
    ) {
        let p = LoadProfile::staircase(start, initial, step, step_len, steps);
        let end = p.end_s().unwrap();
        let integral: u64 = (0..end).map(|s| p.rate_at(at(s))).sum();
        prop_assert_eq!(integral, p.total_bytes());
    }

    /// A ramp stays within its endpoint rates.
    #[test]
    fn ramp_bounded_by_endpoints(
        start in 0u64..20,
        len in 1u64..40,
        from in 0u64..1_000_000,
        to in 0u64..1_000_000,
    ) {
        let p = LoadProfile::ramp(start, start + len, from, to);
        let (lo, hi) = (from.min(to), from.max(to));
        for s in start..start + len {
            let r = p.rate_at(at(s));
            prop_assert!(r >= lo && r <= hi, "ramp {r} outside [{lo}, {hi}] at {s}");
        }
    }
}
