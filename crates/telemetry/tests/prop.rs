//! Property tests for the streaming histogram: quantile accuracy against
//! an exact sorted reference, merge associativity, and concurrent
//! recording.

use netqos_telemetry::Histogram;
use proptest::prelude::*;

/// Exact quantile of a sorted sample set using the same nearest-rank
/// definition the histogram implements: value at rank ceil(q * n).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The histogram guarantees ≤ 1/16 relative error (bucket midpoint of
/// 1/8-wide log buckets), with exact results below 8.
fn assert_close(got: u64, exact: u64, q: f64) {
    if exact < 8 {
        assert_eq!(got, exact, "q={q}: sub-linear values must be exact");
        return;
    }
    let err = (got as f64 - exact as f64).abs() / exact as f64;
    assert!(
        err <= 0.0625 + 1e-9,
        "q={q}: histogram said {got}, exact {exact}, rel err {err:.4}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_track_exact_reference(
        samples in prop::collection::vec(0u64..2_000_000_000, 1..4000),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.99] {
            assert_close(h.quantile(q), exact_quantile(&sorted, q), q);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..300),
        ys in prop::collection::vec(0u64..1_000_000, 0..300),
        zs in prop::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let fill = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };

        // (x ⊕ y) ⊕ z
        let left = fill(&xs);
        left.merge_from(&fill(&ys));
        left.merge_from(&fill(&zs));

        // x ⊕ (z ⊕ y) — different association AND order.
        let right_inner = fill(&zs);
        right_inner.merge_from(&fill(&ys));
        let right = fill(&xs);
        right.merge_from(&right_inner);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), right.quantile(q), "q={}", q);
        }

        // And both match recording everything into one histogram.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let whole = fill(&all);
        prop_assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), whole.quantile(q), "q={}", q);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing(
        per_thread in prop::collection::vec(0u64..100_000_000, 50..200),
        threads in 4usize..8,
    ) {
        let shared = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = shared.clone();
                let vals = per_thread.clone();
                scope.spawn(move || {
                    for v in vals {
                        h.record(v);
                    }
                });
            }
        });

        // Every thread recorded the same multiset, so the totals are
        // exact multiples and the quantiles match a single-threaded fill.
        let n = per_thread.len() as u64;
        prop_assert_eq!(shared.count(), n * threads as u64);
        prop_assert_eq!(shared.sum(), per_thread.iter().sum::<u64>() * threads as u64);

        let reference = Histogram::new();
        for &v in &per_thread {
            reference.record(v);
        }
        prop_assert_eq!(shared.min(), reference.min());
        prop_assert_eq!(shared.max(), reference.max());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(shared.quantile(q), reference.quantile(q), "q={}", q);
        }
    }
}
