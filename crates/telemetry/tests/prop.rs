//! Property tests for the streaming histogram (quantile accuracy
//! against an exact sorted reference, merge associativity, concurrent
//! recording), the trace sampler (keep/drop invariants), and baseline
//! persistence (JSON round trips preserve quantiles).

use netqos_telemetry::{
    baselines_from_json, baselines_to_json, downsample, AlertContext, AlertEngine, AlertRule,
    AlertScope, AlertSeverity, CmpOp, Histogram, Point, PointValue, PromSeries, QuantileBaseline,
    QueryEngine, QueryResult, Registry, Resolution, SampleConfig, SampleDecision, Sampler,
    SeriesKind, SeriesSource, Shard, ShardRegistry,
};
use proptest::prelude::*;

/// Exact quantile of a sorted sample set using the same nearest-rank
/// definition the histogram implements: value at rank ceil(q * n).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The histogram guarantees ≤ 1/16 relative error (bucket midpoint of
/// 1/8-wide log buckets), with exact results below 8.
fn assert_close(got: u64, exact: u64, q: f64) {
    if exact < 8 {
        assert_eq!(got, exact, "q={q}: sub-linear values must be exact");
        return;
    }
    let err = (got as f64 - exact as f64).abs() / exact as f64;
    assert!(
        err <= 0.0625 + 1e-9,
        "q={q}: histogram said {got}, exact {exact}, rel err {err:.4}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_track_exact_reference(
        samples in prop::collection::vec(0u64..2_000_000_000, 1..4000),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [0.5, 0.9, 0.99] {
            assert_close(h.quantile(q), exact_quantile(&sorted, q), q);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..1_000_000, 0..300),
        ys in prop::collection::vec(0u64..1_000_000, 0..300),
        zs in prop::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let fill = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };

        // (x ⊕ y) ⊕ z
        let left = fill(&xs);
        left.merge_from(&fill(&ys));
        left.merge_from(&fill(&zs));

        // x ⊕ (z ⊕ y) — different association AND order.
        let right_inner = fill(&zs);
        right_inner.merge_from(&fill(&ys));
        let right = fill(&xs);
        right.merge_from(&right_inner);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), right.quantile(q), "q={}", q);
        }

        // And both match recording everything into one histogram.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let whole = fill(&all);
        prop_assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), whole.quantile(q), "q={}", q);
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing(
        per_thread in prop::collection::vec(0u64..100_000_000, 50..200),
        threads in 4usize..8,
    ) {
        let shared = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = shared.clone();
                let vals = per_thread.clone();
                scope.spawn(move || {
                    for v in vals {
                        h.record(v);
                    }
                });
            }
        });

        // Every thread recorded the same multiset, so the totals are
        // exact multiples and the quantiles match a single-threaded fill.
        let n = per_thread.len() as u64;
        prop_assert_eq!(shared.count(), n * threads as u64);
        prop_assert_eq!(shared.sum(), per_thread.iter().sum::<u64>() * threads as u64);

        let reference = Histogram::new();
        for &v in &per_thread {
            reference.record(v);
        }
        prop_assert_eq!(shared.min(), reference.min());
        prop_assert_eq!(shared.max(), reference.max());
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(shared.quantile(q), reference.quantile(q), "q={}", q);
        }
    }

    /// A cycle with a QoS event is never dropped, whatever the
    /// thresholds — losing the trace of the violation that triggered the
    /// snapshot would defeat the flight recorder.
    // Ranks are generated as integer thousandths (the vendored proptest
    // has no f64 range strategy) and scaled into [0, 1].
    #[test]
    fn sampler_never_drops_qos_cycles(
        head_every in 1u64..100,
        slow_tick_ns in 0u64..1_000_000,
        tail_rank_milli in 0u64..2000,
        cycles in prop::collection::vec((0u64..2_000_000, 0u64..1000, any::<bool>()), 1..300),
    ) {
        let s = Sampler::new(SampleConfig {
            head_every,
            slow_tick_ns,
            tail_rank: tail_rank_milli as f64 / 1000.0,
        });
        for &(tick_ns, rank_milli, qos) in &cycles {
            let d = s.decide(tick_ns, rank_milli as f64 / 1000.0, qos);
            if qos {
                prop_assert!(d.keep(), "qos cycle dropped under {:?}", s.config());
            }
        }
    }

    /// With all tail triggers disabled, head sampling keeps exactly the
    /// cycles at indices ≡ 0 (mod N) — ceil(n/N) of n — and the decision
    /// counters partition the cycles seen.
    #[test]
    fn sampler_head_rate_is_exact(
        head_every in 1u64..50,
        n in 1u64..500,
    ) {
        let s = Sampler::new(SampleConfig {
            head_every,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        let mut kept = 0u64;
        for i in 0..n {
            let d = s.decide(1_000, 0.5, false);
            prop_assert_eq!(
                d.keep(),
                i % head_every == 0,
                "cycle {} of head_every {}",
                i,
                head_every
            );
            prop_assert!(!matches!(d, SampleDecision::Tail(_)));
            kept += d.keep() as u64;
        }
        prop_assert_eq!(kept, n.div_ceil(head_every));
        prop_assert_eq!(s.cycles_seen(), n);
        prop_assert_eq!(s.kept_head() + s.kept_tail() + s.dropped(), n);
    }

    /// The decision counters always partition the cycles seen, and every
    /// keep is attributed to exactly one of head/tail.
    #[test]
    fn sampler_counters_partition_cycles(
        head_every in 1u64..20,
        slow_tick_ns in 0u64..100_000,
        tail_rank_milli in 500u64..1500,
        cycles in prop::collection::vec((0u64..200_000, 0u64..1000, any::<bool>()), 0..200),
    ) {
        let s = Sampler::new(SampleConfig {
            head_every,
            slow_tick_ns,
            tail_rank: tail_rank_milli as f64 / 1000.0,
        });
        let mut keeps = 0u64;
        for &(tick_ns, rank_milli, qos) in &cycles {
            keeps += s.decide(tick_ns, rank_milli as f64 / 1000.0, qos).keep() as u64;
        }
        prop_assert_eq!(s.cycles_seen(), cycles.len() as u64);
        prop_assert_eq!(s.kept_head() + s.kept_tail() + s.dropped(), cycles.len() as u64);
        prop_assert_eq!(s.kept_head() + s.kept_tail(), keeps);
    }

    /// Federating K shard registries preserves counter sums and
    /// histogram totals exactly: the merged registry's counters equal
    /// the per-shard sums, its histograms carry the union of all
    /// samples, and the rendered exposition agrees with both.
    #[test]
    fn federation_merge_preserves_sums_and_totals(
        shards in prop::collection::vec(
            (
                prop::collection::vec((0usize..4, 0u64..1_000_000), 0..8),
                prop::collection::vec((0usize..3, 0u64..100_000_000), 0..50),
            ),
            1..6,
        ),
    ) {
        const COUNTERS: [&str; 4] = ["ticks_total", "polls_total", "errors_total", "drops_total"];
        const HISTOGRAMS: [&str; 3] = ["tick_ns", "poll_ns", "parse_ns"];

        let fed = ShardRegistry::new();
        let mut counter_sums = std::collections::BTreeMap::new();
        let mut histo_totals = std::collections::BTreeMap::new();
        for (i, (counters, samples)) in shards.iter().enumerate() {
            let registry = Registry::new();
            for &(which, v) in counters {
                registry.counter(COUNTERS[which]).add(v);
                *counter_sums.entry(COUNTERS[which]).or_insert(0u64) += v;
            }
            for &(which, v) in samples {
                registry.histogram(HISTOGRAMS[which]).record(v);
                let (count, sum) = histo_totals.entry(HISTOGRAMS[which]).or_insert((0u64, 0u64));
                *count += 1;
                *sum += v;
            }
            fed.register(Shard::metrics_only(format!("shard-{i}"), registry)).unwrap();
        }

        let merged = fed.merged();
        for (name, want) in &counter_sums {
            prop_assert_eq!(merged.counter(name).get(), *want, "counter {}", name);
        }
        for (name, (count, sum)) in &histo_totals {
            let h = merged.histogram(name);
            prop_assert_eq!(h.count(), *count, "histogram {} count", name);
            prop_assert_eq!(h.sum(), *sum, "histogram {} sum", name);
        }

        // The rendered exposition agrees: each family's unlabelled
        // aggregate line carries the same sum, and every non-empty
        // histogram closes its bucket series at `le="+Inf"` == count.
        let text = fed.render_merged_prometheus();
        for (name, want) in &counter_sums {
            if *want > 0 {
                prop_assert!(
                    text.contains(&format!("\n{name} {want}\n")),
                    "missing aggregate `{} {}` in rendering", name, want
                );
            }
        }
        for (name, (count, _)) in &histo_totals {
            if *count > 0 {
                prop_assert!(
                    text.contains(&format!("{name}_bucket{{le=\"+Inf\"}} {count}")),
                    "missing +Inf bucket for {}", name
                );
                prop_assert!(text.contains(&format!("\n{name}_count {count}\n")));
            }
        }
    }

    /// Alert evaluation is deterministic under rule-order shuffling:
    /// feeding the same signal script to an engine built from any
    /// permutation of the same (unique-name) rules produces the exact
    /// same transition sequence and the same rendered state.
    // Thresholds and signal values are integer thousandths scaled to
    // f64 (the vendored proptest has no f64 range strategy); the
    // "shuffle" is rotate-by-k plus optional reverse, which together
    // reach enough distinct orders to catch order-dependent evaluation.
    #[test]
    fn alert_evaluation_ignores_rule_order(
        rules in prop::collection::vec(
            (0usize..3, any::<bool>(), 0usize..4, 0u64..2000, 1u64..4, 0usize..3),
            1..6,
        ),
        rotate in 0usize..6,
        reverse in any::<bool>(),
        script in prop::collection::vec(
            prop::collection::vec(0u64..2000, 3), 1..20,
        ),
    ) {
        const SIGNALS: [&str; 3] = ["s0", "s1", "s2"];
        const OPS: [CmpOp; 4] = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
        const SEVS: [AlertSeverity; 3] =
            [AlertSeverity::Info, AlertSeverity::Warning, AlertSeverity::Critical];
        let rules: Vec<AlertRule> = rules
            .iter()
            .enumerate()
            .map(|(i, &(sig, delta, op, thresh_milli, for_ticks, sev))| AlertRule {
                name: format!("r{i}"),
                signal: SIGNALS[sig].to_string(),
                delta,
                op: OPS[op],
                threshold: thresh_milli as f64 / 1000.0,
                for_ticks,
                severity: SEVS[sev],
            })
            .collect();
        let mut shuffled = rules.clone();
        let k = rotate % shuffled.len();
        shuffled.rotate_left(k);
        if reverse {
            shuffled.reverse();
        }

        let mut a = AlertEngine::new(rules);
        let mut b = AlertEngine::new(shuffled);
        for (tick, values) in script.iter().enumerate() {
            let mut ctx = AlertContext::new(tick as u64 + 1);
            let mut scope = AlertScope::global();
            for (name, &v) in SIGNALS.iter().zip(values) {
                scope.set(name, v as f64 / 1000.0);
            }
            ctx.scopes.push(scope);
            let ta = a.evaluate(&ctx);
            let tb = b.evaluate(&ctx);
            prop_assert_eq!(&ta, &tb, "tick {} transitions diverge", tick);
        }
        prop_assert_eq!(a.render_json(), b.render_json());
    }

    /// Baseline persistence: a JSON save/load round trip reproduces the
    /// histogram exactly — same count, same quantiles, same ranks.
    #[test]
    fn baseline_json_round_trip_is_lossless(
        samples in prop::collection::vec(0u64..2_000_000_000, 1..500),
        window in 100u64..10_000,
    ) {
        let b = QuantileBaseline::new(window);
        for &s in &samples {
            b.record(s);
        }
        let json = baselines_to_json([("path", &b)]);
        let restored = baselines_from_json(&json).unwrap();
        prop_assert_eq!(restored.len(), 1);
        let (name, r) = &restored[0];
        prop_assert_eq!(name.as_str(), "path");
        prop_assert_eq!(r.count(), b.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            prop_assert_eq!(r.quantile(q), b.quantile(q), "q={}", q);
        }
        for &probe in &[samples[0], samples[samples.len() / 2], 0, u64::MAX / 2] {
            prop_assert!((r.rank(probe) - b.rank(probe)).abs() < 1e-12);
        }
    }

    /// Long-term store downsampling: folding raw 1s histogram points
    /// into 1m windows and those into 1h windows preserves the total
    /// sample count exactly, and the coarse series' p50/p99 bracket the
    /// raw series' quantiles within the histogram's bucket error — no
    /// information about the distribution is lost beyond bucketing.
    #[test]
    fn lts_downsampling_preserves_count_and_quantiles(
        per_second in prop::collection::vec(
            prop::collection::vec(1u64..50_000_000, 0..6),
            61..200,
        ),
    ) {
        // One histogram delta state per second (the shape the registry
        // sampler appends at 1s resolution).
        let mut raw = Vec::new();
        let mut all_samples: Vec<u64> = Vec::new();
        for (t, batch) in per_second.iter().enumerate() {
            let h = Histogram::new();
            for &v in batch {
                h.record(v);
            }
            all_samples.extend_from_slice(batch);
            raw.push(Point { t: t as u64, value: PointValue::Histogram(h.to_state()) });
        }

        // Fold a fine series into `window`-second buckets the way the
        // store does: group by window start, merge with `downsample`.
        let fold = |points: &[Point], window: u64| -> Vec<Point> {
            let mut grouped: std::collections::BTreeMap<u64, Vec<Point>> = Default::default();
            for p in points {
                grouped.entry(p.t / window * window).or_default().push(p.clone());
            }
            grouped
                .into_iter()
                .filter_map(|(t, w)| {
                    downsample(SeriesKind::Histogram, &w).map(|value| Point { t, value })
                })
                .collect()
        };
        let minutes = fold(&raw, 60);
        let hours = fold(&minutes, 3600);

        let total = |points: &[Point]| -> u64 {
            points
                .iter()
                .map(|p| match &p.value {
                    PointValue::Histogram(h) => h.count,
                    _ => 0,
                })
                .sum()
        };
        prop_assert_eq!(total(&minutes), all_samples.len() as u64);
        prop_assert_eq!(total(&hours), all_samples.len() as u64);

        // Quantiles of the fully-merged coarse series bracket the raw
        // distribution's: bucket-wise merging is lossless, so the only
        // error is the histogram's own bucketing.
        if !all_samples.is_empty() {
            let merged = Histogram::new();
            for p in &hours {
                if let PointValue::Histogram(h) = &p.value {
                    merged.merge_from(&Histogram::from_state(h));
                }
            }
            let mut sorted = all_samples.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.99] {
                assert_close(merged.quantile(q), exact_quantile(&sorted, q), q);
            }
            prop_assert_eq!(merged.min(), sorted[0]);
            prop_assert_eq!(merged.max(), *sorted.last().unwrap());
        }
    }
}

/// Folds raw 1s points into `window`-aligned coarse buckets stamped at
/// the bucket start — the same shape the store's flush produces.
fn bucket_points(kind: SeriesKind, raw: &[Point], window: u64) -> Vec<Point> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let w = (raw[i].t / window) * window;
        let j = raw[i..]
            .iter()
            .position(|p| p.t >= w + window)
            .map(|k| i + k)
            .unwrap_or(raw.len());
        if let Some(v) = downsample(kind, &raw[i..j]) {
            out.push(Point { t: w, value: v });
        }
        i = j;
    }
    out
}

/// One synthetic series served at all three store resolutions, so the
/// same engine can be asked the same question at different steps.
struct MultiResSource {
    name: String,
    kind: SeriesKind,
    raw: std::sync::Arc<Vec<Point>>,
    min: std::sync::Arc<Vec<Point>>,
    hour: std::sync::Arc<Vec<Point>>,
}

impl MultiResSource {
    fn new(name: &str, kind: SeriesKind, raw: Vec<Point>) -> MultiResSource {
        let min = bucket_points(kind, &raw, 60);
        let hour = bucket_points(kind, &raw, 3600);
        MultiResSource {
            name: name.to_string(),
            kind,
            raw: std::sync::Arc::new(raw),
            min: std::sync::Arc::new(min),
            hour: std::sync::Arc::new(hour),
        }
    }

    fn engine(self) -> QueryEngine {
        QueryEngine::new().with_source(None, std::sync::Arc::new(self))
    }
}

impl SeriesSource for MultiResSource {
    fn series(&self) -> Result<Vec<PromSeries>, String> {
        let (raw, min, hour) = (self.raw.clone(), self.min.clone(), self.hour.clone());
        Ok(vec![PromSeries {
            key: self.name.clone(),
            base: self.name.clone(),
            labels: Vec::new(),
            kind: self.kind,
            fetch: std::sync::Arc::new(move |res, start, end| {
                let pts = match res {
                    Resolution::Raw1s => &raw,
                    Resolution::Min1 => &min,
                    Resolution::Hour1 => &hour,
                };
                pts.iter()
                    .filter(|p| p.t >= start && p.t <= end)
                    .cloned()
                    .collect()
            }),
        }])
    }
}

/// The single vector sample's value, with "no sample" folding to zero
/// (an `increase` over a window holding no deltas).
fn sample_value(engine: &QueryEngine, expr: &str, t: u64, res: Resolution) -> f64 {
    match engine.instant(expr, t, res).unwrap().result {
        QueryResult::Vector(samples) => samples.first().map(|s| s.v).unwrap_or(0.0),
        other => panic!("{expr}: expected a vector, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over a window covering the whole series, every resolution sees
    /// the same totals: `increase`/`rate` answers (and their rendered
    /// JSON) are byte-identical at 1s, 1m, and 1h, because counter
    /// downsampling preserves delta sums exactly.
    #[test]
    fn counter_queries_identical_across_resolutions_full_span(
        deltas in prop::collection::vec(0u64..1_000, 1..500),
    ) {
        let t0 = 3_600_000u64;
        let raw: Vec<Point> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| Point { t: t0 + i as u64, value: PointValue::Counter(d) })
            .collect();
        let engine = MultiResSource::new("c_total", SeriesKind::Counter, raw).engine();
        let t = t0 + deltas.len() as u64 + 7_200;
        for expr in ["increase(c_total[10000000])", "rate(c_total[10000000])"] {
            let raw_json = engine.instant(expr, t, Resolution::Raw1s).unwrap().to_api_json();
            let min_json = engine.instant(expr, t, Resolution::Min1).unwrap().to_api_json();
            let hour_json = engine.instant(expr, t, Resolution::Hour1).unwrap().to_api_json();
            prop_assert_eq!(&raw_json, &min_json, "{} diverged at 1m", expr);
            prop_assert_eq!(&raw_json, &hour_json, "{} diverged at 1h", expr);
        }
    }

    /// On partial windows the coarse answer is bracketed by fine
    /// answers over a slightly narrower and slightly wider window: a
    /// coarse bucket stamped `w` holds the seconds `[w, w+R)`, so a
    /// coarse `increase(c[W])` at aligned `T` covers `[T-W+R, T+R)` —
    /// inside raw coverage `[T-W-R+1, T+R]` and containing
    /// `[T-W+R+1, T]`.
    #[test]
    fn coarse_increase_bracketed_by_fine_windows(
        deltas in prop::collection::vec(0u64..1_000, 60..3000),
        k in 2u64..5,
        m in 1u64..4,
    ) {
        let t0 = 3_600_000u64;
        let raw: Vec<Point> = deltas
            .iter()
            .enumerate()
            .map(|(i, &d)| Point { t: t0 + i as u64, value: PointValue::Counter(d) })
            .collect();
        let engine = MultiResSource::new("c_total", SeriesKind::Counter, raw).engine();
        let w = k * 3600;
        let t = t0 + m * 3600;
        for (res, r) in [(Resolution::Min1, 60u64), (Resolution::Hour1, 3600u64)] {
            let coarse = sample_value(&engine, &format!("increase(c_total[{w}])"), t, res);
            let lower = sample_value(
                &engine,
                &format!("increase(c_total[{}])", w - r),
                t,
                Resolution::Raw1s,
            );
            let upper = sample_value(
                &engine,
                &format!("increase(c_total[{}])", w + r),
                t + r,
                Resolution::Raw1s,
            );
            prop_assert!(
                lower <= coarse && coarse <= upper,
                "step {r}: raw[{}]@{t} = {lower} !<= coarse[{w}]@{t} = {coarse} !<= raw[{}]@{} = {upper}",
                w - r, w + r, t + r
            );
        }
    }

    /// `histogram_quantile` over the whole series is byte-identical
    /// across resolutions: bucket-wise merging is associative, so the
    /// merged state (and its quantile) does not depend on how the
    /// per-second states were grouped on the way.
    #[test]
    fn histogram_quantile_identical_across_resolutions_full_span(
        batches in prop::collection::vec(
            prop::collection::vec(1u64..1_000_000, 0..5),
            1..200,
        ),
        q in prop::sample::select(vec![0.5f64, 0.9, 0.99]),
    ) {
        let t0 = 3_600_000u64;
        let total: usize = batches.iter().map(Vec::len).sum();
        if total == 0 {
            // All-empty draws carry no quantile to compare.
            return;
        }
        let raw: Vec<Point> = batches
            .iter()
            .enumerate()
            .map(|(i, batch)| {
                let h = Histogram::new();
                for &v in batch {
                    h.record(v);
                }
                Point { t: t0 + i as u64, value: PointValue::Histogram(h.to_state()) }
            })
            .collect();
        let engine = MultiResSource::new("lat_ns", SeriesKind::Histogram, raw).engine();
        let t = t0 + batches.len() as u64 + 7_200;
        let expr = format!("histogram_quantile({q}, lat_ns[10000000])");
        let raw_json = engine.instant(&expr, t, Resolution::Raw1s).unwrap().to_api_json();
        let min_json = engine.instant(&expr, t, Resolution::Min1).unwrap().to_api_json();
        let hour_json = engine.instant(&expr, t, Resolution::Hour1).unwrap().to_api_json();
        prop_assert_eq!(&raw_json, &min_json, "1m diverged");
        prop_assert_eq!(&raw_json, &hour_json, "1h diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The segment codec is invisible to every read surface: the same
    /// appends stored under JSONL (v1) and binary (v2) segments answer
    /// `/query` and `/api/v1/query_range` byte-identically — and stay
    /// identical across `lts migrate` (both directions) and compaction.
    #[test]
    fn codec_choice_never_changes_query_bytes(
        per_tick in prop::collection::vec(
            (0u64..40, -50i64..50, prop::collection::vec(1u64..1_000_000, 0..3)),
            80..160,
        ),
        flush_every in 17u64..53,
    ) {
        use netqos_telemetry::{
            compact_store_to, migrate_store, LtsConfig, LtsCounters, LtsReader, LtsRetention,
            LtsSource, LtsStore, SegmentCodec,
        };
        use std::sync::Arc;

        let base = std::env::temp_dir().join(format!(
            "netqos-prop-codec-{}-{}",
            std::process::id(),
            per_tick.len() * 1000 + flush_every as usize,
        ));
        let dir_v1 = base.join("v1");
        let dir_v2 = base.join("v2");
        let _ = std::fs::remove_dir_all(&base);

        let build = |dir: &std::path::Path, codec: SegmentCodec| {
            let config = LtsConfig {
                codec,
                seal_points: 32,
                retention: LtsRetention { max_age_secs: 0, max_bytes: 0 },
            };
            let mut store = LtsStore::open(dir, config, LtsCounters::detached()).unwrap();
            for (t, (c, g, hist)) in per_tick.iter().enumerate() {
                let t = t as u64;
                store.append("c_total", t, PointValue::Counter(*c));
                store.append("depth", t, PointValue::Gauge(*g));
                let h = Histogram::new();
                for &v in hist {
                    h.record(v);
                }
                store.append("lat_ns", t, PointValue::Histogram(h.to_state()));
                if t % flush_every == flush_every - 1 {
                    store.flush().unwrap();
                }
            }
            store.flush().unwrap();
        };
        build(&dir_v1, SegmentCodec::Jsonl);
        build(&dir_v2, SegmentCodec::Binary);

        let read_all = |dir: &std::path::Path| -> String {
            let reader = LtsReader::open(dir);
            let mut out = String::new();
            for res in [Resolution::Raw1s, Resolution::Min1, Resolution::Hour1] {
                out.push_str(&reader.query("*", 0, u64::MAX, res));
                out.push('\n');
            }
            let engine = QueryEngine::new()
                .with_source(None, Arc::new(LtsSource::new(LtsReader::open(dir))));
            let end = per_tick.len() as u64 - 1;
            for expr in ["rate(c_total[20s])", "depth", "sum(increase(c_total[45s]))"] {
                out.push_str(
                    &engine.range(expr, 10, end, 7).unwrap().to_api_json(),
                );
                out.push('\n');
            }
            out
        };

        let reference = read_all(&dir_v1);
        prop_assert_eq!(&read_all(&dir_v2), &reference, "binary store diverged");

        // v1 -> v2 migration, then compaction, then v2 -> v1: every
        // intermediate state answers identically.
        migrate_store(&dir_v1, SegmentCodec::Binary).unwrap();
        prop_assert_eq!(&read_all(&dir_v1), &reference, "migrated store diverged");
        compact_store_to(&dir_v1, SegmentCodec::Binary).unwrap();
        prop_assert_eq!(&read_all(&dir_v1), &reference, "compacted store diverged");
        migrate_store(&dir_v1, SegmentCodec::Jsonl).unwrap();
        prop_assert_eq!(&read_all(&dir_v1), &reference, "downgraded store diverged");

        let _ = std::fs::remove_dir_all(&base);
    }
}
