//! Recording rules: periodically evaluate PromQL-subset expressions
//! against the long-term store and append the results back as derived
//! series.
//!
//! A rules file is a sequence of stanzas in the same spirit as
//! `specs/alerts.rules`:
//!
//! ```text
//! # p99 SNMP round-trip, precomputed once per save tick
//! record: path_rtt_p99_ms
//! expr: histogram_quantile(0.99, netqos_monitor_poll_rtt_ns) / 1e6
//! ```
//!
//! [`parse_record_rules`] lints the file (`netqos record lint` calls it
//! too); [`evaluate_record_rules`] runs every rule at one timestamp
//! against a [`QueryEngine`] and appends each resulting sample as a
//! gauge point into the [`LtsStore`]. Derived series are first-class:
//! they downsample, compact, migrate, and serve through `/query` and
//! `/api/v1/query[_range]` like any sampled series. Idempotence across
//! restarts falls out of the store's append contract — a re-evaluated
//! point at `t <= newest(series)` is dropped, so replaying a tick after
//! re-open cannot duplicate derived points.

use crate::lts::Resolution;
use crate::lts::{json_escape, LtsStore, PointValue};
use crate::promql::{QueryEngine, QueryResult};
use crate::{Counter, Registry};

/// One recording rule: a derived series name and the expression that
/// produces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordRule {
    /// Derived metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`). Output series
    /// keep the labels of each sample the expression yields.
    pub name: String,
    /// PromQL-subset expression evaluated at each recording tick.
    pub expr: String,
}

/// Self-metrics for the recording engine.
#[derive(Clone)]
pub struct RecordingCounters {
    /// `netqos_recording_rules_evals_total` — rule evaluations run.
    pub evals: Counter,
    /// `netqos_recording_rules_failures_total` — evaluations that
    /// returned an error.
    pub failures: Counter,
}

impl RecordingCounters {
    /// Handles not attached to any registry.
    pub fn detached() -> Self {
        RecordingCounters {
            evals: Counter::new(),
            failures: Counter::new(),
        }
    }

    /// Handles registered under the canonical names.
    pub fn register_in(r: &Registry) -> Self {
        RecordingCounters {
            evals: r.counter("netqos_recording_rules_evals_total"),
            failures: r.counter("netqos_recording_rules_failures_total"),
        }
    }
}

/// What one recording pass did.
#[derive(Debug, Clone, Default)]
pub struct RecordReport {
    /// Rules evaluated.
    pub evals: u64,
    /// Rules whose evaluation failed.
    pub failures: u64,
    /// Derived points appended to the store.
    pub points: u64,
    /// `(rule name, error)` for each failed rule.
    pub errors: Vec<(String, String)>,
}

fn valid_rule_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses a recording-rules file. Stanzas are `record: NAME` followed
/// by `expr: EXPRESSION`; `#` comments and blank lines are ignored.
/// Every expression is checked against the query grammar, so a file
/// that lints clean here will not fail to parse at evaluation time.
pub fn parse_record_rules(src: &str) -> Result<Vec<RecordRule>, String> {
    let mut rules: Vec<RecordRule> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("record:") {
            if let Some((at, prev)) = pending.take() {
                return Err(format!(
                    "line {at}: record '{prev}' has no expr before line {lineno}"
                ));
            }
            let name = name.trim();
            if !valid_rule_name(name) {
                return Err(format!("line {lineno}: invalid record name '{name}'"));
            }
            if rules.iter().any(|r| r.name == name) {
                return Err(format!("line {lineno}: duplicate record name '{name}'"));
            }
            pending = Some((lineno, name.to_string()));
        } else if let Some(expr) = line.strip_prefix("expr:") {
            let Some((_, name)) = pending.take() else {
                return Err(format!("line {lineno}: expr without a preceding record"));
            };
            let expr = expr.trim();
            if expr.is_empty() {
                return Err(format!("line {lineno}: empty expr for record '{name}'"));
            }
            crate::promql::check_query(expr)
                .map_err(|e| format!("line {lineno}: record '{name}': {e}"))?;
            rules.push(RecordRule {
                name,
                expr: expr.to_string(),
            });
        } else {
            return Err(format!("line {lineno}: expected 'record:' or 'expr:'"));
        }
    }
    if let Some((at, prev)) = pending {
        return Err(format!("line {at}: record '{prev}' has no expr"));
    }
    Ok(rules)
}

/// Renders the store series name for one derived sample: the rule name
/// plus the sample's labels in the store's canonical
/// `base{k="v",...}` form (sorted keys, escaped values).
fn derived_name(rule: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return rule.to_string();
    }
    let mut sorted: Vec<&(String, String)> = labels.iter().collect();
    sorted.sort();
    let mut out = String::with_capacity(rule.len() + 16 * sorted.len());
    out.push_str(rule);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(&json_escape(v));
    }
    out.push('}');
    out
}

/// Evaluates every rule at instant `t` and appends the results to
/// `store` as gauge points. Non-finite values are skipped; finite
/// values are rounded to the nearest integer (the store's gauge points
/// are `i64`). Failures are counted and reported, never fatal — one
/// broken rule must not stop the rest of the pass.
pub fn evaluate_record_rules(
    rules: &[RecordRule],
    engine: &QueryEngine,
    store: &mut LtsStore,
    t: u64,
    counters: &RecordingCounters,
) -> RecordReport {
    let mut report = RecordReport::default();
    for rule in rules {
        counters.evals.inc();
        report.evals += 1;
        match engine.instant(&rule.expr, t, Resolution::Raw1s) {
            Ok(outcome) => {
                let mut samples: Vec<(String, f64)> = Vec::new();
                match &outcome.result {
                    QueryResult::Scalar { v, .. } => samples.push((rule.name.clone(), *v)),
                    QueryResult::Vector(vs) => {
                        for s in vs {
                            samples.push((derived_name(&rule.name, &s.labels), s.v));
                        }
                    }
                    QueryResult::Matrix(_) => {
                        counters.failures.inc();
                        report.failures += 1;
                        report.errors.push((
                            rule.name.clone(),
                            "expression yields a matrix; recording rules need an instant vector or scalar".to_string(),
                        ));
                        continue;
                    }
                }
                for (name, v) in samples {
                    if !v.is_finite() {
                        continue;
                    }
                    let clamped = v.round().clamp(i64::MIN as f64, i64::MAX as f64) as i64;
                    store.append(&name, t, PointValue::Gauge(clamped));
                    report.points += 1;
                }
            }
            Err(e) => {
                counters.failures.inc();
                report.failures += 1;
                report.errors.push((rule.name.clone(), e));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::{LtsConfig, LtsCounters, LtsReader};
    use crate::promql::LtsSource;
    use crate::Registry;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("netqos-record-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_accepts_stanzas_comments_and_blanks() {
        let src = "# derived series\nrecord: qos_margin\nexpr: netqos_qos_ok_total\n\nrecord: rtt:p99\nexpr: rate(netqos_snmp_requests_total[60s])\n";
        let rules = parse_record_rules(src).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "qos_margin");
        assert_eq!(rules[1].name, "rtt:p99");
        assert_eq!(rules[1].expr, "rate(netqos_snmp_requests_total[60s])");
    }

    #[test]
    fn parse_rejects_malformed_files() {
        for (src, needle) in [
            ("expr: up\n", "expr without a preceding record"),
            ("record: a\nrecord: b\nexpr: up\n", "has no expr"),
            ("record: a\n", "has no expr"),
            ("record: 9bad\nexpr: up\n", "invalid record name"),
            (
                "record: a\nexpr: up\nrecord: a\nexpr: up\n",
                "duplicate record name",
            ),
            ("record: a\nexpr: rate(\n", "record 'a'"),
            ("bogus line\n", "expected 'record:'"),
            ("record: a\nexpr:\n", "empty expr"),
        ] {
            let err = parse_record_rules(src).unwrap_err();
            assert!(err.contains(needle), "{src:?} -> {err}");
            assert!(err.starts_with("line "), "{err}");
        }
    }

    #[test]
    fn evaluate_appends_derived_series_and_counts() {
        let dir = tmpdir("eval");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        for t in 0..60u64 {
            store.append("requests_total{path=\"a\"}", t, PointValue::Counter(2));
            store.append("requests_total{path=\"b\"}", t, PointValue::Counter(4));
        }
        store.flush().unwrap();
        let engine =
            QueryEngine::new().with_source(None, Arc::new(LtsSource::new(LtsReader::open(&dir))));
        let rules = parse_record_rules(
            "record: requests_sum\nexpr: sum(requests_total)\nrecord: broken\nexpr: no_such_series\n",
        )
        .unwrap();
        let counters = RecordingCounters::register_in(&Registry::new());
        let report = evaluate_record_rules(&rules, &engine, &mut store, 59, &counters);
        assert_eq!(report.evals, 2);
        assert_eq!(report.points, 1);
        // `no_such_series` evaluates to an empty vector, not an error.
        assert_eq!(report.failures, 0);
        assert_eq!(counters.evals.get(), 2);
        store.flush().unwrap();

        let reader = LtsReader::open(&dir);
        let json = reader.query("requests_sum", 0, 120, Resolution::Raw1s);
        assert!(json.contains("\"requests_sum\""), "{json}");
        assert!(json.contains("\"kind\":\"gauge\""), "{json}");
        assert!(json.contains("[59,360]"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluate_failures_are_counted_not_fatal() {
        let dir = tmpdir("fail");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        store.append("g", 1, PointValue::Gauge(5));
        store.flush().unwrap();
        let engine =
            QueryEngine::new().with_source(None, Arc::new(LtsSource::new(LtsReader::open(&dir))));
        // A range expression is a lint-time pass but an instant-time
        // failure mode we must survive.
        let rules = vec![
            RecordRule {
                name: "bad".into(),
                expr: "sum(".into(),
            },
            RecordRule {
                name: "ok".into(),
                expr: "g".into(),
            },
        ];
        let counters = RecordingCounters::detached();
        let report = evaluate_record_rules(&rules, &engine, &mut store, 1, &counters);
        assert_eq!(report.evals, 2);
        assert_eq!(report.failures, 1);
        assert_eq!(report.points, 1);
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].0, "bad");
        assert_eq!(counters.failures.get(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reevaluation_after_reopen_is_idempotent() {
        let dir = tmpdir("idem");
        let rules = parse_record_rules("record: d\nexpr: sum(c_total)\n").unwrap();
        let counters = RecordingCounters::detached();
        {
            let mut store =
                LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
            for t in 0..30u64 {
                store.append("c_total", t, PointValue::Counter(1));
            }
            store.flush().unwrap();
            let engine = QueryEngine::new()
                .with_source(None, Arc::new(LtsSource::new(LtsReader::open(&dir))));
            evaluate_record_rules(&rules, &engine, &mut store, 29, &counters);
            store.flush().unwrap();
        }
        let before = LtsReader::open(&dir).query("d", 0, 120, Resolution::Raw1s);
        assert!(before.contains("[29,30]"), "{before}");
        {
            // Restart and replay the same recording tick: the store's
            // append contract drops t <= newest, so no duplicates.
            let mut store =
                LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
            let engine = QueryEngine::new()
                .with_source(None, Arc::new(LtsSource::new(LtsReader::open(&dir))));
            let report = evaluate_record_rules(&rules, &engine, &mut store, 29, &counters);
            assert_eq!(report.points, 1); // appended, then dropped by the store
            store.flush().unwrap();
        }
        let after = LtsReader::open(&dir).query("d", 0, 120, Resolution::Raw1s);
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn derived_name_renders_sorted_escaped_labels() {
        assert_eq!(derived_name("r", &[]), "r");
        let labels = vec![
            ("b".to_string(), "x\"y".to_string()),
            ("a".to_string(), "z".to_string()),
        ];
        assert_eq!(derived_name("r", &labels), "r{a=\"z\",b=\"x\\\"y\"}");
    }
}
