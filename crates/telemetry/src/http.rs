//! A minimal hand-rolled HTTP/1.1 server for the live export plane.
//!
//! The build environment forbids new dependencies, so this is a small,
//! std-only server: one accept thread on a [`std::net::TcpListener`],
//! one short-lived thread per connection, `Connection: close` semantics.
//! It exists to serve the monitor's read-only endpoints (`/metrics`,
//! `/healthz`, `/snapshot`) — it is deliberately not a general web
//! server: GET/HEAD only, no keep-alive, no chunked encoding, request
//! bodies ignored, and a read timeout so a stalled client cannot pin a
//! thread.
//!
//! Routing is a caller-supplied closure from [`HttpRequest`] (path,
//! query string, `Accept` header) to [`HttpRoute`]; `None` becomes a
//! 404. A route is either a buffered [`HttpResponse`] or an
//! [`EventSource`] served as a server-sent-event stream (`Content-Type:
//! text/event-stream`, one `data:` event per published tick) so
//! dashboards can follow `/snapshot` without polling. The server itself
//! answers 405 for non-GET methods and 400 for unparseable request
//! lines.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection may take to deliver its request head.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// How long an event-stream connection sleeps between source polls.
const STREAM_POLL: Duration = Duration::from_millis(20);

/// A response the router hands back: status, content type, body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A 200 response with `text/plain; version=0.0.4` (the Prometheus
    /// exposition content type).
    pub fn prometheus(body: String) -> Self {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }

    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        HttpResponse {
            status,
            content_type: "application/json",
            body,
        }
    }
}

/// A parsed request head, as much of it as routing needs.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// `GET` or `HEAD` (anything else is rejected before routing).
    pub method: String,
    /// Request path with the query string stripped (`/snapshot`).
    pub path: String,
    /// The query string after `?`, empty when absent (`follow=1`).
    pub query: String,
    /// The raw `Accept` header value, empty when absent.
    pub accept: String,
}

impl HttpRequest {
    /// Whether the client asked to follow the resource as a server-sent
    /// event stream: `Accept: text/event-stream` or `?follow=1`.
    pub fn wants_event_stream(&self) -> bool {
        self.accept
            .to_ascii_lowercase()
            .contains("text/event-stream")
            || self.query.split('&').any(|kv| kv == "follow=1")
    }

    /// The first value of query parameter `key`, percent-decoded (`+`
    /// reads as a space). `None` when the key is absent; a bare `?key`
    /// yields an empty string.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (k == key).then(|| percent_decode(v))
        })
    }
}

/// Decodes `%XX` escapes and `+` spaces; malformed escapes pass through
/// verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match s
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A cursor-driven stream of events for SSE endpoints. The connection
/// thread polls [`EventSource::next_after`] with the last cursor it
/// delivered; the source returns the next `(cursor, payload)` pair when
/// one exists. [`EventSource::finished`] ends the stream cleanly.
pub trait EventSource: Send + Sync {
    /// The next event strictly after `cursor`, or `None` if nothing new
    /// has been published yet.
    fn next_after(&self, cursor: u64) -> Option<(u64, String)>;

    /// Whether the producer has finished: after draining, the stream
    /// closes instead of waiting for more events.
    fn finished(&self) -> bool {
        false
    }
}

/// What a router returns for a request: a buffered response or a
/// server-sent-event stream.
pub enum HttpRoute {
    /// An ordinary buffered response.
    Response(HttpResponse),
    /// A `text/event-stream` fed from the source until it finishes, the
    /// client disconnects, or the server stops.
    EventStream(Arc<dyn EventSource>),
}

impl From<HttpResponse> for HttpRoute {
    fn from(resp: HttpResponse) -> Self {
        HttpRoute::Response(resp)
    }
}

/// Maps a request to a route; `None` means 404.
pub type Router = dyn Fn(&HttpRequest) -> Option<HttpRoute> + Send + Sync;

/// A running HTTP server. Dropping (or calling [`HttpServer::stop`])
/// shuts the accept loop down and joins it.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `router` until stopped.
    pub fn serve<A: ToSocketAddrs>(addr: A, router: Arc<Router>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let accept_stop = stop.clone();
        let accept_requests = requests.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let router = router.clone();
                let requests = accept_requests.clone();
                let stop = accept_stop.clone();
                // One short-lived thread per connection: buffered
                // endpoints render in microseconds; event streams watch
                // the stop flag so shutdown is never blocked on them.
                std::thread::spawn(move || {
                    requests.fetch_add(1, Ordering::Relaxed);
                    handle_connection(stream, &*router, &stop);
                });
            }
        });
        Ok(HttpServer {
            addr,
            stop,
            requests,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop is blocked in `incoming()`; poke it awake with
        // a throwaway connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

fn write_response(stream: &mut TcpStream, head_only: bool, resp: &HttpResponse) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    if !head_only {
        let _ = stream.write_all(resp.body.as_bytes());
    }
    let _ = stream.flush();
}

/// Serves an SSE stream: headers, then one `id:`/`data:` event per
/// source publication until the source finishes, the client goes away
/// (write error), or the server stops.
fn stream_events(
    stream: &mut TcpStream,
    head_only: bool,
    source: &dyn EventSource,
    stop: &AtomicBool,
) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    if head_only {
        let _ = stream.flush();
        return;
    }
    // An opening comment flushes the headers through proxies and lets
    // clients detect the stream before the first tick lands.
    if stream.write_all(b": netqos event stream\n\n").is_err() {
        return;
    }
    let _ = stream.flush();
    let mut cursor = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match source.next_after(cursor) {
            Some((next, payload)) => {
                cursor = next;
                let mut event = format!("id: {next}\n");
                // SSE payloads are line-framed: multi-line payloads
                // become consecutive `data:` lines of one event.
                for line in payload.lines() {
                    event.push_str("data: ");
                    event.push_str(line);
                    event.push('\n');
                }
                event.push('\n');
                if stream.write_all(event.as_bytes()).is_err() {
                    return;
                }
                let _ = stream.flush();
            }
            None if source.finished() => return,
            None => std::thread::sleep(STREAM_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers (keeping `Accept`) so well-behaved clients see a
    // clean close.
    let mut accept = String::new();
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {
                if let Some((name, value)) = header.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("accept") {
                        accept = value.trim().to_string();
                    }
                }
            }
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            let resp = HttpResponse::json(400, "{\"error\":\"bad request\"}".into());
            write_response(&mut stream, false, &resp);
            return;
        }
    };
    if method != "GET" && method != "HEAD" {
        let resp = HttpResponse::json(405, "{\"error\":\"method not allowed\"}".into());
        write_response(&mut stream, false, &resp);
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let request = HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        accept,
    };
    let head_only = method == "HEAD";
    match router(&request) {
        Some(HttpRoute::Response(resp)) => write_response(&mut stream, head_only, &resp),
        Some(HttpRoute::EventStream(source)) => {
            stream_events(&mut stream, head_only, &*source, stop)
        }
        None => {
            let resp =
                HttpResponse::json(404, format!("{{\"error\":\"no such endpoint {path:?}\"}}"));
            write_response(&mut stream, head_only, &resp);
        }
    }
}

/// A minimal plaintext HTTP/1.1 GET client, the read-side twin of this
/// server: one request, `Connection: close`, whole body buffered.
/// Serves the CLI's online query mode (`netqos query --url`). Returns
/// `(status, body)`.
pub fn http_get(host: &str, port: u16, path_and_query: &str) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect((host, port)).map_err(|e| format!("connect {host}:{port}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(10))))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(
            format!(
                "GET {path_and_query} HTTP/1.1\r\nHost: {host}:{port}\r\n\
                 Accept: application/json\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read response: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read headers: {e}"))?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut body = String::new();
    std::io::Read::read_to_string(&mut reader, &mut body).map_err(|e| format!("read body: {e}"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        let status: u16 = head
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, head.to_string(), body.to_string())
    }

    fn test_server() -> HttpServer {
        let router: Arc<Router> = Arc::new(|req| match req.path.as_str() {
            "/metrics" => Some(HttpResponse::prometheus("metric_a 1\n".into()).into()),
            "/healthz" => Some(HttpResponse::json(200, "{\"status\":\"ok\"}".into()).into()),
            "/query" => {
                Some(HttpResponse::json(200, format!("{{\"query\":{:?}}}", req.query)).into())
            }
            _ => None,
        });
        HttpServer::serve("127.0.0.1:0", router).unwrap()
    }

    #[test]
    fn serves_routes_with_content_type_and_length() {
        let server = test_server();
        let (status, head, body) = get(server.local_addr(), "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert_eq!(body, "metric_a 1\n");

        let (status, head, body) = get(server.local_addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(head.contains("application/json"));
        assert_eq!(body, "{\"status\":\"ok\"}");
        assert!(server.requests_served() >= 2);
        server.stop();
    }

    #[test]
    fn unknown_path_is_404_and_query_strings_reach_the_router() {
        let server = test_server();
        let (status, _, body) = get(server.local_addr(), "/nope");
        assert_eq!(status, 404);
        assert!(body.contains("no such endpoint"));
        let (status, _, _) = get(server.local_addr(), "/metrics?scrape=1");
        assert_eq!(status, 200);
        let (status, _, body) = get(server.local_addr(), "/query?a=1&b=2");
        assert_eq!(status, 200);
        assert!(body.contains("\"a=1&b=2\""), "{body}");
        server.stop();
    }

    #[test]
    fn non_get_methods_are_405() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
        server.stop();
    }

    /// A fixed script of events, finishing after the last one.
    struct ScriptedSource {
        events: Vec<String>,
    }

    impl EventSource for ScriptedSource {
        fn next_after(&self, cursor: u64) -> Option<(u64, String)> {
            self.events
                .get(cursor as usize)
                .map(|e| (cursor + 1, e.clone()))
        }

        fn finished(&self) -> bool {
            true
        }
    }

    #[test]
    fn event_stream_delivers_scripted_events_and_closes() {
        let source = Arc::new(ScriptedSource {
            events: vec!["{\"tick\":1}".into(), "line1\nline2".into()],
        });
        let router: Arc<Router> = Arc::new(move |req| {
            (req.path == "/snapshot" && req.wants_event_stream())
                .then(|| HttpRoute::EventStream(source.clone()))
        });
        let server = HttpServer::serve("127.0.0.1:0", router).unwrap();

        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(
            stream,
            "GET /snapshot?follow=1 HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap(); // returns when the stream closes
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        assert!(raw.contains("Content-Type: text/event-stream"), "{raw}");
        assert!(raw.contains("id: 1\ndata: {\"tick\":1}\n\n"), "{raw}");
        // Multi-line payloads become consecutive data: lines of one event.
        assert!(raw.contains("id: 2\ndata: line1\ndata: line2\n\n"), "{raw}");
        server.stop();
    }

    #[test]
    fn wants_event_stream_detection() {
        let base = HttpRequest {
            method: "GET".into(),
            path: "/snapshot".into(),
            query: String::new(),
            accept: String::new(),
        };
        assert!(!base.wants_event_stream());
        let mut follow = base.clone();
        follow.query = "follow=1".into();
        assert!(follow.wants_event_stream());
        let mut accept = base.clone();
        accept.accept = "text/Event-Stream; q=0.9".into();
        assert!(accept.wants_event_stream());
        let mut other = base;
        other.query = "follower=1".into();
        assert!(!other.wants_event_stream());
    }

    #[test]
    fn stop_joins_the_accept_loop() {
        let server = test_server();
        let addr = server.local_addr();
        server.stop();
        // The listener is gone: either the connect or the read fails.
        let alive = TcpStream::connect_timeout(&addr, Duration::from_millis(200))
            .map(|mut s| {
                let _ = write!(s, "GET /metrics HTTP/1.1\r\n\r\n");
                let mut buf = String::new();
                let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                s.read_to_string(&mut buf)
                    .map(|_| !buf.is_empty())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        assert!(!alive, "server still answering after stop()");
    }
}
