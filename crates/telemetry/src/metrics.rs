//! Lock-free metric primitives: monotonic counters, signed gauges, and a
//! fixed-budget streaming histogram with quantile readout.
//!
//! The histogram is log-bucketed in the style of HDR histograms: values
//! 0..8 get exact buckets, and every power-of-two octave above that is
//! split into 8 sub-buckets, so the bucket width is at most 1/8 of the
//! bucket's lower bound. Reading a quantile through the bucket midpoint
//! therefore has a worst-case relative error of 1/16 (6.25%), the memory
//! footprint is a fixed 496 buckets regardless of how many samples are
//! recorded, and `record` is a handful of relaxed atomic RMWs — O(1),
//! wait-free, and safe to call concurrently from any number of threads.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Exact buckets for values below this (also sub-buckets per octave).
const LINEAR: u64 = 8;
/// log2(LINEAR): bits of sub-bucket resolution within an octave.
const SUB_BITS: u32 = 3;
/// Total bucket count: 8 exact + 61 octaves (2^3..2^63) * 8 sub-buckets.
pub const BUCKETS: usize = 496;

/// A monotonically increasing event count. Cheap to clone; all clones
/// share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depth, outbox length, ...).
/// Cheap to clone; all clones share the same cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `dec`).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Streaming histogram over `u64` samples (by convention nanoseconds for
/// `*_ns` metrics, raw units otherwise). Cheap to clone; clones share
/// the same buckets, so worker threads can record into one histogram.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a sample to its bucket index.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & (LINEAR - 1)) as usize;
        ((msb - SUB_BITS) as usize) * LINEAR as usize + LINEAR as usize + sub
    }
}

/// Inclusive lower bound of bucket `i`.
pub(crate) fn bucket_low(i: usize) -> u64 {
    if i < LINEAR as usize {
        i as u64
    } else {
        let octave = (i - LINEAR as usize) / LINEAR as usize; // 0-based from 2^3
        let sub = ((i - LINEAR as usize) % LINEAR as usize) as u64;
        (LINEAR + sub) << octave
    }
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` boundary).
pub(crate) fn bucket_high(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_low(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// The value reported for samples landing in bucket `i` (its midpoint).
pub(crate) fn bucket_mid(i: usize) -> u64 {
    if i < LINEAR as usize {
        i as u64
    } else {
        let low = bucket_low(i);
        let width = bucket_low(i + 1).saturating_sub(low).max(1);
        low + width / 2
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one sample. O(1): five relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        let v = self.core.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The value at quantile `q` in [0, 1] (bucket midpoint; ≤ 6.25%
    /// relative error). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.core.buckets[i].load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_mid(i);
            }
        }
        // Concurrent recording can make `count` run ahead of buckets
        // momentarily; fall back to the observed max.
        self.max()
    }

    /// Number of recorded samples whose bucket is at or below the bucket
    /// of `v`. With [`Histogram::count`] this yields a percentile rank
    /// with the same ≤ 6.25% bucket-resolution error as `quantile`.
    pub fn count_le(&self, v: u64) -> u64 {
        let idx = bucket_index(v);
        let mut cum = 0u64;
        for i in 0..=idx {
            cum += self.core.buckets[i].load(Ordering::Relaxed);
        }
        cum
    }

    /// The fraction of recorded samples ≤ `v` (bucket-resolution), in
    /// [0, 1]. Returns 0.0 when empty.
    pub fn rank_of(&self, v: u64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        (self.count_le(v).min(total) as f64) / total as f64
    }

    /// Folds another histogram's samples into this one. Merging is
    /// associative and commutative, so per-thread histograms can be
    /// combined in any order.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.core.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                self.core.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(other.count(), Ordering::Relaxed);
        self.core.sum.fetch_add(other.sum(), Ordering::Relaxed);
        let omin = other.core.min.load(Ordering::Relaxed);
        self.core.min.fetch_min(omin, Ordering::Relaxed);
        self.core.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// A serializable copy of the current state (for baseline
    /// persistence). Concurrent recording during the copy can skew a
    /// bucket by a sample or two — harmless for a baseline.
    pub fn to_state(&self) -> HistogramState {
        let mut buckets = Vec::new();
        for i in 0..BUCKETS {
            let n = self.core.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramState {
            buckets,
            count: self.count(),
            sum: self.sum(),
            min: self.core.min.load(Ordering::Relaxed),
            max: self.max(),
        }
    }

    /// Rebuilds a histogram from a saved state. Bucket indexes outside
    /// the fixed layout are ignored (a state written by a future layout
    /// degrades gracefully instead of panicking).
    pub fn from_state(state: &HistogramState) -> Histogram {
        let h = Histogram::new();
        let c = &h.core;
        for &(i, n) in &state.buckets {
            if (i as usize) < BUCKETS {
                c.buckets[i as usize].store(n, Ordering::Relaxed);
            }
        }
        c.count.store(state.count, Ordering::Relaxed);
        c.sum.store(state.sum, Ordering::Relaxed);
        c.min.store(state.min, Ordering::Relaxed);
        c.max.store(state.max, Ordering::Relaxed);
        h
    }

    /// Cumulative bucket counts for Prometheus histogram exposition:
    /// one `(le, cumulative_count)` pair per *occupied* bucket, `le`
    /// being the bucket's inclusive upper bound. Sparse on purpose — a
    /// scrape carries only the boundaries that hold samples, and
    /// Prometheus treats the missing interior boundaries as implied by
    /// the cumulative counts. The final `+Inf` bucket is the caller's to
    /// add (it equals [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            let n = self.core.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                cum += n;
                out.push((bucket_high(i), cum));
            }
        }
        out
    }

    /// An immutable summary of the current state.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Records elapsed wall-clock time into a histogram on drop.
pub struct HistogramTimer {
    hist: Histogram,
    start: Instant,
}

impl HistogramTimer {
    /// Stops the timer now, recording and returning the elapsed time.
    pub fn stop(self) -> Duration {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        std::mem::forget(self);
        elapsed
    }
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// A histogram's full persistable state: sparse bucket counts plus the
/// scalar aggregates. `min` keeps its raw `u64::MAX` "empty" sentinel so
/// a restore is byte-faithful.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramState {
    /// `(bucket_index, count)` for every non-zero bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Raw minimum cell (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// Point-in-time digest of a histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_dense() {
        let mut last = 0usize;
        for shift in 0..60 {
            for v in [1u64 << shift, (1u64 << shift) + 1, (1u64 << shift) * 3 / 2] {
                let i = bucket_index(v);
                assert!(i >= last || v < LINEAR, "index regressed at {v}");
                assert!(i < BUCKETS, "index {i} out of range for {v}");
                last = i.max(last);
                // The bucket must actually contain the value.
                assert!(bucket_low(i) <= v);
                if i + 1 < BUCKETS {
                    assert!(v < bucket_low(i + 1), "v={v} i={i}");
                }
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 0.0625 + 1e-9, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn merge_matches_single_histogram() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17)
            } else {
                b.record(v * 17)
            }
            whole.record(v * 17);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn rank_tracks_quantiles() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(Histogram::new().rank_of(5), 0.0);
        for (v, exact) in [(5_000u64, 0.5), (9_000, 0.9), (9_900, 0.99)] {
            let got = h.rank_of(v);
            assert!(
                (got - exact).abs() <= 0.0625 + 1e-9,
                "rank_of({v}) = {got}, exact {exact}"
            );
        }
        assert_eq!(h.rank_of(u64::MAX / 2), 1.0);
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_complete() {
        let h = Histogram::new();
        assert!(h.cumulative_buckets().is_empty());
        for v in [0u64, 3, 3, 7, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        // Monotonic in both boundary and cumulative count.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
        // The last cumulative count covers every sample.
        assert_eq!(buckets.last().unwrap().1, h.count());
        // Every boundary actually bounds its samples: counting samples
        // ≤ le through the bucket API agrees.
        for &(le, cum) in &buckets {
            assert_eq!(h.count_le(le), cum, "le={le}");
        }
        // Exact sub-linear values get exact boundaries.
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (3, 3));
    }

    #[test]
    fn timer_records_on_drop_and_stop() {
        let h = Histogram::new();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        let t = h.start_timer();
        let d = t.stop();
        assert_eq!(h.count(), 2);
        assert!(d.as_nanos() > 0 || d.is_zero());
    }
}
