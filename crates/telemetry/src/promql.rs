//! A PromQL-subset query engine over long-term stats and live metrics.
//!
//! The LTS plane (PR 6) can dump raw series; this module lets callers
//! *ask* it things: instant and range queries over selectors with label
//! matchers, `rate`/`increase`/`delta`, `histogram_quantile` on the
//! log-bucket histograms, `sum`/`avg`/`min`/`max`/`count` with
//! `by`/`without` grouping, and scalar arithmetic/comparisons.
//!
//! The engine evaluates one expression over a set of [`SeriesSource`]s.
//! A source is either a long-term store ([`LtsSource`]) or the live
//! registry ([`RegistrySource`]); the federation plane registers one
//! source per shard, tagged with a `shard="..."` label, so a single
//! evaluation *is* the cross-shard merge: plain selectors keep the
//! shard label, `sum by (path)` aggregates across shards. A source
//! that fails to enumerate (unreadable shard store) contributes a
//! warning to the response instead of failing the whole query.
//!
//! Semantics deviate from upstream PromQL where the store does
//! (documented in DESIGN.md Appendix G):
//!
//! - LTS counter points are **per-interval deltas**, so
//!   `rate(c[W])` = (sum of deltas in `(t-W, t]`) / W and a bare
//!   counter selector is the running total (sum of all deltas ≤ t).
//! - `=~`/`!~` take `*`-wildcard patterns (the [`selector_matches`]
//!   grammar), not full regexes — the crate is std-only.
//! - `histogram_quantile(q, sel[W])` merges the delta histogram
//!   states in the window bucket-wise and reads the quantile off the
//!   merged sparse log-bucket histogram (≤6.25% bucket error);
//!   without a window it reads the newest state in the lookback.
//! - Vector-to-vector binary operations are not in the subset.

use crate::http::{HttpRequest, HttpResponse};
use crate::lts::{
    downsample, fold_series_range, json_escape, selector_matches, LtsReader, Point, PointValue,
    RangeFold,
};
use crate::lts::{Resolution, SeriesKind};
use crate::metrics::Histogram;
use crate::Registry;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::Arc;

/// How far back an instant evaluation looks for the newest sample
/// before declaring a series stale, floor value (seconds). The
/// effective lookback is `max(LOOKBACK_FLOOR_SECS, 2 * resolution
/// window)` so hourly points stay visible at hourly steps.
pub const LOOKBACK_FLOOR_SECS: u64 = 300;

/// Range-query step cap: `(end - start) / step` may not exceed this
/// many evaluation points (mirrors Prometheus' 11k-point limit).
pub const MAX_RANGE_STEPS: u64 = 11_000;

// ---------------------------------------------------------------------
// Durations and label-set parsing
// ---------------------------------------------------------------------

/// Parses `"90"`, `"90s"`, `"15m"`, `"2h"`, `"1d"`, or `"1w"` into
/// seconds. Bare numbers are seconds.
pub fn parse_duration(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, unit) = match s.find(|c: char| !c.is_ascii_digit()) {
        None => (s, ""),
        Some(0) => return None,
        Some(i) => s.split_at(i),
    };
    let n: u64 = num.parse().ok()?;
    let mult = match unit {
        "" | "s" => 1,
        "m" => 60,
        "h" => 3_600,
        "d" => 86_400,
        "w" => 604_800,
        _ => return None,
    };
    n.checked_mul(mult)
}

/// Splits a stored series name that may embed a label set —
/// `netqos_path_used_bps{path="alpha"}` — into the base name and the
/// decoded `(key, value)` pairs, sorted by key. Names without a
/// well-formed suffix come back with no labels.
pub fn parse_series_name(name: &str) -> (String, Vec<(String, String)>) {
    let Some(open) = name.find('{') else {
        return (name.to_owned(), Vec::new());
    };
    if !name.ends_with('}') || open == 0 {
        return (name.to_owned(), Vec::new());
    }
    let base = &name[..open];
    let body = &name[open + 1..name.len() - 1];
    match parse_label_body(body) {
        Some(mut labels) => {
            labels.sort();
            (base.to_owned(), labels)
        }
        None => (name.to_owned(), Vec::new()),
    }
}

/// Parses `k="v",k2="v2"` with `\\`, `\"`, `\n` escapes in values.
fn parse_label_body(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let key_start = i;
        while i < b.len() && b[i] != b'=' {
            i += 1;
        }
        let key = body[key_start..i].trim().to_owned();
        if key.is_empty() || i >= b.len() {
            return None;
        }
        i += 1; // '='
        if i >= b.len() || b[i] != b'"' {
            return None;
        }
        i += 1;
        let mut value = String::new();
        loop {
            if i >= b.len() {
                return None;
            }
            match b[i] {
                b'"' => break,
                b'\\' => {
                    i += 1;
                    match b.get(i)? {
                        b'\\' => value.push('\\'),
                        b'"' => value.push('"'),
                        b'n' => value.push('\n'),
                        _ => return None,
                    }
                }
                c => value.push(c as char),
            }
            i += 1;
        }
        i += 1; // closing quote
        labels.push((key, value));
        if i < b.len() {
            if b[i] != b',' {
                return None;
            }
            i += 1;
        }
    }
    Some(labels)
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    Dur(u64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Eq,
    Ne,
    ReMatch,
    NreMatch,
    EqEq,
    Gt,
    Lt,
    Ge,
    Le,
    Plus,
    Minus,
    Star,
    Slash,
}

fn tok_name(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => format!("`{s}`"),
        Tok::Num(n) => format!("`{n}`"),
        Tok::Str(s) => format!("\"{s}\""),
        Tok::Dur(d) => format!("duration `{d}s`"),
        Tok::LParen => "`(`".into(),
        Tok::RParen => "`)`".into(),
        Tok::LBrace => "`{`".into(),
        Tok::RBrace => "`}`".into(),
        Tok::LBracket => "`[`".into(),
        Tok::RBracket => "`]`".into(),
        Tok::Comma => "`,`".into(),
        Tok::Eq => "`=`".into(),
        Tok::Ne => "`!=`".into(),
        Tok::ReMatch => "`=~`".into(),
        Tok::NreMatch => "`!~`".into(),
        Tok::EqEq => "`==`".into(),
        Tok::Gt => "`>`".into(),
        Tok::Lt => "`<`".into(),
        Tok::Ge => "`>=`".into(),
        Tok::Le => "`<=`".into(),
        Tok::Plus => "`+`".into(),
        Tok::Minus => "`-`".into(),
        Tok::Star => "`*`".into(),
        Tok::Slash => "`/`".into(),
    }
}

fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b'[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            b']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            b'-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            b'*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            b'/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            b'=' => {
                i += 1;
                match b.get(i) {
                    Some(b'=') => {
                        toks.push(Tok::EqEq);
                        i += 1;
                    }
                    Some(b'~') => {
                        toks.push(Tok::ReMatch);
                        i += 1;
                    }
                    _ => toks.push(Tok::Eq),
                }
            }
            b'!' => {
                i += 1;
                match b.get(i) {
                    Some(b'=') => {
                        toks.push(Tok::Ne);
                        i += 1;
                    }
                    Some(b'~') => {
                        toks.push(Tok::NreMatch);
                        i += 1;
                    }
                    _ => return Err("expected `!=` or `!~`".into()),
                }
            }
            b'>' => {
                i += 1;
                if b.get(i) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 1;
                } else {
                    toks.push(Tok::Gt);
                }
            }
            b'<' => {
                i += 1;
                if b.get(i) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 1;
                } else {
                    toks.push(Tok::Lt);
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err("unterminated string".into()),
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            match b.get(i) {
                                Some(b'\\') => s.push('\\'),
                                Some(b'"') => s.push('"'),
                                Some(b'n') => s.push('\n'),
                                _ => return Err("bad string escape".into()),
                            }
                            i += 1;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let num = &src[start..i];
                // A unit letter glued to an integer is a duration
                // literal (`5m`, `1h`) — only meaningful in `[...]`.
                let unit_here = i < b.len()
                    && matches!(b[i], b's' | b'm' | b'h' | b'd' | b'w')
                    && !matches!(b.get(i + 1), Some(c) if c.is_ascii_alphanumeric() || *c == b'_');
                if unit_here && !num.contains('.') {
                    let d = parse_duration(&format!("{}{}", num, b[i] as char))
                        .ok_or_else(|| format!("bad duration `{num}{}`", b[i] as char))?;
                    toks.push(Tok::Dur(d));
                    i += 1;
                } else {
                    let n: f64 = num.parse().map_err(|_| format!("bad number `{num}`"))?;
                    toks.push(Tok::Num(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b':' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b':')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(src[start..i].to_owned()));
            }
            c => return Err(format!("unexpected character `{}`", c as char)),
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// AST and parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatchOp {
    Eq,
    Ne,
    Re,
    Nre,
}

#[derive(Debug, Clone)]
struct Matcher {
    label: String,
    op: MatchOp,
    pattern: String,
}

#[derive(Debug, Clone)]
struct Selector {
    name: Option<String>,
    matchers: Vec<Matcher>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeFn {
    Rate,
    Increase,
    Delta,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggOp {
    Sum,
    Avg,
    Min,
    Max,
    Count,
}

impl AggOp {
    fn name(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Avg => "avg",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Count => "count",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Gt,
    Lt,
    Ge,
    Le,
}

impl BinOp {
    fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Lt | BinOp::Ge | BinOp::Le
        )
    }
}

#[derive(Debug, Clone)]
struct Grouping {
    without: bool,
    labels: Vec<String>,
}

#[derive(Debug, Clone)]
enum Expr {
    Number(f64),
    Selector(Selector),
    RangeFn {
        f: RangeFn,
        sel: Selector,
        window: u64,
    },
    HistQuantile {
        q: f64,
        sel: Selector,
        window: Option<u64>,
    },
    Agg {
        op: AggOp,
        grouping: Option<Grouping>,
        arg: Box<Expr>,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, ctx: &str) -> Result<(), String> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(format!(
                "expected {} {ctx}, found {}",
                tok_name(&want),
                tok_name(&t)
            )),
            None => Err(format!(
                "expected {} {ctx}, found end of query",
                tok_name(&want)
            )),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::EqEq) => BinOp::Eq,
                Some(Tok::Ne) => BinOp::Ne,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Ge) => BinOp::Ge,
                Some(Tok::Le) => BinOp::Le,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Bin {
                op: BinOp::Sub,
                lhs: Box::new(Expr::Number(0.0)),
                rhs: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Number(n)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "to close `(`")?;
                Ok(e)
            }
            Some(Tok::LBrace) => {
                let matchers = self.parse_matchers()?;
                Ok(Expr::Selector(Selector {
                    name: None,
                    matchers,
                }))
            }
            Some(Tok::Ident(id)) => self.parse_ident(id),
            Some(t) => Err(format!("unexpected {}", tok_name(&t))),
            None => Err("unexpected end of query".into()),
        }
    }

    fn parse_ident(&mut self, id: String) -> Result<Expr, String> {
        match id.as_str() {
            "rate" | "increase" | "delta" => {
                let f = match id.as_str() {
                    "rate" => RangeFn::Rate,
                    "increase" => RangeFn::Increase,
                    _ => RangeFn::Delta,
                };
                self.expect(Tok::LParen, &format!("after `{id}`"))?;
                let sel = self.parse_selector()?;
                let window = self.parse_window(&id)?;
                self.expect(Tok::RParen, &format!("to close `{id}(`"))?;
                Ok(Expr::RangeFn { f, sel, window })
            }
            "histogram_quantile" => {
                self.expect(Tok::LParen, "after `histogram_quantile`")?;
                let q = match self.bump() {
                    Some(Tok::Num(n)) => n,
                    Some(t) => {
                        return Err(format!(
                            "histogram_quantile needs a numeric quantile, found {}",
                            tok_name(&t)
                        ))
                    }
                    None => return Err("histogram_quantile needs a numeric quantile".into()),
                };
                self.expect(Tok::Comma, "after the quantile")?;
                let sel = self.parse_selector()?;
                let window = if self.peek() == Some(&Tok::LBracket) {
                    Some(self.parse_window("histogram_quantile")?)
                } else {
                    None
                };
                self.expect(Tok::RParen, "to close `histogram_quantile(`")?;
                Ok(Expr::HistQuantile { q, sel, window })
            }
            "sum" | "avg" | "min" | "max" | "count" => {
                let op = match id.as_str() {
                    "sum" => AggOp::Sum,
                    "avg" => AggOp::Avg,
                    "min" => AggOp::Min,
                    "max" => AggOp::Max,
                    _ => AggOp::Count,
                };
                let mut grouping = self.try_parse_grouping()?;
                self.expect(Tok::LParen, &format!("after `{id}`"))?;
                let arg = self.parse_expr()?;
                self.expect(Tok::RParen, &format!("to close `{id}(`"))?;
                if grouping.is_none() {
                    grouping = self.try_parse_grouping()?;
                }
                Ok(Expr::Agg {
                    op,
                    grouping,
                    arg: Box::new(arg),
                })
            }
            _ => {
                let matchers = if self.peek() == Some(&Tok::LBrace) {
                    self.bump();
                    self.parse_matchers()?
                } else {
                    Vec::new()
                };
                Ok(Expr::Selector(Selector {
                    name: Some(id),
                    matchers,
                }))
            }
        }
    }

    fn try_parse_grouping(&mut self) -> Result<Option<Grouping>, String> {
        let without = match self.peek() {
            Some(Tok::Ident(w)) if w == "by" => false,
            Some(Tok::Ident(w)) if w == "without" => true,
            _ => return Ok(None),
        };
        self.bump();
        self.expect(Tok::LParen, "after `by`/`without`")?;
        let mut labels = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                match self.bump() {
                    Some(Tok::Ident(l)) => labels.push(l),
                    Some(t) => {
                        return Err(format!("expected a label name, found {}", tok_name(&t)))
                    }
                    None => return Err("expected a label name".into()),
                }
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(Tok::RParen, "to close the grouping")?;
        Ok(Some(Grouping { without, labels }))
    }

    fn parse_window(&mut self, ctx: &str) -> Result<u64, String> {
        self.expect(
            Tok::LBracket,
            &format!("(`{ctx}` takes a range like `[5m]`)"),
        )?;
        let secs = match self.bump() {
            Some(Tok::Dur(d)) => d,
            Some(Tok::Num(n)) if n > 0.0 && n.fract() == 0.0 => n as u64,
            Some(t) => {
                return Err(format!(
                    "expected a duration like `5m` in the range, found {}",
                    tok_name(&t)
                ))
            }
            None => return Err("expected a duration in the range".into()),
        };
        if secs == 0 {
            return Err("range duration must be positive".into());
        }
        self.expect(Tok::RBracket, "to close the range")?;
        Ok(secs)
    }

    fn parse_selector(&mut self) -> Result<Selector, String> {
        match self.bump() {
            Some(Tok::Ident(name)) => {
                let matchers = if self.peek() == Some(&Tok::LBrace) {
                    self.bump();
                    self.parse_matchers()?
                } else {
                    Vec::new()
                };
                Ok(Selector {
                    name: Some(name),
                    matchers,
                })
            }
            Some(Tok::LBrace) => Ok(Selector {
                name: None,
                matchers: self.parse_matchers()?,
            }),
            Some(t) => Err(format!("expected a selector, found {}", tok_name(&t))),
            None => Err("expected a selector".into()),
        }
    }

    /// Parses matchers after a consumed `{`, through the closing `}`.
    fn parse_matchers(&mut self) -> Result<Vec<Matcher>, String> {
        let mut matchers = Vec::new();
        if self.peek() == Some(&Tok::RBrace) {
            self.bump();
            return Ok(matchers);
        }
        loop {
            let label = match self.bump() {
                Some(Tok::Ident(l)) => l,
                Some(t) => return Err(format!("expected a label name, found {}", tok_name(&t))),
                None => return Err("expected a label name".into()),
            };
            let op = match self.bump() {
                Some(Tok::Eq) => MatchOp::Eq,
                Some(Tok::Ne) => MatchOp::Ne,
                Some(Tok::ReMatch) => MatchOp::Re,
                Some(Tok::NreMatch) => MatchOp::Nre,
                Some(t) => {
                    return Err(format!(
                        "expected `=`, `!=`, `=~`, or `!~`, found {}",
                        tok_name(&t)
                    ))
                }
                None => return Err("expected a match operator".into()),
            };
            let pattern = match self.bump() {
                Some(Tok::Str(s)) => s,
                Some(t) => {
                    return Err(format!("expected a quoted pattern, found {}", tok_name(&t)))
                }
                None => return Err("expected a quoted pattern".into()),
            };
            matchers.push(Matcher { label, op, pattern });
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RBrace) => break,
                Some(t) => return Err(format!("expected `,` or `}}`, found {}", tok_name(&t))),
                None => return Err("unclosed `{`".into()),
            }
        }
        Ok(matchers)
    }
}

fn parse_query(src: &str) -> Result<Expr, String> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err("empty query".into());
    }
    let mut p = Parser { toks, pos: 0 };
    let e = p.parse_expr()?;
    match p.peek() {
        None => Ok(e),
        Some(Tok::LBracket) => Err(
            "range selectors (`[5m]`) are only valid as arguments to rate/increase/delta/histogram_quantile"
                .into(),
        ),
        Some(t) => Err(format!("unexpected {} after expression", tok_name(t))),
    }
}

/// Parses `query` and reports its first syntax error without evaluating
/// anything — the hook linters (e.g. `netqos record lint`) use to
/// validate expressions against the engine's actual grammar.
pub fn check_query(query: &str) -> Result<(), String> {
    parse_query(query).map(|_| ())
}

/// A scalar-typed expression yields `resultType: "scalar"`; anything
/// touching a selector yields a vector (or matrix over a range).
fn expr_is_scalar(e: &Expr) -> bool {
    match e {
        Expr::Number(_) => true,
        Expr::Bin { lhs, rhs, .. } => expr_is_scalar(lhs) && expr_is_scalar(rhs),
        _ => false,
    }
}

fn collect_selectors<'a>(e: &'a Expr, out: &mut Vec<&'a Selector>) {
    match e {
        Expr::Number(_) => {}
        Expr::Selector(s) => out.push(s),
        Expr::RangeFn { sel, .. } => out.push(sel),
        Expr::HistQuantile { sel, .. } => out.push(sel),
        Expr::Agg { arg, .. } => collect_selectors(arg, out),
        Expr::Bin { lhs, rhs, .. } => {
            collect_selectors(lhs, out);
            collect_selectors(rhs, out);
        }
    }
}

// ---------------------------------------------------------------------
// Series sources
// ---------------------------------------------------------------------

/// One queryable series as a source advertises it: parsed name, sorted
/// labels, kind, and a fetch closure returning canonical points for
/// `[start, end]` at a resolution.
pub struct PromSeries {
    /// Base metric name (labels stripped).
    pub base: String,
    /// Decoded label pairs, sorted by key (no `__name__`).
    pub labels: Vec<(String, String)>,
    /// Counter, gauge, or histogram.
    pub kind: SeriesKind,
    /// Source-scoped key handed back to [`SeriesSource::fold_range`]
    /// (the store slug for [`LtsSource`]; sources without a fold path
    /// can use any identifier).
    pub key: String,
    /// Fetches points in `[start, end]` at the given resolution.
    #[allow(clippy::type_complexity)]
    pub fetch: Arc<dyn Fn(Resolution, u64, u64) -> Vec<Point> + Send + Sync>,
}

/// Anything the engine can evaluate over: enumerates its series or
/// fails with a reason (which becomes a response warning, not a query
/// failure, on multi-source engines).
pub trait SeriesSource: Send + Sync {
    /// Every series this source can serve.
    fn series(&self) -> Result<Vec<PromSeries>, String>;

    /// Newest point timestamp across the source, if cheaply known —
    /// used as the default evaluation time for instant queries.
    fn newest_t(&self) -> Option<u64> {
        None
    }

    /// Folds the counter series behind `key` over `(after, upto]`
    /// without materializing its points, if the source can do so with
    /// answers identical to a canonical scan. `None` sends the engine
    /// down the general fetch-and-materialize path.
    fn fold_range(
        &self,
        _key: &str,
        _kind: SeriesKind,
        _res: Resolution,
        _after: Option<u64>,
        _upto: u64,
    ) -> Option<RangeFold> {
        None
    }
}

/// A [`SeriesSource`] over a long-term store directory.
pub struct LtsSource {
    reader: LtsReader,
}

impl LtsSource {
    /// A source reading `reader`'s store.
    pub fn new(reader: LtsReader) -> LtsSource {
        LtsSource { reader }
    }
}

impl SeriesSource for LtsSource {
    fn series(&self) -> Result<Vec<PromSeries>, String> {
        if !self.reader.dir().is_dir() {
            return Err(format!(
                "no long-term store at {}",
                self.reader.dir().display()
            ));
        }
        Ok(self
            .reader
            .index()
            .into_iter()
            .map(|info| {
                let (base, labels) = parse_series_name(&info.name);
                let reader = self.reader.clone();
                let kind = info.kind;
                let key = info.slug.clone();
                PromSeries {
                    base,
                    labels,
                    kind,
                    key,
                    fetch: Arc::new(move |res, start, end| {
                        reader.series_points(&info, res, start, end)
                    }),
                }
            })
            .collect())
    }

    fn newest_t(&self) -> Option<u64> {
        self.reader.newest_t()
    }

    fn fold_range(
        &self,
        key: &str,
        kind: SeriesKind,
        res: Resolution,
        after: Option<u64>,
        upto: u64,
    ) -> Option<RangeFold> {
        fold_series_range(self.reader.dir(), key, kind, res, after, upto)
    }
}

/// A [`SeriesSource`] over the live [`Registry`]: instant-only — every
/// fetch reports the current value stamped at the requested end time,
/// so range functions see at most one point. Attach an [`LtsSource`]
/// for history.
pub struct RegistrySource {
    registry: Arc<Registry>,
}

impl RegistrySource {
    /// A source over `registry`'s current values.
    pub fn new(registry: Arc<Registry>) -> RegistrySource {
        RegistrySource { registry }
    }
}

impl SeriesSource for RegistrySource {
    fn series(&self) -> Result<Vec<PromSeries>, String> {
        let mut out = Vec::new();
        for (name, c) in self.registry.counter_entries() {
            let (base, labels) = parse_series_name(&name);
            out.push(PromSeries {
                base,
                labels,
                kind: SeriesKind::Counter,
                key: name.clone(),
                fetch: Arc::new(move |_res, _start, end| {
                    vec![Point {
                        t: end,
                        value: PointValue::Counter(c.get()),
                    }]
                }),
            });
        }
        for (name, g) in self.registry.gauge_entries() {
            let (base, labels) = parse_series_name(&name);
            out.push(PromSeries {
                base,
                labels,
                kind: SeriesKind::Gauge,
                key: name.clone(),
                fetch: Arc::new(move |_res, _start, end| {
                    vec![Point {
                        t: end,
                        value: PointValue::Gauge(g.get()),
                    }]
                }),
            });
        }
        for (name, h) in self.registry.histogram_entries() {
            let (base, labels) = parse_series_name(&name);
            out.push(PromSeries {
                base,
                labels,
                kind: SeriesKind::Histogram,
                key: name.clone(),
                fetch: Arc::new(move |_res, _start, end| {
                    vec![Point {
                        t: end,
                        value: PointValue::Histogram(h.to_state()),
                    }]
                }),
            });
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Per-query view of one matched series. Points are materialized
/// lazily: an instant evaluation whose windows the source can fold
/// ([`SeriesSource::fold_range`]) never fetches the vector at all; the
/// first evaluation that needs points fetches once and builds a
/// prefix-sum over counter deltas so later steps are a binary search.
struct SeriesData {
    base: String,
    labels: Vec<(String, String)>,
    kind: SeriesKind,
    key: String,
    source: Arc<dyn SeriesSource>,
    #[allow(clippy::type_complexity)]
    fetch: Arc<dyn Fn(Resolution, u64, u64) -> Vec<Point> + Send + Sync>,
    /// `(pts, cum)` where `cum[i]` = sum of counter deltas
    /// `pts[0..=i]` (counters only). `None` until first needed.
    #[allow(clippy::type_complexity)]
    data: RefCell<Option<(Vec<Point>, Vec<f64>)>>,
}

impl SeriesData {
    /// Materializes (once) the point vector and counter prefix sums.
    fn ensure(&self, ctx: &Ctx) -> std::cell::Ref<'_, (Vec<Point>, Vec<f64>)> {
        if self.data.borrow().is_none() {
            let pts = (self.fetch)(ctx.res, 0, ctx.fetch_end);
            ctx.stats.borrow_mut().points_scanned += pts.len() as u64;
            let cum = if self.kind == SeriesKind::Counter {
                let mut acc = 0.0;
                pts.iter()
                    .map(|p| {
                        if let PointValue::Counter(v) = &p.value {
                            acc += *v as f64;
                        }
                        acc
                    })
                    .collect()
            } else {
                Vec::new()
            };
            *self.data.borrow_mut() = Some((pts, cum));
        }
        std::cell::Ref::map(self.data.borrow(), |d| d.as_ref().unwrap())
    }

    /// The pushdown fast path: a whole-window counter fold from the
    /// source. Taken only on instant evaluations (a range query reuses
    /// one materialization across all its steps) and only while the
    /// series is still unmaterialized.
    fn fold(&self, ctx: &Ctx, after: Option<u64>, upto: u64) -> Option<RangeFold> {
        if !ctx.allow_fold || self.data.borrow().is_some() {
            return None;
        }
        let f = self
            .source
            .fold_range(&self.key, self.kind, ctx.res, after, upto)?;
        let mut st = ctx.stats.borrow_mut();
        st.pushdown_evals += 1;
        st.points_scanned += f.points_scanned;
        st.segments_folded += f.segments_folded;
        Some(f)
    }
}

struct Ctx {
    series: Vec<SeriesData>,
    lookback: u64,
    res: Resolution,
    fetch_end: u64,
    /// Instant queries may answer counter windows via
    /// [`SeriesSource::fold_range`]; range queries always materialize.
    allow_fold: bool,
    stats: RefCell<QueryStats>,
}

/// An intermediate vector element (timestamp implied by the step).
#[derive(Debug, Clone)]
struct VSample {
    name: String,
    labels: Vec<(String, String)>,
    v: f64,
}

enum Val {
    Scalar(f64),
    Vector(Vec<VSample>),
}

/// The evaluator: expressions over any number of sources, each
/// optionally tagged with a shard label. Evaluation is deterministic —
/// results are sorted by name then labels — so identical stores yield
/// byte-identical responses.
#[derive(Default)]
pub struct QueryEngine {
    sources: Vec<(Option<String>, Arc<dyn SeriesSource>)>,
    /// Warnings attached to every response (e.g. a federation shard
    /// with no store to query).
    extra_warnings: Vec<String>,
}

impl QueryEngine {
    /// An engine with no sources (every query is empty).
    pub fn new() -> QueryEngine {
        QueryEngine::default()
    }

    /// Adds a source. With `shard` set, every series it serves gains a
    /// `shard="..."` label and its failures are reported per shard.
    pub fn push_source(&mut self, shard: Option<&str>, source: Arc<dyn SeriesSource>) {
        self.sources.push((shard.map(str::to_owned), source));
    }

    /// Builder form of [`QueryEngine::push_source`].
    pub fn with_source(mut self, shard: Option<&str>, source: Arc<dyn SeriesSource>) -> Self {
        self.push_source(shard, source);
        self
    }

    /// Attaches a warning carried on every response.
    pub fn push_warning(&mut self, warning: String) {
        self.extra_warnings.push(warning);
    }

    /// Newest point timestamp across all sources — the default instant
    /// evaluation time (falls back to the caller's clock when unknown).
    pub fn newest_t(&self) -> Option<u64> {
        self.sources.iter().filter_map(|(_, s)| s.newest_t()).max()
    }

    fn build_ctx(
        &self,
        ast: &Expr,
        res: Resolution,
        fetch_end: u64,
        allow_fold: bool,
    ) -> (Ctx, Vec<String>) {
        let mut selectors = Vec::new();
        collect_selectors(ast, &mut selectors);
        let mut warnings = self.extra_warnings.clone();
        let mut series = Vec::new();
        for (shard, source) in &self.sources {
            let metas = match source.series() {
                Ok(m) => m,
                Err(e) => {
                    warnings.push(match shard {
                        Some(name) => format!("shard {name}: {e}"),
                        None => e,
                    });
                    continue;
                }
            };
            for meta in metas {
                let mut labels = meta.labels;
                if let Some(name) = shard {
                    labels.retain(|(k, _)| k != "shard");
                    labels.push(("shard".to_owned(), name.clone()));
                    labels.sort();
                }
                if !selectors
                    .iter()
                    .any(|sel| sel_matches(sel, &meta.base, &labels))
                {
                    continue;
                }
                series.push(SeriesData {
                    base: meta.base,
                    labels,
                    kind: meta.kind,
                    key: meta.key,
                    source: source.clone(),
                    fetch: meta.fetch,
                    data: RefCell::new(None),
                });
            }
        }
        let lookback = LOOKBACK_FLOOR_SECS.max(2 * res.window_secs());
        let stats = RefCell::new(QueryStats {
            series: series.len() as u64,
            ..QueryStats::default()
        });
        (
            Ctx {
                series,
                lookback,
                res,
                fetch_end,
                allow_fold,
                stats,
            },
            warnings,
        )
    }

    /// Evaluates `query` at time `t` against data at resolution `res`.
    pub fn instant(&self, query: &str, t: u64, res: Resolution) -> Result<QueryOutcome, String> {
        let ast = parse_query(query)?;
        let (ctx, warnings) = self.build_ctx(&ast, res, t, true);
        let result = match eval(&ast, &ctx, t)? {
            Val::Scalar(v) => QueryResult::Scalar { t, v },
            Val::Vector(samples) => QueryResult::Vector(sorted_samples(samples, t)),
        };
        Ok(QueryOutcome {
            result,
            warnings,
            stats: ctx.stats.into_inner(),
        })
    }

    /// Evaluates `query` at each step in `[start, end]`. The data
    /// resolution follows the step: ≥1h steps read hourly points,
    /// ≥1m steps read minutely points, finer steps read raw seconds.
    pub fn range(
        &self,
        query: &str,
        start: u64,
        end: u64,
        step: u64,
    ) -> Result<QueryOutcome, String> {
        if step == 0 {
            return Err("step must be positive".into());
        }
        if end < start {
            return Err("end must not precede start".into());
        }
        if (end - start) / step >= MAX_RANGE_STEPS {
            return Err(format!(
                "range spans more than {MAX_RANGE_STEPS} steps; widen the step or narrow the range"
            ));
        }
        let res = resolution_for_step(step);
        let ast = parse_query(query)?;
        let (ctx, warnings) = self.build_ctx(&ast, res, end, false);
        let result = if expr_is_scalar(&ast) {
            let mut values = Vec::new();
            let mut t = start;
            while t <= end {
                if let Val::Scalar(v) = eval(&ast, &ctx, t)? {
                    values.push((t, v));
                }
                t = match t.checked_add(step) {
                    Some(n) => n,
                    None => break,
                };
            }
            QueryResult::Matrix(vec![MatrixSeries {
                name: String::new(),
                labels: Vec::new(),
                values,
            }])
        } else {
            type SeriesKey = (String, Vec<(String, String)>);
            let mut grouped: std::collections::BTreeMap<SeriesKey, Vec<(u64, f64)>> =
                std::collections::BTreeMap::new();
            let mut t = start;
            while t <= end {
                if let Val::Vector(samples) = eval(&ast, &ctx, t)? {
                    for s in samples {
                        grouped
                            .entry((s.name, s.labels))
                            .or_default()
                            .push((t, s.v));
                    }
                }
                t = match t.checked_add(step) {
                    Some(n) => n,
                    None => break,
                };
            }
            QueryResult::Matrix(
                grouped
                    .into_iter()
                    .map(|((name, labels), values)| MatrixSeries {
                        name,
                        labels,
                        values,
                    })
                    .collect(),
            )
        };
        Ok(QueryOutcome {
            result,
            warnings,
            stats: ctx.stats.into_inner(),
        })
    }
}

/// The data resolution a range step implies.
pub fn resolution_for_step(step: u64) -> Resolution {
    if step >= 3_600 {
        Resolution::Hour1
    } else if step >= 60 {
        Resolution::Min1
    } else {
        Resolution::Raw1s
    }
}

fn sorted_samples(samples: Vec<VSample>, t: u64) -> Vec<Sample> {
    let mut out: Vec<Sample> = samples
        .into_iter()
        .map(|s| Sample {
            name: s.name,
            labels: s.labels,
            t,
            v: s.v,
        })
        .collect();
    out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    out
}

fn sel_matches(sel: &Selector, base: &str, labels: &[(String, String)]) -> bool {
    if let Some(name) = &sel.name {
        if name != base {
            return false;
        }
    }
    for m in &sel.matchers {
        let value = if m.label == "__name__" {
            base
        } else {
            labels
                .iter()
                .find(|(k, _)| *k == m.label)
                .map(|(_, v)| v.as_str())
                .unwrap_or("")
        };
        let ok = match m.op {
            MatchOp::Eq => value == m.pattern,
            MatchOp::Ne => value != m.pattern,
            MatchOp::Re => selector_matches(&m.pattern, value),
            MatchOp::Nre => !selector_matches(&m.pattern, value),
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Index range of points with `t` in `(after, upto]`.
fn window_indices(pts: &[Point], after: Option<u64>, upto: u64) -> (usize, usize) {
    let lo = match after {
        None => 0,
        Some(a) => pts.partition_point(|p| p.t <= a),
    };
    let hi = pts.partition_point(|p| p.t <= upto);
    (lo, hi)
}

fn gauge_value(p: &Point) -> f64 {
    match &p.value {
        PointValue::Gauge(v) => *v as f64,
        PointValue::Counter(v) => *v as f64,
        PointValue::Histogram(_) => f64::NAN,
    }
}

fn eval(e: &Expr, ctx: &Ctx, t: u64) -> Result<Val, String> {
    match e {
        Expr::Number(n) => Ok(Val::Scalar(*n)),
        Expr::Selector(sel) => {
            let mut out = Vec::new();
            for sd in &ctx.series {
                if !sel_matches(sel, &sd.base, &sd.labels) || sd.kind == SeriesKind::Histogram {
                    continue;
                }
                if sd.kind == SeriesKind::Counter {
                    // Pushdown: a bare counter's instant value is the
                    // running total, i.e. the fold of every delta ≤ t.
                    if let Some(fold) = sd.fold(ctx, None, t) {
                        let Some(last) = fold.last_t else { continue };
                        if t.saturating_sub(last) >= ctx.lookback {
                            continue;
                        }
                        out.push(VSample {
                            name: sd.base.clone(),
                            labels: sd.labels.clone(),
                            v: fold.sum as f64,
                        });
                        continue;
                    }
                }
                let d = sd.ensure(ctx);
                let (pts, cum) = (&d.0, &d.1);
                let (_, hi) = window_indices(pts, None, t);
                if hi == 0 {
                    continue;
                }
                let last = &pts[hi - 1];
                if t.saturating_sub(last.t) >= ctx.lookback {
                    continue;
                }
                let v = match sd.kind {
                    // Counters are stored as per-interval deltas; the
                    // instant value is the running total.
                    SeriesKind::Counter => cum[hi - 1],
                    SeriesKind::Gauge => gauge_value(last),
                    SeriesKind::Histogram => continue,
                };
                out.push(VSample {
                    name: sd.base.clone(),
                    labels: sd.labels.clone(),
                    v,
                });
            }
            Ok(Val::Vector(out))
        }
        Expr::RangeFn { f, sel, window } => {
            let mut out = Vec::new();
            let after = t.checked_sub(*window);
            for sd in &ctx.series {
                if !sel_matches(sel, &sd.base, &sd.labels) {
                    continue;
                }
                match (f, sd.kind) {
                    (RangeFn::Rate | RangeFn::Increase, SeriesKind::Counter) => {
                        // Pushdown: rate/increase need only the delta
                        // sum over (t-window, t], which the source can
                        // fold segment-by-segment.
                        if let Some(fold) = sd.fold(ctx, after, t) {
                            if fold.count == 0 {
                                continue;
                            }
                            let sum = fold.sum as f64;
                            let v = if *f == RangeFn::Rate {
                                sum / *window as f64
                            } else {
                                sum
                            };
                            out.push(VSample {
                                name: String::new(),
                                labels: sd.labels.clone(),
                                v,
                            });
                            continue;
                        }
                        let d = sd.ensure(ctx);
                        let (pts, cum) = (&d.0, &d.1);
                        let (lo, hi) = window_indices(pts, after, t);
                        if lo >= hi {
                            continue;
                        }
                        let sum = cum[hi - 1] - if lo > 0 { cum[lo - 1] } else { 0.0 };
                        let v = if *f == RangeFn::Rate {
                            sum / *window as f64
                        } else {
                            sum
                        };
                        out.push(VSample {
                            name: String::new(),
                            labels: sd.labels.clone(),
                            v,
                        });
                    }
                    (RangeFn::Delta, SeriesKind::Gauge) => {
                        let d = sd.ensure(ctx);
                        let pts = &d.0;
                        let (lo, hi) = window_indices(pts, after, t);
                        if hi.saturating_sub(lo) < 2 {
                            continue;
                        }
                        let v = gauge_value(&pts[hi - 1]) - gauge_value(&pts[lo]);
                        out.push(VSample {
                            name: String::new(),
                            labels: sd.labels.clone(),
                            v,
                        });
                    }
                    // Kind mismatches drop the series, like Prometheus
                    // evaluating rate() over a gauge: no match, no error.
                    _ => continue,
                }
            }
            Ok(Val::Vector(out))
        }
        Expr::HistQuantile { q, sel, window } => {
            let mut out = Vec::new();
            for sd in &ctx.series {
                if !sel_matches(sel, &sd.base, &sd.labels) || sd.kind != SeriesKind::Histogram {
                    continue;
                }
                let d = sd.ensure(ctx);
                let pts = &d.0;
                let merged = match window {
                    Some(w) => {
                        let (lo, hi) = window_indices(pts, t.checked_sub(*w), t);
                        if lo >= hi {
                            continue;
                        }
                        downsample(SeriesKind::Histogram, &pts[lo..hi])
                    }
                    None => {
                        let (_, hi) = window_indices(pts, None, t);
                        if hi == 0 || t.saturating_sub(pts[hi - 1].t) >= ctx.lookback {
                            continue;
                        }
                        Some(pts[hi - 1].value.clone())
                    }
                };
                let Some(PointValue::Histogram(state)) = merged else {
                    continue;
                };
                if state.count == 0 {
                    continue;
                }
                let v = Histogram::from_state(&state).quantile(*q) as f64;
                out.push(VSample {
                    name: String::new(),
                    labels: sd.labels.clone(),
                    v,
                });
            }
            Ok(Val::Vector(out))
        }
        Expr::Agg { op, grouping, arg } => {
            let Val::Vector(samples) = eval(arg, ctx, t)? else {
                return Err(format!(
                    "{}() needs a vector argument, got a scalar",
                    op.name()
                ));
            };
            let mut groups: std::collections::BTreeMap<Vec<(String, String)>, Vec<f64>> =
                std::collections::BTreeMap::new();
            for s in samples {
                let key: Vec<(String, String)> = match grouping {
                    None => Vec::new(),
                    Some(g) if g.without => s
                        .labels
                        .iter()
                        .filter(|(k, _)| !g.labels.contains(k))
                        .cloned()
                        .collect(),
                    Some(g) => s
                        .labels
                        .iter()
                        .filter(|(k, _)| g.labels.contains(k))
                        .cloned()
                        .collect(),
                };
                groups.entry(key).or_default().push(s.v);
            }
            let out = groups
                .into_iter()
                .map(|(labels, vs)| {
                    let v = match op {
                        AggOp::Sum => vs.iter().sum(),
                        AggOp::Avg => vs.iter().sum::<f64>() / vs.len() as f64,
                        AggOp::Min => vs.iter().cloned().fold(f64::INFINITY, f64::min),
                        AggOp::Max => vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                        AggOp::Count => vs.len() as f64,
                    };
                    VSample {
                        name: String::new(),
                        labels,
                        v,
                    }
                })
                .collect();
            Ok(Val::Vector(out))
        }
        Expr::Bin { op, lhs, rhs } => {
            let l = eval(lhs, ctx, t)?;
            let r = eval(rhs, ctx, t)?;
            match (l, r) {
                (Val::Scalar(a), Val::Scalar(b)) => Ok(Val::Scalar(if op.is_comparison() {
                    if scalar_cmp(*op, a, b) {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    scalar_arith(*op, a, b)
                })),
                (Val::Vector(v), Val::Scalar(s)) => Ok(Val::Vector(apply_vs(*op, v, s, false))),
                (Val::Scalar(s), Val::Vector(v)) => Ok(Val::Vector(apply_vs(*op, v, s, true))),
                (Val::Vector(_), Val::Vector(_)) => {
                    Err("vector-to-vector binary operations are not in the supported subset".into())
                }
            }
        }
    }
}

fn scalar_arith(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => f64::NAN,
    }
}

fn scalar_cmp(op: BinOp, a: f64, b: f64) -> bool {
    match op {
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        BinOp::Gt => a > b,
        BinOp::Lt => a < b,
        BinOp::Ge => a >= b,
        BinOp::Le => a <= b,
        _ => false,
    }
}

/// Vector-scalar operation. `flipped` means the scalar was the left
/// operand. Comparisons filter the vector (keeping names); arithmetic
/// maps values and drops metric names, like Prometheus.
fn apply_vs(op: BinOp, v: Vec<VSample>, s: f64, flipped: bool) -> Vec<VSample> {
    if op.is_comparison() {
        v.into_iter()
            .filter(|sample| {
                let (a, b) = if flipped {
                    (s, sample.v)
                } else {
                    (sample.v, s)
                };
                scalar_cmp(op, a, b)
            })
            .collect()
    } else {
        v.into_iter()
            .map(|mut sample| {
                let (a, b) = if flipped {
                    (s, sample.v)
                } else {
                    (sample.v, s)
                };
                sample.v = scalar_arith(op, a, b);
                sample.name = String::new();
                sample
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Results and rendering
// ---------------------------------------------------------------------

/// One instant-vector element.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (empty once a function or aggregation dropped it).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Evaluation timestamp (Unix seconds).
    pub t: u64,
    /// The value.
    pub v: f64,
}

/// One matrix row: a labelled series of `(t, value)` step results.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSeries {
    /// Metric name (empty once a function or aggregation dropped it).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Step results, oldest first.
    pub values: Vec<(u64, f64)>,
}

/// What a query evaluated to.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A scalar expression.
    Scalar {
        /// Evaluation timestamp.
        t: u64,
        /// The value.
        v: f64,
    },
    /// An instant vector.
    Vector(Vec<Sample>),
    /// A range evaluation.
    Matrix(Vec<MatrixSeries>),
}

/// Evaluation work counters, carried on every [`QueryOutcome`] and
/// rendered into the API body only when the request asks (`stats=`) —
/// the default response bytes stay pinned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Series matched by the query's selectors.
    pub series: u64,
    /// Points materialized or stream-decoded.
    pub points_scanned: u64,
    /// Window evaluations answered by [`SeriesSource::fold_range`].
    pub pushdown_evals: u64,
    /// Sealed segments folded from header stats alone (no decode).
    pub segments_folded: u64,
}

/// A query result plus any per-shard warnings gathered on the way.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The evaluated result.
    pub result: QueryResult,
    /// Warnings (unreadable shard stores, shards without stores).
    pub warnings: Vec<String>,
    /// How much work the evaluation did.
    pub stats: QueryStats,
}

/// Prometheus-style sample value formatting: integers bare, floats in
/// Rust's shortest round-trip form, infinities as `+Inf`/`-Inf`.
pub fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned()
    } else if v == v.trunc() && v.abs() < 9_007_199_254_740_992.0 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn write_metric_object(out: &mut String, name: &str, labels: &[(String, String)]) {
    out.push('{');
    let mut first = true;
    if !name.is_empty() {
        let _ = write!(out, "\"__name__\":{}", json_escape(name));
        first = false;
    }
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{}", json_escape(k), json_escape(v));
    }
    out.push('}');
}

impl QueryOutcome {
    /// Renders the Prometheus HTTP API response body:
    /// `{"status":"success","data":{"resultType":...,"result":...}}`,
    /// with a `"warnings"` array when any shard degraded.
    pub fn to_api_json(&self) -> String {
        self.to_api_json_with(false)
    }

    /// [`QueryOutcome::to_api_json`], optionally appending the
    /// evaluation's [`QueryStats`] as a `"stats"` object inside
    /// `"data"`. Off by default so existing response bytes stay
    /// unchanged.
    pub fn to_api_json_with(&self, include_stats: bool) -> String {
        let mut out = String::from("{\"status\":\"success\",\"data\":{\"resultType\":");
        match &self.result {
            QueryResult::Scalar { t, v } => {
                let _ = write!(
                    out,
                    "\"scalar\",\"result\":[{},{}]",
                    t,
                    json_escape(&fmt_value(*v))
                );
            }
            QueryResult::Vector(samples) => {
                out.push_str("\"vector\",\"result\":[");
                for (i, s) in samples.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"metric\":");
                    write_metric_object(&mut out, &s.name, &s.labels);
                    let _ = write!(
                        out,
                        ",\"value\":[{},{}]}}",
                        s.t,
                        json_escape(&fmt_value(s.v))
                    );
                }
                out.push(']');
            }
            QueryResult::Matrix(series) => {
                out.push_str("\"matrix\",\"result\":[");
                for (i, row) in series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"metric\":");
                    write_metric_object(&mut out, &row.name, &row.labels);
                    out.push_str(",\"values\":[");
                    for (j, (t, v)) in row.values.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{},{}]", t, json_escape(&fmt_value(*v)));
                    }
                    out.push_str("]}");
                }
                out.push(']');
            }
        }
        if include_stats {
            let s = &self.stats;
            let _ = write!(
                out,
                ",\"stats\":{{\"series\":{},\"pointsScanned\":{},\"pushdownEvals\":{},\"segmentsFolded\":{}}}",
                s.series, s.points_scanned, s.pushdown_evals, s.segments_folded
            );
        }
        out.push('}');
        if !self.warnings.is_empty() {
            out.push_str(",\"warnings\":[");
            for (i, w) in self.warnings.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_escape(w));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// The Prometheus HTTP API error body (`status: error`).
pub fn query_error_json(msg: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"errorType\":\"bad_data\",\"error\":{}}}",
        json_escape(msg)
    )
}

fn bad_request(msg: &str) -> HttpResponse {
    HttpResponse::json(400, format!("{}\n", query_error_json(msg)))
}

/// Serves `GET /api/v1/query` (`range = false`) or
/// `GET /api/v1/query_range` (`range = true`) over `engine`.
///
/// Instant parameters: `query` (required), `time` (Unix seconds;
/// defaults to the newest stored point, else `now_unix`), `step`
/// (optional data resolution, `1s`/`1m`/`1h`). Range parameters:
/// `query`, `start`, `end` (Unix seconds), `step` (seconds or a
/// duration like `1m`); the step picks the data resolution. Malformed
/// parameters and evaluation errors answer 400 with a Prometheus-style
/// error body; degraded shards surface as `warnings` on a 200.
pub fn api_query_response(
    engine: &QueryEngine,
    req: &HttpRequest,
    range: bool,
    now_unix: u64,
) -> HttpResponse {
    match api_query_outcome(engine, req, range, now_unix) {
        Ok(o) => HttpResponse::json(200, format!("{}\n", o.to_api_json_with(wants_stats(req)))),
        Err(resp) => resp,
    }
}

/// Whether the request opted into the `"stats"` object
/// (`stats=` anything but `false`/empty, Prometheus-style `stats=all`).
pub fn wants_stats(req: &HttpRequest) -> bool {
    req.query_param("stats")
        .is_some_and(|s| !s.is_empty() && s != "false" && s != "0")
}

/// The evaluation half of [`api_query_response`]: parses the request and
/// evaluates it, returning the raw [`QueryOutcome`] so callers can graft
/// extra warnings on (e.g. the live plane's slow-query annotation)
/// before rendering, or a ready-made error response.
pub fn api_query_outcome(
    engine: &QueryEngine,
    req: &HttpRequest,
    range: bool,
    now_unix: u64,
) -> Result<QueryOutcome, HttpResponse> {
    let Some(query) = req.query_param("query") else {
        return Err(bad_request("missing query= parameter"));
    };
    let outcome = if range {
        let parse_t = |key: &str| -> Result<u64, HttpResponse> {
            match req.query_param(key) {
                Some(s) => s
                    .parse()
                    .map_err(|_| bad_request(&format!("{key}= must be Unix seconds (got {s:?})"))),
                None => Err(bad_request(&format!("missing {key}= parameter"))),
            }
        };
        let (start, end) = match (parse_t("start"), parse_t("end")) {
            (Ok(s), Ok(e)) => (s, e),
            (Err(resp), _) | (_, Err(resp)) => return Err(resp),
        };
        let step = match req.query_param("step") {
            Some(s) => match parse_duration(&s) {
                Some(d) if d > 0 => d,
                _ => {
                    return Err(bad_request(&format!(
                        "step= must be a positive duration (got {s:?})"
                    )))
                }
            },
            None => return Err(bad_request("missing step= parameter")),
        };
        engine.range(&query, start, end, step)
    } else {
        let t = match req.query_param("time") {
            Some(s) => match s.parse() {
                Ok(t) => t,
                Err(_) => {
                    return Err(bad_request(&format!(
                        "time= must be Unix seconds (got {s:?})"
                    )))
                }
            },
            None => engine.newest_t().unwrap_or(now_unix),
        };
        let res = match req.query_param("step") {
            Some(s) => match Resolution::parse(&s) {
                Some(r) => r,
                None => {
                    return Err(bad_request(&format!(
                        "step= must be 1s, 1m, or 1h (got {s:?})"
                    )))
                }
            },
            None => Resolution::Raw1s,
        };
        engine.instant(&query, t, res)
    };
    outcome.map_err(|e| bad_request(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    /// A fixed in-memory source for engine tests.
    struct VecSource {
        series: Vec<(String, SeriesKind, Vec<Point>)>,
    }

    impl SeriesSource for VecSource {
        fn series(&self) -> Result<Vec<PromSeries>, String> {
            Ok(self
                .series
                .iter()
                .map(|(name, kind, pts)| {
                    let (base, labels) = parse_series_name(name);
                    let pts = pts.clone();
                    PromSeries {
                        key: name.clone(),
                        base,
                        labels,
                        kind: *kind,
                        fetch: Arc::new(move |_res, start, end| {
                            pts.iter()
                                .filter(|p| p.t >= start && p.t <= end)
                                .cloned()
                                .collect()
                        }),
                    }
                })
                .collect())
        }
    }

    struct FailingSource;

    impl SeriesSource for FailingSource {
        fn series(&self) -> Result<Vec<PromSeries>, String> {
            Err("store unreadable".into())
        }
    }

    fn counter_pts(deltas: &[(u64, u64)]) -> Vec<Point> {
        deltas
            .iter()
            .map(|&(t, v)| Point {
                t,
                value: PointValue::Counter(v),
            })
            .collect()
    }

    fn gauge_pts(vals: &[(u64, i64)]) -> Vec<Point> {
        vals.iter()
            .map(|&(t, v)| Point {
                t,
                value: PointValue::Gauge(v),
            })
            .collect()
    }

    fn engine_with(series: Vec<(String, SeriesKind, Vec<Point>)>) -> QueryEngine {
        QueryEngine::new().with_source(None, Arc::new(VecSource { series }))
    }

    fn vector_of(outcome: &QueryOutcome) -> &[Sample] {
        match &outcome.result {
            QueryResult::Vector(v) => v,
            other => panic!("expected vector, got {other:?}"),
        }
    }

    #[test]
    fn parses_durations() {
        assert_eq!(parse_duration("90"), Some(90));
        assert_eq!(parse_duration("90s"), Some(90));
        assert_eq!(parse_duration("15m"), Some(900));
        assert_eq!(parse_duration("2h"), Some(7200));
        assert_eq!(parse_duration("1d"), Some(86_400));
        assert_eq!(parse_duration(""), None);
        assert_eq!(parse_duration("5x"), None);
        assert_eq!(parse_duration("m"), None);
    }

    #[test]
    fn parses_labelled_series_names() {
        let (base, labels) = parse_series_name("netqos_path_used_bps{path=\"alpha\"}");
        assert_eq!(base, "netqos_path_used_bps");
        assert_eq!(labels, vec![("path".to_owned(), "alpha".to_owned())]);

        let (base, labels) = parse_series_name("plain_name");
        assert_eq!(base, "plain_name");
        assert!(labels.is_empty());

        // Escaped quote in the value.
        let (_, labels) = parse_series_name("m{a=\"x\\\"y\"}");
        assert_eq!(labels[0].1, "x\"y");
    }

    #[test]
    fn parse_errors_are_reported() {
        let eng = engine_with(Vec::new());
        for (q, needle) in [
            ("", "empty query"),
            ("rate(x)", "range"),
            ("sum(", "unexpected end"),
            ("x[5m]", "only valid as arguments"),
            ("x{a=}", "quoted pattern"),
            ("x ?? y", "unexpected character"),
            ("rate(x[0s])", "positive"),
            ("histogram_quantile(x, y)", "numeric quantile"),
        ] {
            let err = eng.instant(q, 100, Resolution::Raw1s).unwrap_err();
            assert!(err.contains(needle), "{q}: {err}");
        }
    }

    #[test]
    fn instant_counter_is_running_total_and_gauge_is_last() {
        let eng = engine_with(vec![
            (
                "reqs_total".into(),
                SeriesKind::Counter,
                counter_pts(&[(10, 5), (11, 7), (12, 1)]),
            ),
            (
                "temp".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 3), (12, 9)]),
            ),
        ]);
        let out = eng.instant("reqs_total", 11, Resolution::Raw1s).unwrap();
        assert_eq!(vector_of(&out)[0].v, 12.0);
        let out = eng.instant("temp", 12, Resolution::Raw1s).unwrap();
        assert_eq!(vector_of(&out)[0].v, 9.0);
        // Stale series (beyond lookback) drop out.
        let out = eng.instant("temp", 12 + 400, Resolution::Raw1s).unwrap();
        assert!(vector_of(&out).is_empty());
    }

    #[test]
    fn rate_and_increase_sum_window_deltas() {
        let eng = engine_with(vec![(
            "reqs_total".into(),
            SeriesKind::Counter,
            counter_pts(&[(10, 5), (20, 7), (30, 9)]),
        )]);
        // Window (10, 30]: deltas 7 + 9.
        let out = eng
            .instant("increase(reqs_total[20])", 30, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].v, 16.0);
        let out = eng
            .instant("rate(reqs_total[20])", 30, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].v, 0.8);
        // The metric name is dropped by rate().
        assert_eq!(vector_of(&out)[0].name, "");
        // Empty window: no sample.
        let out = eng
            .instant("rate(reqs_total[5])", 9, Resolution::Raw1s)
            .unwrap();
        assert!(vector_of(&out).is_empty());
    }

    #[test]
    fn delta_needs_two_gauge_points() {
        let eng = engine_with(vec![(
            "temp".into(),
            SeriesKind::Gauge,
            gauge_pts(&[(10, 3), (20, 9), (30, 4)]),
        )]);
        let out = eng
            .instant("delta(temp[15])", 30, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].v, -5.0); // 4 - 9 over (15, 30]
        let out = eng
            .instant("delta(temp[5])", 30, Resolution::Raw1s)
            .unwrap();
        assert!(vector_of(&out).is_empty());
    }

    #[test]
    fn histogram_quantile_merges_window_states() {
        let h1 = Histogram::new();
        for _ in 0..100 {
            h1.record(100);
        }
        let h2 = Histogram::new();
        for _ in 0..100 {
            h2.record(10_000);
        }
        let eng = engine_with(vec![(
            "lat_ns".into(),
            SeriesKind::Histogram,
            vec![
                Point {
                    t: 10,
                    value: PointValue::Histogram(h1.to_state()),
                },
                Point {
                    t: 20,
                    value: PointValue::Histogram(h2.to_state()),
                },
            ],
        )]);
        // Merged window: half the samples at ~100, half at ~10000.
        let out = eng
            .instant(
                "histogram_quantile(0.25, lat_ns[20])",
                20,
                Resolution::Raw1s,
            )
            .unwrap();
        let v = vector_of(&out)[0].v;
        assert!((90.0..=110.0).contains(&v), "{v}");
        let out = eng
            .instant(
                "histogram_quantile(0.99, lat_ns[20])",
                20,
                Resolution::Raw1s,
            )
            .unwrap();
        let v = vector_of(&out)[0].v;
        assert!((9_000.0..=11_000.0).contains(&v), "{v}");
        // Without a window: newest state only.
        let out = eng
            .instant("histogram_quantile(0.5, lat_ns)", 20, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out)[0].v;
        assert!((9_000.0..=11_000.0).contains(&v), "{v}");
        // A bare histogram selector yields nothing (not an error).
        let out = eng.instant("lat_ns", 20, Resolution::Raw1s).unwrap();
        assert!(vector_of(&out).is_empty());
    }

    #[test]
    fn aggregation_by_and_without() {
        let eng = engine_with(vec![
            (
                "used{path=\"a\",shard=\"s1\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 1)]),
            ),
            (
                "used{path=\"a\",shard=\"s2\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 2)]),
            ),
            (
                "used{path=\"b\",shard=\"s1\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 10)]),
            ),
        ]);
        let out = eng
            .instant("sum by (path) (used)", 10, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].labels, vec![("path".to_owned(), "a".to_owned())]);
        assert_eq!(v[0].v, 3.0);
        assert_eq!(v[1].v, 10.0);

        let out = eng
            .instant("sum without (shard) (used)", 10, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].v, 3.0);

        // Suffix grouping form, and the plain all-collapse.
        let out = eng
            .instant("max(used) by (shard)", 10, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].v, 10.0); // shard s1: max(1, 10)
        let out = eng.instant("count(used)", 10, Resolution::Raw1s).unwrap();
        assert_eq!(vector_of(&out)[0].v, 3.0);
        let out = eng.instant("avg(used)", 10, Resolution::Raw1s).unwrap();
        assert!((vector_of(&out)[0].v - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn label_matchers_and_wildcards() {
        let eng = engine_with(vec![
            (
                "used{path=\"alpha\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 1)]),
            ),
            (
                "used{path=\"beta\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 2)]),
            ),
            ("other".into(), SeriesKind::Gauge, gauge_pts(&[(10, 3)])),
        ]);
        let out = eng
            .instant("used{path=\"alpha\"}", 10, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out).len(), 1);
        let out = eng
            .instant("used{path=~\"*a\"}", 10, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out).len(), 2);
        let out = eng
            .instant("used{path!=\"alpha\"}", 10, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].labels[0].1, "beta");
        let out = eng
            .instant("{__name__=~\"use*\"}", 10, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out).len(), 2);
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let eng = engine_with(vec![
            ("a".into(), SeriesKind::Gauge, gauge_pts(&[(10, 4)])),
            ("b".into(), SeriesKind::Gauge, gauge_pts(&[(10, 10)])),
        ]);
        let out = eng.instant("a * 8", 10, Resolution::Raw1s).unwrap();
        assert_eq!(vector_of(&out)[0].v, 32.0);
        assert_eq!(vector_of(&out)[0].name, ""); // arithmetic drops names
        let out = eng
            .instant("{__name__=~\"*\"} > 5", 10, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "b"); // comparison keeps names
        let out = eng.instant("(1 + 2) * 3", 10, Resolution::Raw1s).unwrap();
        assert_eq!(out.result, QueryResult::Scalar { t: 10, v: 9.0 });
        let out = eng.instant("2 > 1", 10, Resolution::Raw1s).unwrap();
        assert_eq!(out.result, QueryResult::Scalar { t: 10, v: 1.0 });
        // Scalar on the left filters the vector side too.
        let out = eng
            .instant("5 > {__name__=~\"*\"}", 10, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].name, "a");
        let err = eng.instant("a + b", 10, Resolution::Raw1s).unwrap_err();
        assert!(err.contains("vector-to-vector"), "{err}");
    }

    #[test]
    fn shard_labels_merge_sources_and_failures_warn() {
        let s1 = VecSource {
            series: vec![(
                "used{path=\"a\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 1)]),
            )],
        };
        let s2 = VecSource {
            series: vec![(
                "used{path=\"a\"}".into(),
                SeriesKind::Gauge,
                gauge_pts(&[(10, 5)]),
            )],
        };
        let mut eng = QueryEngine::new();
        eng.push_source(Some("east"), Arc::new(s1));
        eng.push_source(Some("west"), Arc::new(s2));
        eng.push_source(Some("south"), Arc::new(FailingSource));

        let out = eng.instant("used", 10, Resolution::Raw1s).unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 2);
        assert!(v[0]
            .labels
            .contains(&("shard".to_owned(), "east".to_owned())));
        assert!(v[1]
            .labels
            .contains(&("shard".to_owned(), "west".to_owned())));
        assert_eq!(out.warnings, vec!["shard south: store unreadable"]);

        // Cross-shard aggregation folds the shard label away.
        let out = eng
            .instant("sum by (path) (used)", 10, Resolution::Raw1s)
            .unwrap();
        let v = vector_of(&out);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].v, 6.0);
        assert_eq!(v[0].labels, vec![("path".to_owned(), "a".to_owned())]);
    }

    #[test]
    fn range_query_builds_sorted_matrix() {
        let eng = engine_with(vec![(
            "reqs_total".into(),
            SeriesKind::Counter,
            counter_pts(&[(10, 2), (11, 2), (12, 2), (13, 2)]),
        )]);
        let out = eng.range("increase(reqs_total[2])", 11, 13, 1).unwrap();
        let QueryResult::Matrix(rows) = &out.result else {
            panic!("expected matrix");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values, vec![(11, 4.0), (12, 4.0), (13, 4.0)]);

        // Scalar expressions become a constant anonymous series.
        let out = eng.range("4 / 2", 10, 12, 1).unwrap();
        let QueryResult::Matrix(rows) = &out.result else {
            panic!("expected matrix");
        };
        assert_eq!(rows[0].values, vec![(10, 2.0), (11, 2.0), (12, 2.0)]);

        assert!(eng.range("1", 10, 5, 1).is_err());
        assert!(eng.range("1", 0, 10, 0).is_err());
        assert!(eng.range("1", 0, 100_000, 1).is_err());
    }

    #[test]
    fn api_json_shapes_are_stable() {
        let eng = engine_with(vec![(
            "used{path=\"a\"}".into(),
            SeriesKind::Gauge,
            gauge_pts(&[(10, 3)]),
        )]);
        let out = eng.instant("used", 10, Resolution::Raw1s).unwrap();
        assert_eq!(
            out.to_api_json(),
            "{\"status\":\"success\",\"data\":{\"resultType\":\"vector\",\"result\":[{\"metric\":{\"__name__\":\"used\",\"path\":\"a\"},\"value\":[10,\"3\"]}]}}"
        );
        let out = eng.range("used", 10, 11, 1).unwrap();
        assert_eq!(
            out.to_api_json(),
            "{\"status\":\"success\",\"data\":{\"resultType\":\"matrix\",\"result\":[{\"metric\":{\"__name__\":\"used\",\"path\":\"a\"},\"values\":[[10,\"3\"],[11,\"3\"]]}]}}"
        );
        let out = eng.instant("1.5", 7, Resolution::Raw1s).unwrap();
        assert_eq!(
            out.to_api_json(),
            "{\"status\":\"success\",\"data\":{\"resultType\":\"scalar\",\"result\":[7,\"1.5\"]}}"
        );
        assert_eq!(
            query_error_json("nope"),
            "{\"status\":\"error\",\"errorType\":\"bad_data\",\"error\":\"nope\"}"
        );
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(-4.0), "-4");
        assert_eq!(fmt_value(0.8), "0.8");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn registry_source_serves_instant_values() {
        let reg = Registry::new();
        reg.counter("reqs_total").add(41);
        reg.gauge("depth{q=\"fast\"}").set(17);
        reg.histogram("lat_ns").record(1000);
        let eng = QueryEngine::new().with_source(None, Arc::new(RegistrySource::new(reg)));
        let out = eng.instant("reqs_total", 100, Resolution::Raw1s).unwrap();
        assert_eq!(vector_of(&out)[0].v, 41.0);
        let out = eng
            .instant("depth{q=\"fast\"}", 100, Resolution::Raw1s)
            .unwrap();
        assert_eq!(vector_of(&out)[0].v, 17.0);
        let out = eng
            .instant("histogram_quantile(0.5, lat_ns)", 100, Resolution::Raw1s)
            .unwrap();
        assert!(vector_of(&out)[0].v > 0.0);
    }

    #[test]
    fn check_query_lints_without_evaluating() {
        assert!(check_query("rate(reqs_total[5m])").is_ok());
        assert!(check_query("sum(a) / sum(b)").is_ok());
        assert!(check_query("rate(").is_err());
        assert!(check_query("").is_err());
    }

    fn store_backed_engine(tag: &str) -> (std::path::PathBuf, QueryEngine, Vec<Point>) {
        use crate::lts::{LtsConfig, LtsCounters, LtsStore, SegmentCodec};
        let dir = std::env::temp_dir().join(format!("netqos-promql-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = LtsConfig {
            codec: SegmentCodec::Binary,
            seal_points: 64,
            ..LtsConfig::default()
        };
        let mut store = LtsStore::open(&dir, config, LtsCounters::detached()).unwrap();
        let mut pts = Vec::new();
        for t in 0..300u64 {
            store.append("c_total", t, PointValue::Counter(t % 5));
            pts.push(Point {
                t,
                value: PointValue::Counter(t % 5),
            });
            if t % 70 == 69 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        let eng =
            QueryEngine::new().with_source(None, Arc::new(LtsSource::new(LtsReader::open(&dir))));
        (dir, eng, pts)
    }

    #[test]
    fn pushdown_matches_materialized_evaluation() {
        let (dir, eng, pts) = store_backed_engine("pushdown");
        // The same data behind a source with no fold path: every
        // evaluation takes the general, materializing path.
        let slow = QueryEngine::new().with_source(
            None,
            Arc::new(VecSource {
                series: vec![("c_total".into(), SeriesKind::Counter, pts)],
            }),
        );
        for query in [
            "c_total",
            "rate(c_total[100s])",
            "rate(c_total[299s])",
            "increase(c_total[250s])",
            "sum(rate(c_total[200s]))",
        ] {
            let fast = eng.instant(query, 299, Resolution::Raw1s).unwrap();
            let general = slow.instant(query, 299, Resolution::Raw1s).unwrap();
            assert_eq!(
                vector_of(&fast)
                    .iter()
                    .map(|s| (s.name.clone(), s.v))
                    .collect::<Vec<_>>(),
                vector_of(&general)
                    .iter()
                    .map(|s| (s.name.clone(), s.v))
                    .collect::<Vec<_>>(),
                "{query}"
            );
            assert!(fast.stats.pushdown_evals > 0, "{query}: {:?}", fast.stats);
            assert_eq!(general.stats.pushdown_evals, 0);
            assert!(general.stats.points_scanned > 0);
        }
        // Sealed segments fully inside the window fold from header
        // stats, so the fast path touches far fewer points.
        let fast = eng
            .instant("rate(c_total[299s])", 299, Resolution::Raw1s)
            .unwrap();
        assert!(fast.stats.segments_folded > 0, "{:?}", fast.stats);
        assert!(fast.stats.points_scanned < 300, "{:?}", fast.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_queries_materialize_once_not_per_step() {
        let (dir, eng, _) = store_backed_engine("range-stats");
        let out = eng.range("rate(c_total[60s])", 100, 280, 10).unwrap();
        assert!(matches!(out.result, QueryResult::Matrix(_)));
        // No fold on the range path; the per-series fetch happens once.
        assert_eq!(out.stats.pushdown_evals, 0);
        assert_eq!(out.stats.series, 1);
        assert!(out.stats.points_scanned <= 300, "{:?}", out.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_render_only_when_asked() {
        let (dir, eng, _) = store_backed_engine("stats-json");
        let out = eng.instant("c_total", 299, Resolution::Raw1s).unwrap();
        let plain = out.to_api_json();
        assert!(!plain.contains("\"stats\""));
        let with = out.to_api_json_with(true);
        assert!(with.contains("\"stats\":{\"series\":1,"), "{with}");
        assert!(with.contains("\"pushdownEvals\""), "{with}");
        // Identical payload otherwise: stripping the stats object from
        // the verbose form yields the plain form.
        let req = |q: &str| HttpRequest {
            method: "GET".into(),
            path: "/api/v1/query".into(),
            query: q.into(),
            accept: String::new(),
        };
        assert!(!wants_stats(&req("query=c_total")));
        assert!(!wants_stats(&req("query=c_total&stats=false")));
        assert!(!wants_stats(&req("query=c_total&stats=0")));
        assert!(wants_stats(&req("query=c_total&stats=true")));
        assert!(wants_stats(&req("query=c_total&stats=all")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
