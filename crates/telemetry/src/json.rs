//! A minimal recursive-descent JSON parser.
//!
//! The build environment vendors `serde` as an offline shim without a
//! `serde_json`, so the flight-recorder CLI (`netqos flight
//! dump|show|check`) and the trace-export tests parse their own output
//! with this self-contained reader. It accepts the JSON the telemetry
//! crate emits (objects, arrays, strings with escapes, numbers, bools,
//! null) and rejects trailing garbage.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved; keys are unique).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at an object key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 (rounded), when this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (rejecting trailing content).
pub fn parse_json(src: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates map to the replacement character;
                            // the telemetry emitters never produce them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn round_trips_event_jsonl_line() {
        // The EventSink output shape must stay parseable by this reader.
        let line = r#"{"t_s":1.042,"level":"info","target":"snmp.client","kind":"timeout","fields":{"agent":"10.0.0.7","attempt":2}}"#;
        let v = parse_json(line).unwrap();
        assert_eq!(v.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(
            v.get("fields").unwrap().get("attempt").unwrap().as_u64(),
            Some(2)
        );
    }
}
