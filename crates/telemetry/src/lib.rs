//! Self-telemetry for the netqos monitor — the monitor that monitors the
//! monitor.
//!
//! A [`Registry`] holds named [`Counter`]s, [`Gauge`]s, and streaming
//! [`Histogram`]s. Handles are `Arc`-backed and cheap to clone, so hot
//! paths fetch their handle once and record lock-free afterwards.
//! Three read paths come out of one registry:
//!
//! 1. [`Registry::render_prometheus`] — text exposition for scraping or
//!    snapshot files;
//! 2. [`Registry::snapshot`] — structured digests for the `netqos stats`
//!    CLI and tests;
//! 3. the monitor's self-monitoring SNMP sub-agent (see
//!    `netqos-monitor::selfagent`), which maps a snapshot into an
//!    enterprise OID subtree.
//!
//! Structured events ride alongside metrics through [`EventSink`]
//! (JSONL with per-target level filtering).
//!
//! Causal observability builds on the same crate: [`Tracer`] records a
//! span tree per poll cycle, [`FlightRecorder`] rings the last N cycles
//! for violation forensics (JSONL + Chrome `trace_event` export), and
//! [`QuantileBaseline`] ages streaming quantiles so samples can be
//! ranked against recent history.

mod alerts;
mod baseline;
mod events;
mod federation;
mod flight;
mod http;
mod json;
mod lts;
mod metrics;
mod otlp;
mod profile;
mod promql;
mod push;
mod record;
mod sample;
mod trace;

pub use alerts::{
    builtin_alert_rules, fingerprint, parse_alert_rules, transitions_to_json, ActiveAlert,
    AlertContext, AlertEngine, AlertRule, AlertScope, AlertSeverity, AlertState, AlertTransition,
    CmpOp, ResolvedAlert, WebhookNotifier,
};
pub use baseline::{
    baselines_from_json, baselines_to_json, load_baselines, save_baselines, BaselineState,
    QuantileBaseline, DEFAULT_WINDOW,
};
pub use events::{Event, EventSink, FieldValue, Level};
pub use federation::{Shard, ShardHealth, ShardRegistry};
pub use flight::{
    cycles_from_jsonl, enforce_retention, parsed_to_chrome_trace, to_chrome_trace, to_jsonl,
    validate_chrome_trace, write_snapshot, ChromeTraceStats, CycleTrace, FlightRecorder,
    ParsedCycle, ParsedSpan, RetentionPolicy, SampleAnnotation, SnapshotDeletion, SnapshotPaths,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use http::{http_get, EventSource, HttpRequest, HttpResponse, HttpRoute, HttpServer, Router};
pub use json::{parse_json, JsonError, JsonValue};
pub use lts::{
    compact_store, compact_store_to, decode_segment_v2, decode_segment_v2_header, downsample,
    encode_segment_v2, fold_series_range, hist_delta, json_escape, migrate_store, parse_range,
    report_flush, selector_matches, store_stats, verify_store, CompactReport, FlushReport,
    LtsConfig, LtsCounters, LtsReader, LtsRetention, LtsStore, MigrateReport, Point, PointValue,
    RangeFold, RegistrySampler, Resolution, ResolutionStat, RetentionDeletion, SegmentCodec,
    SegmentHeader, SegmentStat, SegmentStats, SeriesInfo, SeriesKind, StoreStats, VerifyReport,
};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramState, HistogramSummary, HistogramTimer, BUCKETS,
};
pub use otlp::{parsed_to_otlp, to_otlp, validate_otlp, OtlpStats, OTLP_SCOPE, OTLP_SERVICE};
pub use profile::{profile_response, ProfileHub, SpanView, DEFAULT_PROFILE_WINDOW};
pub use promql::{
    api_query_outcome, api_query_response, check_query, fmt_value, parse_duration,
    parse_series_name, query_error_json, resolution_for_step, wants_stats, LtsSource, MatrixSeries,
    PromSeries, QueryEngine, QueryOutcome, QueryResult, QueryStats, RegistrySource, Sample,
    SeriesSource, LOOKBACK_FLOOR_SECS, MAX_RANGE_STEPS,
};
pub use push::{
    parse_push_url, parse_webhook_url, OtlpPusher, PushConfig, PushCounters, PushTarget,
};
pub use record::{
    evaluate_record_rules, parse_record_rules, RecordReport, RecordRule, RecordingCounters,
};
pub use sample::{AdaptiveConfig, SampleConfig, SampleDecision, Sampler};
pub use trace::{SpanGuard, SpanId, SpanRecord, TraceId, Tracer};

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// A named collection of metrics. Lookup takes a lock; recording through
/// a returned handle does not.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

/// Point-in-time digest of a whole registry, sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(String, i64)>,
    /// Histogram digests.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Registry::default())
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    /// Convention: time histograms are nanoseconds and named `*_ns`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Digest of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Name/handle pairs of every counter, sorted by name. Handles are
    /// cheap clones sharing the live cells.
    pub fn counter_entries(&self) -> Vec<(String, Counter)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Name/handle pairs of every gauge, sorted by name.
    pub fn gauge_entries(&self) -> Vec<(String, Gauge)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Name/handle pairs of every histogram, sorted by name.
    pub fn histogram_entries(&self) -> Vec<(String, Histogram)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Folds another registry's metrics into this one by name: counter
    /// and gauge values are added, histogram buckets merged. The basis
    /// of shard federation — merging K shard registries preserves
    /// counter sums and histogram totals exactly.
    pub fn merge_from(&self, other: &Registry) {
        for (name, c) in other.counter_entries() {
            self.counter(&name).add(c.get());
        }
        for (name, g) in other.gauge_entries() {
            self.gauge(&name).add(g.get());
        }
        for (name, h) in other.histogram_entries() {
            self.histogram(&name).merge_from(&h);
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Histograms are exposed as native Prometheus histograms —
    /// cumulative `*_bucket{le="..."}` series over the log-bucketed
    /// boundaries plus `*_sum` and `*_count` — so Prometheus computes
    /// quantiles server-side; `*_min`/`*_max` ride along as untyped
    /// convenience series.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counter_entries() {
            let (base, series) = split_labeled_name(&name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{series} {}", c.get());
        }
        for (name, g) in self.gauge_entries() {
            let (base, series) = split_labeled_name(&name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let _ = writeln!(out, "{series} {}", g.get());
        }
        for (name, h) in self.histogram_entries() {
            let (base, series) = split_labeled_name(&name);
            let _ = writeln!(out, "# TYPE {base} histogram");
            render_histogram_into(&mut out, &base, None, embedded_labels(&base, &series), &h);
        }
        out
    }
}

/// Writes one histogram's Prometheus exposition lines (`_bucket`,
/// `_sum`, `_count`, `_min`, `_max`), optionally stamped with a
/// `shard="..."` label and/or the label body embedded in the registry
/// key (e.g. `phase="monitor.cycle"`). The `# TYPE` header is the
/// caller's, so federated output can group several label sets under
/// one family.
pub(crate) fn render_histogram_into(
    out: &mut String,
    name: &str,
    shard: Option<&str>,
    labels: &str,
    h: &Histogram,
) {
    let label = |extra: &str| -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = shard {
            parts.push(format!("shard=\"{}\"", escape_label_value(s)));
        }
        if !labels.is_empty() {
            parts.push(labels.to_string());
        }
        if !extra.is_empty() {
            parts.push(extra.to_string());
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    };
    let buckets = h.cumulative_buckets();
    let count = h.count();
    for &(le, cum) in &buckets {
        let _ = writeln!(out, "{name}_bucket{} {cum}", label(&format!("le=\"{le}\"")));
    }
    // `+Inf` must equal `_count`; concurrent recording can leave the
    // bucket walk a sample behind, so take the larger of the two.
    let total = count.max(buckets.last().map(|&(_, c)| c).unwrap_or(0));
    let _ = writeln!(out, "{name}_bucket{} {total}", label("le=\"+Inf\""));
    let _ = writeln!(out, "{name}_sum{} {}", label(""), h.sum());
    let _ = writeln!(out, "{name}_count{} {total}", label(""));
    let _ = writeln!(out, "{name}_min{} {}", label(""), h.min());
    let _ = writeln!(out, "{name}_max{} {}", label(""), h.max());
}

/// Escapes a Prometheus label value (backslash, quote, newline).
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splits a registry key that embeds a label set — e.g.
/// `netqos_build_info{version="0.1.0"}` — into `(base, series)`:
/// the sanitized base name for `# TYPE` headers and the full series
/// string for sample lines. Keys without a well-formed `{...}` suffix
/// are sanitized whole (both halves equal).
pub(crate) fn split_labeled_name(name: &str) -> (String, String) {
    if let (Some(open), true) = (name.find('{'), name.ends_with('}')) {
        let base = &name[..open];
        let labels = &name[open..];
        if !base.is_empty() && labels.len() > 2 {
            let base = sanitize_metric_name(base);
            return (base.clone(), format!("{base}{labels}"));
        }
    }
    let sanitized = sanitize_metric_name(name);
    (sanitized.clone(), sanitized)
}

/// The label body embedded in a `split_labeled_name` result —
/// `phase="monitor.cycle"` from `base{phase="monitor.cycle"}` — or `""`
/// for plain names.
pub(crate) fn embedded_labels<'a>(base: &str, series: &'a str) -> &'a str {
    if series.len() > base.len() {
        &series[base.len() + 1..series.len() - 1]
    } else {
        ""
    }
}

/// Replaces characters Prometheus forbids in metric names.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The process-wide registry. Library crates that have no natural place
/// to thread a registry through (light counters in sim/spec/topology)
/// record here; services with deterministic tests carry their own
/// `Arc<Registry>` instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("requests_total").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 4);

        let h = reg.histogram("rtt_ns");
        h.record(100);
        assert_eq!(reg.histogram("rtt_ns").count(), 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("netqos_polls_total").add(7);
        reg.gauge("netqos_queue_depth").set(3);
        let h = reg.histogram("netqos_tick_ns");
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE netqos_polls_total counter"));
        assert!(text.contains("netqos_polls_total 7"));
        assert!(text.contains("# TYPE netqos_queue_depth gauge"));
        assert!(text.contains("netqos_queue_depth 3"));
        assert!(text.contains("# TYPE netqos_tick_ns histogram"));
        assert!(text.contains("netqos_tick_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("netqos_tick_ns_count 5"));
        assert!(text.contains("netqos_tick_ns_sum 1100"));
    }

    #[test]
    fn histogram_exposition_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns");
        for v in [1u64, 1, 2, 500] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        // Exact sub-linear boundaries, cumulative counts, +Inf == count.
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"2\"} 3"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("lat_ns_sum 504"), "{text}");
        // Bucket `le` boundaries ascend down the rendering.
        let les: Vec<u64> = text
            .lines()
            .filter_map(|l| l.strip_prefix("lat_ns_bucket{le=\""))
            .filter_map(|l| l.split('"').next())
            .filter_map(|v| v.parse().ok())
            .collect();
        assert!(les.windows(2).all(|w| w[0] < w[1]), "{les:?}");
    }

    #[test]
    fn merge_from_adds_and_folds() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("polls").add(3);
        b.counter("polls").add(4);
        b.counter("only_b").inc();
        a.gauge("depth").set(2);
        b.gauge("depth").set(5);
        a.histogram("lat").record(10);
        b.histogram("lat").record(30);
        a.merge_from(&b);
        assert_eq!(a.counter("polls").get(), 7);
        assert_eq!(a.counter("only_b").get(), 1);
        assert_eq!(a.gauge("depth").get(), 7);
        assert_eq!(a.histogram("lat").count(), 2);
        assert_eq!(a.histogram("lat").sum(), 40);
    }

    #[test]
    fn sanitizes_bad_metric_names() {
        let reg = Registry::new();
        reg.counter("poll.rtt-total").inc();
        assert!(reg.render_prometheus().contains("poll_rtt_total 1"));
    }

    #[test]
    fn labeled_names_render_as_series_with_base_type() {
        let reg = Registry::new();
        reg.gauge("netqos_build_info{version=\"0.1.0\",profile=\"release\"}")
            .set(1);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE netqos_build_info gauge"), "{text}");
        assert!(
            text.contains("netqos_build_info{version=\"0.1.0\",profile=\"release\"} 1"),
            "{text}"
        );
        // A stray brace without the closing form is sanitized away.
        let (base, series) = split_labeled_name("weird{name");
        assert_eq!(base, "weird_name");
        assert_eq!(series, "weird_name");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = Registry::new();
        reg.counter("zzz").inc();
        reg.counter("aaa").inc();
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["aaa".to_string(), "zzz".to_string()]);
    }
}
