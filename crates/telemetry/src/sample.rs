//! Head/tail trace sampling so tracing can stay on in production.
//!
//! Tracing every cycle is fine in the simulator but unaffordable on a
//! real deployment polling hundreds of devices: the flight ring churns
//! and every violation snapshot is dominated by unremarkable cycles. A
//! [`Sampler`] makes the keep/drop decision per cycle from two rules:
//!
//! * **Head sampling** — keep every Nth cycle unconditionally, so a
//!   steady baseline of traces always exists (`head_every = 1` keeps
//!   everything, the pre-sampling behaviour).
//! * **Tail triggers** — always keep a cycle that turned out to be
//!   interesting *after the fact*: its wall-clock tick exceeded
//!   `slow_tick_ns`, a bandwidth sample ranked above `tail_rank`
//!   against its baseline, or a QoS event fired. Tail decisions
//!   override head drops, never the reverse — an interesting cycle is
//!   never lost to the modulus.
//!
//! The decision is made *after* the cycle's spans are recorded (tail
//! triggers need the cycle's outcome); sampling therefore saves ring
//! memory, snapshot bytes, and export volume rather than span-recording
//! cost, which is already ~9 ns/site.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a cycle was kept (or that it wasn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Kept by the head rate (cycle index ≡ 0 mod N).
    Head,
    /// Kept by a tail trigger, with the trigger's name
    /// (`"slow_tick"`, `"bandwidth_rank"`, `"qos_event"`).
    Tail(&'static str),
    /// Dropped.
    Drop,
}

impl SampleDecision {
    /// Whether the cycle is retained.
    pub fn keep(self) -> bool {
        !matches!(self, SampleDecision::Drop)
    }
}

/// Sampling thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Keep every Nth cycle (min 1 = keep all).
    pub head_every: u64,
    /// Tail trigger: keep any cycle whose tick took at least this many
    /// wall-clock nanoseconds (0 disables).
    pub slow_tick_ns: u64,
    /// Tail trigger: keep any cycle where a bandwidth sample's baseline
    /// rank reached this threshold (> 1.0 disables; ranks are in [0,1]).
    pub tail_rank: f64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            head_every: 1,
            slow_tick_ns: 0,
            tail_rank: 0.99,
        }
    }
}

impl SampleConfig {
    /// The pre-sampling behaviour: keep every cycle, no tail logic.
    pub fn keep_all() -> Self {
        SampleConfig {
            head_every: 1,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        }
    }
}

/// The per-service sampling state: a cycle counter plus decision
/// counters for telemetry. Thread-safe; decisions are made with relaxed
/// atomics only.
#[derive(Debug, Default)]
pub struct Sampler {
    config: SampleConfig,
    cycles_seen: AtomicU64,
    kept_head: AtomicU64,
    kept_tail: AtomicU64,
    dropped: AtomicU64,
}

impl Sampler {
    /// A sampler with the given thresholds.
    pub fn new(config: SampleConfig) -> Self {
        Sampler {
            config: SampleConfig {
                head_every: config.head_every.max(1),
                ..config
            },
            ..Sampler::default()
        }
    }

    /// The active thresholds.
    pub fn config(&self) -> SampleConfig {
        self.config
    }

    /// Decides one cycle's fate. `tick_ns` is the cycle's wall-clock
    /// duration, `max_rank` the highest baseline rank among its
    /// bandwidth samples (0.0 when none), `qos_event` whether any QoS
    /// violation/clear or baseline anomaly fired this cycle.
    ///
    /// The first cycle ever seen is always a head keep, so a freshly
    /// started monitor is never blind for its first N cycles.
    pub fn decide(&self, tick_ns: u64, max_rank: f64, qos_event: bool) -> SampleDecision {
        let index = self.cycles_seen.fetch_add(1, Ordering::Relaxed);
        let decision = if index.is_multiple_of(self.config.head_every) {
            SampleDecision::Head
        } else if qos_event {
            SampleDecision::Tail("qos_event")
        } else if self.config.slow_tick_ns > 0 && tick_ns >= self.config.slow_tick_ns {
            SampleDecision::Tail("slow_tick")
        } else if max_rank >= self.config.tail_rank {
            SampleDecision::Tail("bandwidth_rank")
        } else {
            SampleDecision::Drop
        };
        match decision {
            SampleDecision::Head => self.kept_head.fetch_add(1, Ordering::Relaxed),
            SampleDecision::Tail(_) => self.kept_tail.fetch_add(1, Ordering::Relaxed),
            SampleDecision::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        decision
    }

    /// Cycles decided so far.
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen.load(Ordering::Relaxed)
    }

    /// Cycles kept by the head rate.
    pub fn kept_head(&self) -> u64 {
        self.kept_head.load(Ordering::Relaxed)
    }

    /// Cycles kept by a tail trigger.
    pub fn kept_tail(&self) -> u64 {
        self.kept_tail.load(Ordering::Relaxed)
    }

    /// Cycles dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_default_keeps_everything() {
        let s = Sampler::new(SampleConfig::keep_all());
        for _ in 0..10 {
            assert!(s.decide(1_000, 0.5, false).keep());
        }
        assert_eq!(s.kept_head(), 10);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn head_rate_is_one_in_n() {
        let s = Sampler::new(SampleConfig {
            head_every: 5,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        let kept: Vec<bool> = (0..20).map(|_| s.decide(0, 0.0, false).keep()).collect();
        let expected: Vec<bool> = (0..20).map(|i| i % 5 == 0).collect();
        assert_eq!(kept, expected);
        assert_eq!(s.kept_head(), 4);
        assert_eq!(s.dropped(), 16);
    }

    #[test]
    fn tail_triggers_override_head_drops() {
        let s = Sampler::new(SampleConfig {
            head_every: 1_000_000,
            slow_tick_ns: 50_000,
            tail_rank: 0.99,
        });
        assert_eq!(s.decide(10, 0.0, false), SampleDecision::Head); // first cycle
        assert_eq!(s.decide(10, 0.0, false), SampleDecision::Drop);
        assert_eq!(
            s.decide(60_000, 0.0, false),
            SampleDecision::Tail("slow_tick")
        );
        assert_eq!(
            s.decide(10, 0.995, false),
            SampleDecision::Tail("bandwidth_rank")
        );
        assert_eq!(s.decide(10, 0.0, true), SampleDecision::Tail("qos_event"));
        assert_eq!(s.kept_tail(), 3);
    }

    #[test]
    fn zero_head_every_behaves_as_one() {
        let s = Sampler::new(SampleConfig {
            head_every: 0,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        for _ in 0..5 {
            assert!(s.decide(0, 0.0, false).keep());
        }
    }
}
