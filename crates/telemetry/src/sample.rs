//! Head/tail trace sampling so tracing can stay on in production.
//!
//! Tracing every cycle is fine in the simulator but unaffordable on a
//! real deployment polling hundreds of devices: the flight ring churns
//! and every violation snapshot is dominated by unremarkable cycles. A
//! [`Sampler`] makes the keep/drop decision per cycle from two rules:
//!
//! * **Head sampling** — keep every Nth cycle unconditionally, so a
//!   steady baseline of traces always exists (`head_every = 1` keeps
//!   everything, the pre-sampling behaviour).
//! * **Tail triggers** — always keep a cycle that turned out to be
//!   interesting *after the fact*: its wall-clock tick exceeded
//!   `slow_tick_ns`, a bandwidth sample ranked above `tail_rank`
//!   against its baseline, or a QoS event fired. Tail decisions
//!   override head drops, never the reverse — an interesting cycle is
//!   never lost to the modulus.
//!
//! The decision is made *after* the cycle's spans are recorded (tail
//! triggers need the cycle's outcome); sampling therefore saves ring
//! memory, snapshot bytes, and export volume rather than span-recording
//! cost, which is already ~9 ns/site.

use std::sync::atomic::{AtomicU64, Ordering};

/// Why a cycle was kept (or that it wasn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleDecision {
    /// Kept by the head rate (cycle index ≡ 0 mod N).
    Head,
    /// Kept by a tail trigger, with the trigger's name
    /// (`"slow_tick"`, `"bandwidth_rank"`, `"qos_event"`).
    Tail(&'static str),
    /// Dropped.
    Drop,
}

impl SampleDecision {
    /// Whether the cycle is retained.
    pub fn keep(self) -> bool {
        !matches!(self, SampleDecision::Drop)
    }
}

/// Sampling thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Keep every Nth cycle (min 1 = keep all).
    pub head_every: u64,
    /// Tail trigger: keep any cycle whose tick took at least this many
    /// wall-clock nanoseconds (0 disables).
    pub slow_tick_ns: u64,
    /// Tail trigger: keep any cycle where a bandwidth sample's baseline
    /// rank reached this threshold (> 1.0 disables; ranks are in [0,1]).
    pub tail_rank: f64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            head_every: 1,
            slow_tick_ns: 0,
            tail_rank: 0.99,
        }
    }
}

impl SampleConfig {
    /// The pre-sampling behaviour: keep every cycle, no tail logic.
    pub fn keep_all() -> Self {
        SampleConfig {
            head_every: 1,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        }
    }
}

/// Feedback policy for adapting the head rate to flight-ring pressure.
///
/// Every `window` cycles the sampler looks at the fraction it kept over
/// that window — a proxy for how fast the flight ring is churning. Above
/// `raise_above` the ring is turning over faster than forensics can use,
/// so `head_every` doubles (keep less); below `relax_below` the monitor
/// is idle and `head_every` halves back toward the configured base (keep
/// more). The rate never leaves `[base, max_head_every]`, and tail
/// triggers are untouched — an interesting cycle is still never lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Cycles between adjustments.
    pub window: u64,
    /// Keep-fraction above which `head_every` doubles.
    pub raise_above: f64,
    /// Keep-fraction below which `head_every` halves.
    pub relax_below: f64,
    /// Ceiling on `head_every` (the floor is the configured base rate).
    pub max_head_every: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: 32,
            raise_above: 0.5,
            relax_below: 0.125,
            max_head_every: 1024,
        }
    }
}

/// The per-service sampling state: a cycle counter plus decision
/// counters for telemetry. Thread-safe; decisions are made with relaxed
/// atomics only. The head rate lives in an atomic so a feedback loop
/// ([`Sampler::adapt`]) can retune it while decisions are in flight.
#[derive(Debug, Default)]
pub struct Sampler {
    config: SampleConfig,
    head_every: AtomicU64,
    cycles_seen: AtomicU64,
    kept_head: AtomicU64,
    kept_tail: AtomicU64,
    dropped: AtomicU64,
    adapt_seen_mark: AtomicU64,
    adapt_kept_mark: AtomicU64,
}

impl Sampler {
    /// A sampler with the given thresholds.
    pub fn new(config: SampleConfig) -> Self {
        let config = SampleConfig {
            head_every: config.head_every.max(1),
            ..config
        };
        Sampler {
            config,
            head_every: AtomicU64::new(config.head_every),
            ..Sampler::default()
        }
    }

    /// The active thresholds (with the *current*, possibly adapted,
    /// head rate).
    pub fn config(&self) -> SampleConfig {
        SampleConfig {
            head_every: self.head_every(),
            ..self.config
        }
    }

    /// The current head rate (1 = keep every cycle).
    pub fn head_every(&self) -> u64 {
        self.head_every.load(Ordering::Relaxed)
    }

    /// Overrides the head rate (min 1). The configured base rate is the
    /// floor [`Sampler::adapt`] relaxes back to.
    pub fn set_head_every(&self, n: u64) {
        self.head_every.store(n.max(1), Ordering::Relaxed);
    }

    /// One feedback step: if at least `policy.window` cycles have been
    /// decided since the last step, retunes `head_every` from the keep
    /// fraction over that window and returns the new rate when it
    /// changed. Call it once per cycle — off-window calls are a single
    /// atomic load.
    pub fn adapt(&self, policy: &AdaptiveConfig) -> Option<u64> {
        let seen = self.cycles_seen();
        let mark = self.adapt_seen_mark.load(Ordering::Relaxed);
        if seen.saturating_sub(mark) < policy.window.max(1) {
            return None;
        }
        let kept = self.kept_head() + self.kept_tail();
        let kept_mark = self.adapt_kept_mark.swap(kept, Ordering::Relaxed);
        self.adapt_seen_mark.store(seen, Ordering::Relaxed);
        let window = seen.saturating_sub(mark);
        let frac = kept.saturating_sub(kept_mark) as f64 / window as f64;
        let cur = self.head_every();
        let next = if frac > policy.raise_above {
            (cur.saturating_mul(2)).min(policy.max_head_every.max(1))
        } else if frac < policy.relax_below {
            (cur / 2).max(self.config.head_every)
        } else {
            cur
        };
        if next != cur {
            self.head_every.store(next, Ordering::Relaxed);
            Some(next)
        } else {
            None
        }
    }

    /// Decides one cycle's fate. `tick_ns` is the cycle's wall-clock
    /// duration, `max_rank` the highest baseline rank among its
    /// bandwidth samples (0.0 when none), `qos_event` whether any QoS
    /// violation/clear or baseline anomaly fired this cycle.
    ///
    /// The first cycle ever seen is always a head keep, so a freshly
    /// started monitor is never blind for its first N cycles.
    pub fn decide(&self, tick_ns: u64, max_rank: f64, qos_event: bool) -> SampleDecision {
        let index = self.cycles_seen.fetch_add(1, Ordering::Relaxed);
        let decision = if index.is_multiple_of(self.head_every().max(1)) {
            SampleDecision::Head
        } else if qos_event {
            SampleDecision::Tail("qos_event")
        } else if self.config.slow_tick_ns > 0 && tick_ns >= self.config.slow_tick_ns {
            SampleDecision::Tail("slow_tick")
        } else if max_rank >= self.config.tail_rank {
            SampleDecision::Tail("bandwidth_rank")
        } else {
            SampleDecision::Drop
        };
        match decision {
            SampleDecision::Head => self.kept_head.fetch_add(1, Ordering::Relaxed),
            SampleDecision::Tail(_) => self.kept_tail.fetch_add(1, Ordering::Relaxed),
            SampleDecision::Drop => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        decision
    }

    /// Cycles decided so far.
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen.load(Ordering::Relaxed)
    }

    /// Cycles kept by the head rate.
    pub fn kept_head(&self) -> u64 {
        self.kept_head.load(Ordering::Relaxed)
    }

    /// Cycles kept by a tail trigger.
    pub fn kept_tail(&self) -> u64 {
        self.kept_tail.load(Ordering::Relaxed)
    }

    /// Cycles dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_all_default_keeps_everything() {
        let s = Sampler::new(SampleConfig::keep_all());
        for _ in 0..10 {
            assert!(s.decide(1_000, 0.5, false).keep());
        }
        assert_eq!(s.kept_head(), 10);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn head_rate_is_one_in_n() {
        let s = Sampler::new(SampleConfig {
            head_every: 5,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        let kept: Vec<bool> = (0..20).map(|_| s.decide(0, 0.0, false).keep()).collect();
        let expected: Vec<bool> = (0..20).map(|i| i % 5 == 0).collect();
        assert_eq!(kept, expected);
        assert_eq!(s.kept_head(), 4);
        assert_eq!(s.dropped(), 16);
    }

    #[test]
    fn tail_triggers_override_head_drops() {
        let s = Sampler::new(SampleConfig {
            head_every: 1_000_000,
            slow_tick_ns: 50_000,
            tail_rank: 0.99,
        });
        assert_eq!(s.decide(10, 0.0, false), SampleDecision::Head); // first cycle
        assert_eq!(s.decide(10, 0.0, false), SampleDecision::Drop);
        assert_eq!(
            s.decide(60_000, 0.0, false),
            SampleDecision::Tail("slow_tick")
        );
        assert_eq!(
            s.decide(10, 0.995, false),
            SampleDecision::Tail("bandwidth_rank")
        );
        assert_eq!(s.decide(10, 0.0, true), SampleDecision::Tail("qos_event"));
        assert_eq!(s.kept_tail(), 3);
    }

    #[test]
    fn adapt_raises_under_pressure_and_relaxes_when_idle() {
        let s = Sampler::new(SampleConfig {
            head_every: 2,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        let policy = AdaptiveConfig {
            window: 8,
            raise_above: 0.4,
            relax_below: 0.125,
            max_head_every: 8,
        };
        // head_every=2 keeps half of every window: above raise_above,
        // so each full window doubles the rate until the ceiling.
        for _ in 0..8 {
            s.decide(0, 0.0, false);
        }
        assert_eq!(s.adapt(&policy), Some(4));
        assert_eq!(s.head_every(), 4);
        // Mid-window calls are no-ops.
        s.decide(0, 0.0, false);
        assert_eq!(s.adapt(&policy), None);
        // At 1-in-4 the keep fraction sits between the watermarks.
        for _ in 0..7 {
            s.decide(0, 0.0, false);
        }
        assert_eq!(s.adapt(&policy), None);
        assert_eq!(s.head_every(), 4);
        // Force pressure via tail keeps: every cycle kept → double to cap.
        for _ in 0..8 {
            s.decide(0, 0.0, true);
        }
        assert_eq!(s.adapt(&policy), Some(8));
        for _ in 0..8 {
            s.decide(0, 0.0, true);
        }
        assert_eq!(s.adapt(&policy), None, "already at max_head_every");
        // Idle again: 1-in-8 = 0.125 is not < 0.125... make it idle by
        // an empty-keep window (head keeps ≈ 1/8). Use a larger window
        // so the fraction drops below the watermark.
        let relax = AdaptiveConfig {
            window: 8,
            raise_above: 0.9,
            relax_below: 0.5,
            max_head_every: 8,
        };
        for _ in 0..8 {
            s.decide(0, 0.0, false);
        }
        assert_eq!(s.adapt(&relax), Some(4), "relaxes by halving");
        // Relaxation never goes below the configured base.
        for _ in 0..64 {
            for _ in 0..8 {
                s.decide(0, 0.0, false);
            }
            s.adapt(&relax);
        }
        assert_eq!(s.head_every(), 2, "floor is the base rate");
    }

    #[test]
    fn set_head_every_takes_effect_immediately() {
        let s = Sampler::new(SampleConfig::keep_all());
        s.decide(0, 0.0, false); // index 0: kept
        s.set_head_every(1000);
        assert!(!s.decide(0, 0.0, false).keep(), "index 1 of 1000");
        assert_eq!(s.config().head_every, 1000);
    }

    #[test]
    fn zero_head_every_behaves_as_one() {
        let s = Sampler::new(SampleConfig {
            head_every: 0,
            slow_tick_ns: 0,
            tail_rank: f64::INFINITY,
        });
        for _ in 0..5 {
            assert!(s.decide(0, 0.0, false).keep());
        }
    }
}
