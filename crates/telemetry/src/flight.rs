//! QoS flight recorder: a bounded ring of complete cycle traces.
//!
//! Every poll cycle the monitoring service assembles a [`CycleTrace`] —
//! the cycle's span tree from the [`Tracer`](crate::Tracer) plus
//! per-connection bandwidth samples annotated against their
//! [`QuantileBaseline`](crate::QuantileBaseline) — and pushes it into a
//! [`FlightRecorder`]. The ring keeps the last N cycles in memory; when
//! QoS evaluation raises a violation the service calls
//! [`write_snapshot`], which persists the whole ring as JSONL (one cycle
//! per line, machine-readable) and as Chrome `trace_event` JSON that
//! loads directly in `chrome://tracing` or Perfetto. Violations
//! therefore always ship with their causal history: what was polled,
//! how long each stage took, and how the traffic compared to baseline
//! in the cycles *before* the threshold tripped.
//!
//! [`validate_chrome_trace`] re-parses an exported trace and checks the
//! structural invariants (every span within its parent's interval) — it
//! backs the golden-file test, `netqos flight check`, and the CI smoke
//! job.

use crate::events::escape_json_into;
use crate::json::{parse_json, JsonValue};
use crate::trace::{SpanRecord, TraceId};
use crate::FieldValue;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One per-connection bandwidth sample, annotated against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleAnnotation {
    /// QoS path this sample belongs to.
    pub path: String,
    /// Human description of the connection.
    pub connection: String,
    /// Observed used bandwidth, bits/s.
    pub used_bps: u64,
    /// Remaining bandwidth under the connection's rule, bits/s.
    pub available_bps: u64,
    /// Percentile rank of `used_bps` against the connection's baseline,
    /// in [0, 1] (e.g. 0.998 = "at p99.8 of recent history").
    pub used_rank: f64,
    /// Baseline median used bandwidth, bits/s.
    pub baseline_p50: u64,
    /// Baseline p99 used bandwidth, bits/s.
    pub baseline_p99: u64,
}

/// One complete poll cycle: span tree + annotated samples + events.
#[derive(Debug, Clone, Default)]
pub struct CycleTrace {
    /// Monotonic cycle number (assigned by the recorder on push).
    pub seq: u64,
    /// The tracer's id for this cycle (0 when tracing was disabled).
    pub trace_id: TraceId,
    /// Wall-clock nanoseconds since the Unix epoch corresponding to the
    /// tracer's origin (offset 0), so exports can place the cycle's
    /// monotonic span offsets on the real timeline. 0 when unknown.
    pub epoch_unix_ns: u64,
    /// Cycle start, nanoseconds since the tracer's origin.
    pub start_ns: u64,
    /// Cycle end, nanoseconds since the tracer's origin.
    pub end_ns: u64,
    /// Finished spans (children precede parents).
    pub spans: Vec<SpanRecord>,
    /// Per-connection bandwidth samples with baseline annotations.
    pub samples: Vec<SampleAnnotation>,
    /// Notable happenings this cycle ("qos_violation feed1", ...).
    pub events: Vec<String>,
}

/// Bounded in-memory ring of the most recent cycles. Cheap to share
/// behind an `Arc`; push and snapshot take a short mutex.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<CycleTrace>>,
    seq: AtomicU64,
}

/// Default ring capacity: comfortably more than the 8 cycles of history
/// a violation snapshot must carry.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 32;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` cycles (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            seq: AtomicU64::new(0),
        }
    }

    /// Appends a cycle, assigning its `seq` and evicting the oldest
    /// cycle when full. Returns the assigned sequence number.
    pub fn push(&self, mut cycle: CycleTrace) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        cycle.seq = seq;
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(cycle);
        seq
    }

    /// The ring's contents, oldest first.
    pub fn snapshot(&self) -> Vec<CycleTrace> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Cycles currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum cycles held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total cycles ever pushed (not just retained).
    pub fn cycles_recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

fn write_attrs_json(out: &mut String, attrs: &[(String, FieldValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(out, k);
        out.push_str("\":");
        v.write_json_into(out);
    }
    out.push('}');
}

/// Renders cycles as JSONL: one self-contained JSON object per line.
pub fn to_jsonl(cycles: &[CycleTrace]) -> String {
    let mut out = String::new();
    for c in cycles {
        // The epoch is serialized as a string: epoch nanoseconds exceed
        // 2^53, and the JSONL reader parses numbers through f64.
        let _ = write!(
            out,
            "{{\"seq\":{},\"trace_id\":{},\"epoch_unix_ns\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"spans\":[",
            c.seq, c.trace_id, c.epoch_unix_ns, c.start_ns, c.end_ns
        );
        for (i, s) in c.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"span_id\":{},\"parent\":", s.span_id);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"target\":\"");
            escape_json_into(&mut out, s.target);
            out.push_str("\",\"name\":\"");
            escape_json_into(&mut out, s.name);
            let _ = write!(
                out,
                "\",\"start_ns\":{},\"dur_ns\":{},\"attrs\":",
                s.start_ns, s.dur_ns
            );
            write_attrs_json(&mut out, &s.attrs);
            out.push('}');
        }
        out.push_str("],\"samples\":[");
        for (i, s) in c.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"path\":\"");
            escape_json_into(&mut out, &s.path);
            out.push_str("\",\"connection\":\"");
            escape_json_into(&mut out, &s.connection);
            let _ = write!(
                out,
                "\",\"used_bps\":{},\"available_bps\":{},\"used_rank\":{:.4},\"baseline_p50\":{},\"baseline_p99\":{}}}",
                s.used_bps, s.available_bps, s.used_rank, s.baseline_p50, s.baseline_p99
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in c.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(&mut out, e);
            out.push('"');
        }
        out.push_str("]}\n");
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn write_chrome_span(
    out: &mut String,
    first: &mut bool,
    trace_id: TraceId,
    span_id: u64,
    parent: Option<u64>,
    target: &str,
    name: &str,
    start_ns: u64,
    dur_ns: u64,
    attrs_json: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape_json_into(out, target);
    out.push('.');
    escape_json_into(out, name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, target);
    // ts/dur are microseconds; three decimals preserve the nanosecond.
    let _ = write!(
        out,
        "\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent\":",
        start_ns / 1000,
        start_ns % 1000,
        dur_ns / 1000,
        dur_ns % 1000,
        trace_id,
        trace_id,
        span_id
    );
    match parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"attrs\":");
    out.push_str(attrs_json);
    out.push_str("}}");
}

fn write_chrome_instant(
    out: &mut String,
    first: &mut bool,
    trace_id: TraceId,
    ts_ns: u64,
    text: &str,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape_json_into(out, text);
    let _ = write!(
        out,
        "\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}}}",
        ts_ns / 1000,
        ts_ns % 1000,
        trace_id
    );
}

fn write_chrome_counter(out: &mut String, first: &mut bool, ts_ns: u64, sample: &SampleAnnotation) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"bps ");
    escape_json_into(out, &sample.connection);
    let _ = write!(
        out,
        "\",\"cat\":\"flight\",\"ph\":\"C\",\"ts\":{}.{:03},\"pid\":1,\"args\":{{\"used_bps\":{},\"available_bps\":{}}}}}",
        ts_ns / 1000,
        ts_ns % 1000,
        sample.used_bps,
        sample.available_bps
    );
}

/// Renders cycles in the Chrome `trace_event` JSON format. Each cycle
/// occupies its own track (tid = trace id); spans are complete (`ph:X`)
/// events, cycle events become instants, and bandwidth samples become
/// counter tracks. Loads in `chrome://tracing` and Perfetto.
pub fn to_chrome_trace(cycles: &[CycleTrace]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for c in cycles {
        for s in &c.spans {
            let mut attrs_json = String::new();
            write_attrs_json(&mut attrs_json, &s.attrs);
            write_chrome_span(
                &mut out,
                &mut first,
                c.trace_id,
                s.span_id,
                s.parent,
                s.target,
                s.name,
                s.start_ns,
                s.dur_ns,
                &attrs_json,
            );
        }
        for e in &c.events {
            write_chrome_instant(&mut out, &mut first, c.trace_id, c.end_ns, e);
        }
        for s in &c.samples {
            write_chrome_counter(&mut out, &mut first, c.end_ns, s);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// A span re-read from a snapshot file (owned strings, unlike the
/// `&'static str` in the live [`SpanRecord`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Span id.
    pub span_id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Subsystem path.
    pub target: String,
    /// Stage name.
    pub name: String,
    /// Start, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Attributes.
    pub attrs: Vec<(String, FieldValue)>,
}

/// A cycle re-read from a JSONL snapshot file.
#[derive(Debug, Clone, Default)]
pub struct ParsedCycle {
    /// Cycle number.
    pub seq: u64,
    /// Trace id.
    pub trace_id: u64,
    /// Unix-epoch nanoseconds of the tracer's origin (0 when the
    /// snapshot predates epoch stamping).
    pub epoch_unix_ns: u64,
    /// Cycle start, ns.
    pub start_ns: u64,
    /// Cycle end, ns.
    pub end_ns: u64,
    /// Spans (children precede parents, as recorded).
    pub spans: Vec<ParsedSpan>,
    /// Annotated samples.
    pub samples: Vec<SampleAnnotation>,
    /// Cycle events.
    pub events: Vec<String>,
}

fn field_value_of(v: &JsonValue) -> FieldValue {
    match v {
        JsonValue::Bool(b) => FieldValue::Bool(*b),
        JsonValue::String(s) => FieldValue::Str(s.clone()),
        JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 => FieldValue::U64(n.round() as u64),
        JsonValue::Number(n) if n.fract() == 0.0 => FieldValue::I64(n.round() as i64),
        JsonValue::Number(n) => FieldValue::F64(*n),
        _ => FieldValue::Str(String::new()),
    }
}

fn attrs_of(v: Option<&JsonValue>) -> Vec<(String, FieldValue)> {
    match v {
        Some(JsonValue::Object(m)) => m
            .iter()
            .map(|(k, v)| (k.clone(), field_value_of(v)))
            .collect(),
        _ => Vec::new(),
    }
}

/// Parses a JSONL snapshot (as produced by [`to_jsonl`]) back into
/// cycles. Empty lines are skipped; a malformed line is an error.
pub fn cycles_from_jsonl(src: &str) -> Result<Vec<ParsedCycle>, String> {
    let mut cycles = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let num = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        // String-encoded (new snapshots) or absent (old ones); a bare
        // number is accepted too, at f64 precision.
        let epoch_unix_ns = match v.get("epoch_unix_ns") {
            Some(JsonValue::String(s)) => s.parse::<u64>().unwrap_or(0),
            Some(other) => other.as_u64().unwrap_or(0),
            None => 0,
        };
        let mut cycle = ParsedCycle {
            seq: num("seq"),
            trace_id: num("trace_id"),
            epoch_unix_ns,
            start_ns: num("start_ns"),
            end_ns: num("end_ns"),
            ..ParsedCycle::default()
        };
        if let Some(spans) = v.get("spans").and_then(JsonValue::as_array) {
            for s in spans {
                cycle.spans.push(ParsedSpan {
                    span_id: s.get("span_id").and_then(JsonValue::as_u64).unwrap_or(0),
                    parent: s.get("parent").and_then(JsonValue::as_u64),
                    target: s
                        .get("target")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    name: s
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    start_ns: s.get("start_ns").and_then(JsonValue::as_u64).unwrap_or(0),
                    dur_ns: s.get("dur_ns").and_then(JsonValue::as_u64).unwrap_or(0),
                    attrs: attrs_of(s.get("attrs")),
                });
            }
        }
        if let Some(samples) = v.get("samples").and_then(JsonValue::as_array) {
            for s in samples {
                cycle.samples.push(SampleAnnotation {
                    path: s
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    connection: s
                        .get("connection")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    used_bps: s.get("used_bps").and_then(JsonValue::as_u64).unwrap_or(0),
                    available_bps: s
                        .get("available_bps")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0),
                    used_rank: s
                        .get("used_rank")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0),
                    baseline_p50: s
                        .get("baseline_p50")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0),
                    baseline_p99: s
                        .get("baseline_p99")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0),
                });
            }
        }
        if let Some(events) = v.get("events").and_then(JsonValue::as_array) {
            for e in events {
                if let Some(t) = e.as_str() {
                    cycle.events.push(t.to_string());
                }
            }
        }
        cycles.push(cycle);
    }
    Ok(cycles)
}

/// Converts a parsed JSONL snapshot back to Chrome `trace_event` JSON
/// (the `netqos flight dump` path).
pub fn parsed_to_chrome_trace(cycles: &[ParsedCycle]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for c in cycles {
        for s in &c.spans {
            let mut attrs_json = String::new();
            write_attrs_json(&mut attrs_json, &s.attrs);
            write_chrome_span(
                &mut out,
                &mut first,
                c.trace_id,
                s.span_id,
                s.parent,
                &s.target,
                &s.name,
                s.start_ns,
                s.dur_ns,
                &attrs_json,
            );
        }
        for e in &c.events {
            write_chrome_instant(&mut out, &mut first, c.trace_id, c.end_ns, e);
        }
        for s in &c.samples {
            write_chrome_counter(&mut out, &mut first, c.end_ns, s);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// Total trace events of any phase.
    pub events: usize,
    /// Complete (`ph:X`) span events.
    pub spans: usize,
    /// Distinct trace ids among span events.
    pub cycles: usize,
}

/// Validates Chrome `trace_event` JSON structurally: the document must
/// parse, `traceEvents` must be an array of objects with the required
/// keys per phase, and every span must lie within its parent's interval
/// (`ts >= parent.ts && ts + dur <= parent.ts + parent.dur`, with 1 ns
/// tolerance for the microsecond rounding).
pub fn validate_chrome_trace(src: &str) -> Result<ChromeTraceStats, String> {
    let doc = parse_json(src).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;

    struct Span {
        ts: f64,
        dur: f64,
        parent: Option<u64>,
        trace_id: u64,
    }
    let mut spans: std::collections::BTreeMap<u64, Span> = std::collections::BTreeMap::new();
    let mut stats = ChromeTraceStats {
        events: events.len(),
        spans: 0,
        cycles: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ev.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: X event missing dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
            if ev.get("pid").and_then(JsonValue::as_u64).is_none()
                || ev.get("tid").and_then(JsonValue::as_u64).is_none()
            {
                return Err(format!("event {i}: X event missing pid/tid"));
            }
            let args = ev
                .get("args")
                .ok_or_else(|| format!("event {i}: missing args"))?;
            let span_id = args
                .get("span_id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event {i}: missing args.span_id"))?;
            let trace_id = args
                .get("trace_id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event {i}: missing args.trace_id"))?;
            let parent = args.get("parent").and_then(JsonValue::as_u64);
            spans.insert(
                span_id,
                Span {
                    ts,
                    dur,
                    parent,
                    trace_id,
                },
            );
            stats.spans += 1;
        }
    }
    // Nesting: each child interval must lie within its parent interval.
    const EPS_US: f64 = 0.002; // two nanoseconds of rounding slack
    for (id, s) in &spans {
        if let Some(pid) = s.parent {
            let p = spans
                .get(&pid)
                .ok_or_else(|| format!("span {id}: parent {pid} not in trace"))?;
            if p.trace_id != s.trace_id {
                return Err(format!("span {id}: parent {pid} belongs to another trace"));
            }
            if s.ts + EPS_US < p.ts || s.ts + s.dur > p.ts + p.dur + EPS_US {
                return Err(format!(
                    "span {id} [{:.3}, {:.3}] escapes parent {pid} [{:.3}, {:.3}]",
                    s.ts,
                    s.ts + s.dur,
                    p.ts,
                    p.ts + p.dur
                ));
            }
        }
    }
    let mut trace_ids: Vec<u64> = spans.values().map(|s| s.trace_id).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    stats.cycles = trace_ids.len();
    Ok(stats)
}

/// File paths produced by [`write_snapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotPaths {
    /// The per-violation JSONL file.
    pub jsonl: PathBuf,
    /// The per-violation Chrome trace file.
    pub chrome: PathBuf,
    /// The per-violation OTLP/JSON file.
    pub otlp: PathBuf,
}

/// Persists a ring snapshot to `dir` as `flight-<tag>.jsonl`,
/// `flight-<tag>.trace.json`, and `flight-<tag>.otlp.json`, also
/// refreshing the stable aliases `last.jsonl` / `last.trace.json` /
/// `last.otlp.json` (what CI and quick tooling read). Creates `dir` if
/// needed.
pub fn write_snapshot(
    dir: &Path,
    tag: u64,
    cycles: &[CycleTrace],
) -> std::io::Result<SnapshotPaths> {
    std::fs::create_dir_all(dir)?;
    let jsonl = to_jsonl(cycles);
    let chrome = to_chrome_trace(cycles);
    let otlp = crate::otlp::to_otlp(cycles);
    let jsonl_path = dir.join(format!("flight-{tag}.jsonl"));
    let chrome_path = dir.join(format!("flight-{tag}.trace.json"));
    let otlp_path = dir.join(format!("flight-{tag}.otlp.json"));
    std::fs::write(&jsonl_path, &jsonl)?;
    std::fs::write(&chrome_path, &chrome)?;
    std::fs::write(&otlp_path, &otlp)?;
    std::fs::write(dir.join("last.jsonl"), &jsonl)?;
    std::fs::write(dir.join("last.trace.json"), &chrome)?;
    std::fs::write(dir.join("last.otlp.json"), &otlp)?;
    Ok(SnapshotPaths {
        jsonl: jsonl_path,
        chrome: chrome_path,
        otlp: otlp_path,
    })
}

/// Disk budget for tagged `flight-<seq>.*` snapshot files.
///
/// A violation storm writes one snapshot trio per violation onset;
/// without a cap that fills the disk exactly when the system is least
/// healthy. [`enforce_retention`] deletes the oldest tagged snapshots
/// (lowest sequence number first) until both limits hold. The `last.*`
/// aliases are never counted or deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Maximum tagged snapshots kept (each is a jsonl/chrome/otlp
    /// trio). 0 means unlimited.
    pub max_snapshots: usize,
    /// Maximum total bytes across all tagged snapshot files. 0 means
    /// unlimited.
    pub max_bytes: u64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_snapshots: 32,
            max_bytes: 64 * 1024 * 1024,
        }
    }
}

impl RetentionPolicy {
    /// No limits — nothing is ever deleted.
    pub fn unlimited() -> Self {
        RetentionPolicy {
            max_snapshots: 0,
            max_bytes: 0,
        }
    }
}

/// The tag of `flight-<tag>.<ext>`, or `None` for anything else
/// (including the `last.*` aliases).
fn snapshot_tag(file_name: &str) -> Option<u64> {
    file_name
        .strip_prefix("flight-")?
        .split('.')
        .next()?
        .parse()
        .ok()
}

/// One snapshot trio deleted by [`enforce_retention`], for the caller
/// to surface (JSONL event + `netqos_retention_deleted_total`) instead
/// of unlinking silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDeletion {
    /// The `flight-<tag>.*` sequence number.
    pub tag: u64,
    /// Total bytes freed across the group's files.
    pub bytes: u64,
    /// Files removed in the group.
    pub files: usize,
    /// Which budget forced the delete: `"count"` or `"bytes"`.
    pub reason: &'static str,
}

/// Deletes the oldest tagged `flight-<seq>.*` files in `dir` until the
/// policy's count and byte budgets both hold. The newest snapshot is
/// never deleted, even when it alone exceeds the byte budget — it is
/// the forensic record of the most recent violation. Returns one record
/// per deleted snapshot (tag group), oldest first. Files that vanish
/// concurrently are skipped, not errors.
pub fn enforce_retention(
    dir: &Path,
    policy: RetentionPolicy,
) -> std::io::Result<Vec<SnapshotDeletion>> {
    if policy.max_snapshots == 0 && policy.max_bytes == 0 {
        return Ok(Vec::new());
    }
    // Group tagged files by sequence number, totalling their bytes.
    let mut groups: std::collections::BTreeMap<u64, (u64, Vec<PathBuf>)> =
        std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(tag) = snapshot_tag(&name.to_string_lossy()) else {
            continue;
        };
        let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
        let g = groups.entry(tag).or_default();
        g.0 += bytes;
        g.1.push(entry.path());
    }
    let mut total_bytes: u64 = groups.values().map(|(b, _)| *b).sum();
    let mut deleted = Vec::new();
    // BTreeMap iterates tags ascending = oldest first; spare the newest.
    let mut tags: Vec<u64> = groups.keys().copied().collect();
    tags.pop();
    for tag in tags {
        let over_count =
            policy.max_snapshots > 0 && groups.len() - deleted.len() > policy.max_snapshots;
        let over_bytes = policy.max_bytes > 0 && total_bytes > policy.max_bytes;
        if !over_count && !over_bytes {
            break;
        }
        let (bytes, paths) = &groups[&tag];
        for p in paths {
            match std::fs::remove_file(p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        total_bytes = total_bytes.saturating_sub(*bytes);
        deleted.push(SnapshotDeletion {
            tag,
            bytes: *bytes,
            files: paths.len(),
            reason: if over_count { "count" } else { "bytes" },
        });
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn traced_cycle(t: &Tracer) -> CycleTrace {
        let trace_id = t.begin_cycle();
        let start_ns = t.now_ns();
        {
            let _root = t.span("monitor", "cycle");
            {
                let mut poll = t.span("monitor.poll", "device");
                poll.set_attr("device", "sw-fore");
                let _decode = t.span("snmp.codec", "decode");
            }
            let _qos = t.span("monitor.qos", "evaluate");
        }
        let end_ns = t.now_ns();
        CycleTrace {
            seq: 0,
            trace_id,
            start_ns,
            end_ns,
            epoch_unix_ns: 1_722_000_000_000_000_000,
            spans: t.end_cycle(),
            samples: vec![SampleAnnotation {
                path: "feed1".into(),
                connection: "sw-fore <-> sw-aft (trunk)".into(),
                used_bps: 71_000_000,
                available_bps: 29_000_000,
                used_rank: 0.998,
                baseline_p50: 40_000_000,
                baseline_p99: 65_000_000,
            }],
            events: vec!["qos_violation feed1".into()],
        }
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let fr = FlightRecorder::new(3);
        for _ in 0..5 {
            fr.push(CycleTrace::default());
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.cycles_recorded(), 5);
        let seqs: Vec<u64> = fr.snapshot().iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_round_trips() {
        let t = Tracer::new();
        let mut cycle = traced_cycle(&t);
        cycle.seq = 7;
        let jsonl = to_jsonl(&[cycle.clone()]);
        let parsed = cycles_from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.seq, 7);
        assert_eq!(p.trace_id, cycle.trace_id);
        assert_eq!(p.spans.len(), cycle.spans.len());
        let decode = p.spans.iter().find(|s| s.name == "decode").unwrap();
        let poll = p.spans.iter().find(|s| s.name == "device").unwrap();
        assert_eq!(decode.parent, Some(poll.span_id));
        assert_eq!(
            poll.attrs,
            vec![("device".to_string(), FieldValue::Str("sw-fore".into()))]
        );
        assert_eq!(p.samples, cycle.samples);
        assert_eq!(p.events, cycle.events);
    }

    #[test]
    fn chrome_trace_validates_and_nests() {
        let t = Tracer::new();
        let cycles = vec![traced_cycle(&t), traced_cycle(&t)];
        let chrome = to_chrome_trace(&cycles);
        let stats = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(stats.spans, 8);
        assert_eq!(stats.cycles, 2);
        // spans + 2 instants + 2 counters
        assert_eq!(stats.events, 12);
        // The parsed-JSONL export path produces the same valid shape.
        let parsed = cycles_from_jsonl(&to_jsonl(&cycles)).unwrap();
        let stats2 = validate_chrome_trace(&parsed_to_chrome_trace(&parsed)).unwrap();
        assert_eq!(stats2.spans, stats.spans);
    }

    #[test]
    fn validator_rejects_escaping_child() {
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"t","ph":"X","ts":0.0,"dur":10.0,"pid":1,"tid":1,"args":{"trace_id":1,"span_id":1,"parent":null,"attrs":{}}},
            {"name":"b","cat":"t","ph":"X","ts":5.0,"dur":10.0,"pid":1,"tid":1,"args":{"trace_id":1,"span_id":2,"parent":1,"attrs":{}}}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let no_dur = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(no_dur).is_err());
    }

    #[test]
    fn snapshot_files_written_and_valid() {
        let t = Tracer::new();
        let dir = std::env::temp_dir().join(format!("netqos-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_snapshot(&dir, 42, &[traced_cycle(&t)]).unwrap();
        let chrome = std::fs::read_to_string(&paths.chrome).unwrap();
        assert!(validate_chrome_trace(&chrome).is_ok());
        let jsonl = std::fs::read_to_string(&paths.jsonl).unwrap();
        assert_eq!(cycles_from_jsonl(&jsonl).unwrap().len(), 1);
        let otlp = std::fs::read_to_string(&paths.otlp).unwrap();
        assert!(crate::otlp::validate_otlp(&otlp).is_ok());
        assert!(dir.join("last.trace.json").exists());
        assert!(dir.join("last.jsonl").exists());
        assert!(dir.join("last.otlp.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_survives_the_jsonl_round_trip_exactly() {
        let t = Tracer::new();
        let mut cycle = traced_cycle(&t);
        // A realistic epoch: > 2^53, would corrupt through an f64.
        cycle.epoch_unix_ns = 1_722_000_000_123_456_789;
        let parsed = cycles_from_jsonl(&to_jsonl(&[cycle.clone()])).unwrap();
        assert_eq!(parsed[0].epoch_unix_ns, cycle.epoch_unix_ns);
    }

    #[test]
    fn retention_deletes_oldest_snapshots_by_count_and_bytes() {
        let t = Tracer::new();
        let dir = std::env::temp_dir().join(format!("netqos-retention-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for tag in 0..6u64 {
            write_snapshot(&dir, tag, &[traced_cycle(&t)]).unwrap();
        }
        // Count cap: keep the 3 newest snapshot trios.
        let deleted = enforce_retention(
            &dir,
            RetentionPolicy {
                max_snapshots: 3,
                max_bytes: 0,
            },
        )
        .unwrap();
        assert_eq!(deleted.len(), 3);
        assert_eq!(
            deleted.iter().map(|d| d.tag).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(deleted
            .iter()
            .all(|d| d.reason == "count" && d.files >= 3 && d.bytes > 0));
        for tag in 0..3u64 {
            assert!(!dir.join(format!("flight-{tag}.jsonl")).exists(), "{tag}");
        }
        for tag in 3..6u64 {
            assert!(dir.join(format!("flight-{tag}.jsonl")).exists(), "{tag}");
            assert!(dir.join(format!("flight-{tag}.otlp.json")).exists());
        }
        // The stable aliases are never touched.
        assert!(dir.join("last.jsonl").exists());

        // Byte cap: tiny budget forces everything but the newest out.
        let one = std::fs::metadata(dir.join("flight-5.jsonl")).unwrap().len();
        let deleted = enforce_retention(
            &dir,
            RetentionPolicy {
                max_snapshots: 0,
                max_bytes: one * 4,
            },
        )
        .unwrap();
        assert!(!deleted.is_empty(), "byte budget should evict something");
        assert!(deleted.iter().all(|d| d.reason == "bytes"));
        assert!(dir.join("flight-5.jsonl").exists(), "newest must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_unlimited_is_a_no_op() {
        let t = Tracer::new();
        let dir = std::env::temp_dir().join(format!("netqos-retention-nop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_snapshot(&dir, 1, &[traced_cycle(&t)]).unwrap();
        assert!(enforce_retention(&dir, RetentionPolicy::unlimited())
            .unwrap()
            .is_empty());
        assert!(dir.join("flight-1.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
