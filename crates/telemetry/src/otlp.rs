//! OTLP/JSON export for flight-recorder cycle traces.
//!
//! Maps [`SpanRecord`](crate::SpanRecord) trees onto the OpenTelemetry
//! OTLP/JSON wire shape (`resourceSpans` → `scopeSpans` → `spans`) so a
//! snapshot loads into any OTLP-speaking backend (Jaeger, Tempo, an
//! OpenTelemetry collector). Hand-rolled, no new dependencies — the
//! format is plain JSON with a few conventions from the protobuf
//! mapping:
//!
//! * `traceId` is 32 lowercase hex chars (we left-pad the monitor's
//!   64-bit cycle trace id), `spanId`/`parentSpanId` are 16;
//! * 64-bit integers — timestamps and `intValue` attributes — are JSON
//!   *strings*, because JSON numbers lose precision past 2^53;
//! * timestamps are nanoseconds since the Unix epoch: each cycle
//!   carries `epoch_unix_ns` (the wall-clock instant of the tracer's
//!   origin), added to the spans' monotonic offsets.
//!
//! [`validate_otlp`] re-parses an export and checks the structural
//! invariants (required fields, hex id shapes, end ≥ start, every
//! `parentSpanId` resolving to a span of the same trace that contains
//! the child's interval). It backs the golden-file test, `netqos flight
//! check`, and the CI smoke job.

use crate::events::escape_json_into;
use crate::flight::{CycleTrace, ParsedCycle};
use crate::json::{parse_json, JsonValue};
use crate::FieldValue;
use std::fmt::Write as _;

/// The scope name stamped on every export.
pub const OTLP_SCOPE: &str = "netqos-telemetry";
/// The `service.name` resource attribute.
pub const OTLP_SERVICE: &str = "netqos-monitor";

/// One span's fields, borrowed from either the live or the parsed
/// representation.
struct OtlpSpan<'a> {
    trace_id: u64,
    span_id: u64,
    parent: Option<u64>,
    target: &'a str,
    name: &'a str,
    start_unix_ns: u64,
    end_unix_ns: u64,
    attrs: &'a [(String, FieldValue)],
}

fn write_attr_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{{\"intValue\":\"{n}\"}}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{{\"intValue\":\"{n}\"}}");
        }
        // Floats are canonicalized the same way the JSONL reader
        // classifies bare JSON numbers (whole → int, else double), so a
        // live export and its JSONL round trip are byte-identical.
        FieldValue::F64(f) if f.is_finite() && f.fract() == 0.0 && *f >= 0.0 => {
            let _ = write!(out, "{{\"intValue\":\"{}\"}}", f.round() as u64);
        }
        FieldValue::F64(f) if f.is_finite() && f.fract() == 0.0 => {
            let _ = write!(out, "{{\"intValue\":\"{}\"}}", f.round() as i64);
        }
        FieldValue::F64(f) if f.is_finite() => {
            let _ = write!(out, "{{\"doubleValue\":{f}}}");
        }
        // JSONL serializes non-finite floats as `null`, which reads back
        // as an empty string; match that here.
        FieldValue::F64(_) => out.push_str("{\"stringValue\":\"\"}"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{{\"boolValue\":{b}}}");
        }
        FieldValue::Str(s) => {
            out.push_str("{\"stringValue\":\"");
            escape_json_into(out, s);
            out.push_str("\"}");
        }
    }
}

fn write_span(out: &mut String, first: &mut bool, s: &OtlpSpan<'_>) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"traceId\":\"{:032x}\",\"spanId\":\"{:016x}\",\"parentSpanId\":\"",
        s.trace_id, s.span_id
    );
    if let Some(p) = s.parent {
        let _ = write!(out, "{p:016x}");
    }
    out.push_str("\",\"name\":\"");
    escape_json_into(out, s.target);
    out.push('.');
    escape_json_into(out, s.name);
    // SPAN_KIND_INTERNAL = 1 in the OTLP enum.
    let _ = write!(
        out,
        "\",\"kind\":1,\"startTimeUnixNano\":\"{}\",\"endTimeUnixNano\":\"{}\",\"attributes\":[",
        s.start_unix_ns, s.end_unix_ns
    );
    // Attributes are sorted by key so the export is deterministic and a
    // JSONL round trip (which stores attrs in a BTreeMap) is byte-equal.
    let mut attrs: Vec<&(String, FieldValue)> = s.attrs.iter().collect();
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (k, v)) in attrs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"key\":\"");
        escape_json_into(out, k);
        out.push_str("\",\"value\":");
        write_attr_value(out, v);
        out.push('}');
    }
    out.push_str("]}");
}

fn render<'a, I: Iterator<Item = OtlpSpan<'a>>>(spans: I) -> String {
    let mut out = format!(
        "{{\"resourceSpans\":[{{\"resource\":{{\"attributes\":[\
         {{\"key\":\"service.name\",\"value\":{{\"stringValue\":\"{OTLP_SERVICE}\"}}}}\
         ]}},\"scopeSpans\":[{{\"scope\":{{\"name\":\"{OTLP_SCOPE}\"}},\"spans\":["
    );
    let mut first = true;
    for s in spans {
        write_span(&mut out, &mut first, &s);
    }
    out.push_str("]}]}]}");
    out
}

/// Renders live cycles as OTLP/JSON. Each cycle's `epoch_unix_ns` shifts
/// its spans' monotonic offsets onto the Unix timeline (an epoch of 0
/// leaves them relative to the monitor's start, still valid OTLP).
pub fn to_otlp(cycles: &[CycleTrace]) -> String {
    render(cycles.iter().flat_map(|c| {
        c.spans.iter().map(move |s| OtlpSpan {
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent: s.parent,
            target: s.target,
            name: s.name,
            start_unix_ns: c.epoch_unix_ns.saturating_add(s.start_ns),
            end_unix_ns: c
                .epoch_unix_ns
                .saturating_add(s.start_ns)
                .saturating_add(s.dur_ns),
            attrs: &s.attrs,
        })
    }))
}

/// Renders a parsed JSONL snapshot as OTLP/JSON (the `netqos flight
/// dump --otlp` path).
pub fn parsed_to_otlp(cycles: &[ParsedCycle]) -> String {
    render(cycles.iter().flat_map(|c| {
        c.spans.iter().map(move |s| OtlpSpan {
            trace_id: c.trace_id,
            span_id: s.span_id,
            parent: s.parent,
            target: &s.target,
            name: &s.name,
            start_unix_ns: c.epoch_unix_ns.saturating_add(s.start_ns),
            end_unix_ns: c
                .epoch_unix_ns
                .saturating_add(s.start_ns)
                .saturating_add(s.dur_ns),
            attrs: &s.attrs,
        })
    }))
}

/// Summary returned by [`validate_otlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OtlpStats {
    /// Total spans across all scopes.
    pub spans: usize,
    /// Distinct trace ids.
    pub traces: usize,
    /// Spans with a parent.
    pub child_spans: usize,
}

fn hex_id(v: &JsonValue, key: &str, len: usize, i: usize) -> Result<String, String> {
    let s = v
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("span {i}: missing {key}"))?;
    if s.len() != len || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("span {i}: {key} {s:?} is not {len} hex chars"));
    }
    if s.bytes().all(|b| b == b'0') {
        return Err(format!("span {i}: {key} is all zeroes"));
    }
    Ok(s.to_string())
}

fn unix_nano(v: &JsonValue, key: &str, i: usize) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("span {i}: missing {key} (must be a string of nanoseconds)"))?;
    s.parse::<u64>()
        .map_err(|_| format!("span {i}: {key} {s:?} is not a u64 nanosecond count"))
}

/// Validates OTLP/JSON structurally: the `resourceSpans` →
/// `scopeSpans` → `spans` nesting must be present, every span needs
/// well-formed hex ids, a name, and string-encoded nanosecond
/// timestamps with `end >= start`, and every non-empty `parentSpanId`
/// must resolve to a span of the same trace whose interval contains the
/// child's.
pub fn validate_otlp(src: &str) -> Result<OtlpStats, String> {
    let doc = parse_json(src).map_err(|e| e.to_string())?;
    let resource_spans = doc
        .get("resourceSpans")
        .and_then(JsonValue::as_array)
        .ok_or("missing resourceSpans array")?;

    struct Span {
        trace: String,
        parent: Option<String>,
        start: u64,
        end: u64,
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut by_id: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for rs in resource_spans {
        let scope_spans = rs
            .get("scopeSpans")
            .and_then(JsonValue::as_array)
            .ok_or("resourceSpans entry missing scopeSpans")?;
        for ss in scope_spans {
            let Some(list) = ss.get("spans").and_then(JsonValue::as_array) else {
                continue;
            };
            for (i, sp) in list.iter().enumerate() {
                let trace = hex_id(sp, "traceId", 32, i)?;
                let span_id = hex_id(sp, "spanId", 16, i)?;
                let name = sp
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("span {i}: missing name"))?;
                if name.is_empty() {
                    return Err(format!("span {i}: empty name"));
                }
                let start = unix_nano(sp, "startTimeUnixNano", i)?;
                let end = unix_nano(sp, "endTimeUnixNano", i)?;
                if end < start {
                    return Err(format!("span {i}: endTimeUnixNano {end} < start {start}"));
                }
                let parent = match sp.get("parentSpanId").and_then(JsonValue::as_str) {
                    None => return Err(format!("span {i}: missing parentSpanId")),
                    Some("") => None,
                    Some(p) => {
                        if p.len() != 16 || !p.bytes().all(|b| b.is_ascii_hexdigit()) {
                            return Err(format!("span {i}: parentSpanId {p:?} malformed"));
                        }
                        Some(p.to_string())
                    }
                };
                if let Some(attrs) = sp.get("attributes").and_then(JsonValue::as_array) {
                    for a in attrs {
                        if a.get("key").and_then(JsonValue::as_str).is_none()
                            || a.get("value").is_none()
                        {
                            return Err(format!("span {i}: malformed attribute"));
                        }
                    }
                }
                if by_id.insert(span_id.clone(), spans.len()).is_some() {
                    return Err(format!("duplicate spanId {span_id}"));
                }
                spans.push(Span {
                    trace,
                    parent,
                    start,
                    end,
                });
            }
        }
    }
    let mut child_spans = 0usize;
    for (id, idx) in &by_id {
        let s = &spans[*idx];
        let Some(pid) = &s.parent else { continue };
        child_spans += 1;
        let p_idx = by_id
            .get(pid)
            .ok_or_else(|| format!("span {id}: parent {pid} not in export"))?;
        let p = &spans[*p_idx];
        if p.trace != s.trace {
            return Err(format!("span {id}: parent {pid} belongs to another trace"));
        }
        // Timestamps are exact nanoseconds (no microsecond rounding as
        // in the Chrome export), so containment is checked exactly.
        if s.start < p.start || s.end > p.end {
            return Err(format!(
                "span {id} [{}, {}] escapes parent {pid} [{}, {}]",
                s.start, s.end, p.start, p.end
            ));
        }
    }
    let mut traces: Vec<&str> = spans.iter().map(|s| s.trace.as_str()).collect();
    traces.sort_unstable();
    traces.dedup();
    Ok(OtlpStats {
        spans: spans.len(),
        traces: traces.len(),
        child_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn traced_cycle(t: &Tracer, epoch: u64) -> CycleTrace {
        let trace_id = t.begin_cycle();
        let start_ns = t.now_ns();
        {
            let _root = t.span("monitor", "cycle");
            {
                let mut poll = t.span("monitor.poll", "device");
                poll.set_attr("device", "sw-fore");
                poll.set_attr("bytes", 1234u64);
                poll.set_attr("rank", 0.5f64);
                poll.set_attr("ok", true);
            }
        }
        CycleTrace {
            trace_id,
            start_ns,
            end_ns: t.now_ns(),
            epoch_unix_ns: epoch,
            spans: t.end_cycle(),
            ..CycleTrace::default()
        }
    }

    #[test]
    fn export_validates_and_counts() {
        let t = Tracer::new();
        let epoch = 1_700_000_000_000_000_000u64;
        let cycles = vec![traced_cycle(&t, epoch), traced_cycle(&t, epoch)];
        let otlp = to_otlp(&cycles);
        let stats = validate_otlp(&otlp).unwrap();
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.traces, 2);
        assert_eq!(stats.child_spans, 2);
        // Timestamps landed on the Unix timeline.
        assert!(otlp.contains("\"startTimeUnixNano\":\"17"));
    }

    #[test]
    fn parent_child_ids_preserved() {
        let t = Tracer::new();
        let cycle = traced_cycle(&t, 0);
        let root = cycle.spans.iter().find(|s| s.name == "cycle").unwrap();
        let child = cycle.spans.iter().find(|s| s.name == "device").unwrap();
        let otlp = to_otlp(std::slice::from_ref(&cycle));
        assert!(otlp.contains(&format!("\"spanId\":\"{:016x}\"", root.span_id)));
        assert!(otlp.contains(&format!("\"parentSpanId\":\"{:016x}\"", root.span_id)));
        assert!(otlp.contains(&format!("\"spanId\":\"{:016x}\"", child.span_id)));
        // Attribute value typing follows the OTLP mapping.
        assert!(otlp.contains("{\"intValue\":\"1234\"}"));
        assert!(otlp.contains("{\"doubleValue\":0.5}"));
        assert!(otlp.contains("{\"boolValue\":true}"));
        assert!(otlp.contains("{\"stringValue\":\"sw-fore\"}"));
    }

    #[test]
    fn validator_rejects_structural_breakage() {
        assert!(validate_otlp("not json").is_err());
        assert!(validate_otlp("{}").is_err());
        // Orphaned parent.
        let orphan = r#"{"resourceSpans":[{"resource":{},"scopeSpans":[{"spans":[
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000002",
             "parentSpanId":"00000000000000ff","name":"a","kind":1,
             "startTimeUnixNano":"10","endTimeUnixNano":"20","attributes":[]}
        ]}]}]}"#;
        assert!(validate_otlp(orphan).unwrap_err().contains("not in export"));
        // Child escaping its parent's interval.
        let escape = r#"{"resourceSpans":[{"resource":{},"scopeSpans":[{"spans":[
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000001",
             "parentSpanId":"","name":"p","kind":1,
             "startTimeUnixNano":"10","endTimeUnixNano":"20","attributes":[]},
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000002",
             "parentSpanId":"0000000000000001","name":"c","kind":1,
             "startTimeUnixNano":"15","endTimeUnixNano":"25","attributes":[]}
        ]}]}]}"#;
        assert!(validate_otlp(escape)
            .unwrap_err()
            .contains("escapes parent"));
        // End before start.
        let backwards = r#"{"resourceSpans":[{"resource":{},"scopeSpans":[{"spans":[
            {"traceId":"00000000000000000000000000000001","spanId":"0000000000000001",
             "parentSpanId":"","name":"p","kind":1,
             "startTimeUnixNano":"20","endTimeUnixNano":"10","attributes":[]}
        ]}]}]}"#;
        assert!(validate_otlp(backwards).is_err());
    }

    #[test]
    fn jsonl_round_trip_matches_live_export() {
        let t = Tracer::new();
        let cycles = vec![traced_cycle(&t, 42_000)];
        let live = to_otlp(&cycles);
        let parsed = crate::flight::cycles_from_jsonl(&crate::flight::to_jsonl(&cycles)).unwrap();
        let reparsed = parsed_to_otlp(&parsed);
        assert_eq!(live, reparsed);
    }
}
