//! Push-based OTLP delivery: a std-only background worker that POSTs
//! flight snapshots to a collector.
//!
//! Scrape-based export (`/metrics`) loses the traces of a shard that
//! dies between scrapes; pushing the flight snapshot at violation time
//! closes that gap. The pusher is deliberately boring: a bounded
//! queue in front of one worker thread doing blocking HTTP/1.1 POSTs
//! with capped exponential backoff. The tick loop only ever pays the
//! cost of an `mpsc` try-send — when the collector is down the queue
//! fills and [`OtlpPusher::enqueue`] drops on the floor, counting every
//! drop so the loss is visible in `/metrics` rather than silent.

use crate::metrics::Counter;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Where pushes go: host, port, and URL path, parsed from an
/// `http://host:port/path` URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushTarget {
    pub host: String,
    pub port: u16,
    pub path: String,
}

impl PushTarget {
    fn addr(&self) -> (String, u16) {
        (self.host.clone(), self.port)
    }
}

/// Parses an `http://` push URL. `https://` is rejected explicitly —
/// there is no TLS stack in this tree; terminate TLS in a local
/// collector or sidecar.
pub fn parse_push_url(url: &str) -> Result<PushTarget, String> {
    parse_http_url(url, "--otlp-push", 4318, "/v1/traces")
}

/// Parses an `http://` alert-webhook URL (default port 80, default
/// path `/`). Same plaintext-only rule as [`parse_push_url`].
pub fn parse_webhook_url(url: &str) -> Result<PushTarget, String> {
    parse_http_url(url, "--alert-webhook", 80, "/")
}

fn parse_http_url(
    url: &str,
    flag: &str,
    default_port: u16,
    default_path: &str,
) -> Result<PushTarget, String> {
    if let Some(rest) = url.strip_prefix("https://") {
        return Err(format!(
            "https push targets are not supported (got https://{rest}); \
             point {flag} at a plaintext listener"
        ));
    }
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("push URL must start with http:// (got {url:?})"))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, default_path),
    };
    let (host, port) = match authority.rsplit_once(':') {
        Some((h, p)) => (
            h,
            p.parse::<u16>()
                .map_err(|_| format!("bad port in push URL {url:?}"))?,
        ),
        None => (authority, default_port),
    };
    if host.is_empty() {
        return Err(format!("empty host in push URL {url:?}"));
    }
    Ok(PushTarget {
        host: host.to_string(),
        port,
        path: path.to_string(),
    })
}

/// Delivery policy for the push worker.
#[derive(Debug, Clone)]
pub struct PushConfig {
    pub target: PushTarget,
    /// Attempts per snapshot before it is counted as dropped.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Snapshots queued ahead of the worker before `enqueue` drops.
    pub queue_capacity: usize,
    /// Per-connection read/write timeout.
    pub timeout_ms: u64,
}

impl PushConfig {
    /// Defaults tuned for a local collector: 4 attempts backing off
    /// 50ms → 400ms, 32 queued snapshots, 2s socket timeout.
    pub fn new(target: PushTarget) -> Self {
        PushConfig {
            target,
            max_attempts: 4,
            backoff_ms: 50,
            backoff_cap_ms: 400,
            queue_capacity: 32,
            timeout_ms: 2_000,
        }
    }
}

/// Delivery counters, shared with a metrics registry so drops show up
/// on `/metrics`.
#[derive(Clone, Default)]
pub struct PushCounters {
    /// Snapshots acknowledged 2xx by the collector.
    pub pushed: Counter,
    /// Individual retry attempts (connection refused or non-2xx).
    pub retries: Counter,
    /// Snapshots abandoned: queue full at enqueue, or retries
    /// exhausted.
    pub dropped: Counter,
}

/// The background pusher. Create with [`OtlpPusher::start`], feed with
/// [`enqueue`](OtlpPusher::enqueue), and [`shutdown`](OtlpPusher::shutdown)
/// to drain.
pub struct OtlpPusher {
    sender: Mutex<Option<SyncSender<String>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: PushCounters,
    target: PushTarget,
}

impl OtlpPusher {
    /// Spawns the worker thread and returns the queue handle.
    pub fn start(config: PushConfig, counters: PushCounters) -> OtlpPusher {
        let (tx, rx) = sync_channel::<String>(config.queue_capacity.max(1));
        let target = config.target.clone();
        let worker_counters = counters.clone();
        let worker = thread::Builder::new()
            .name("netqos-otlp-push".into())
            .spawn(move || push_worker(rx, config, worker_counters))
            .expect("spawn otlp push worker");
        OtlpPusher {
            sender: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            counters,
            target,
        }
    }

    /// Queues one snapshot body. Returns `false` (and counts a drop)
    /// when the queue is full or the pusher is already shut down —
    /// never blocks the caller.
    pub fn enqueue(&self, body: String) -> bool {
        let guard = self.sender.lock();
        let Some(tx) = guard.as_ref() else {
            self.counters.dropped.inc();
            return false;
        };
        match tx.try_send(body) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.inc();
                false
            }
        }
    }

    /// Delivery counters (shared handles, live).
    pub fn counters(&self) -> &PushCounters {
        &self.counters
    }

    /// The configured collector endpoint.
    pub fn target(&self) -> &PushTarget {
        &self.target
    }

    /// Closes the queue, lets the worker drain what was already
    /// accepted, and joins it.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the channel; the worker exits
        // after draining buffered snapshots.
        drop(self.sender.lock().take());
        if let Some(worker) = self.worker.lock().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for OtlpPusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn push_worker(rx: Receiver<String>, config: PushConfig, counters: PushCounters) {
    while let Ok(body) = rx.recv() {
        let mut backoff = config.backoff_ms.max(1);
        let mut delivered = false;
        for attempt in 0..config.max_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(backoff));
                backoff = (backoff * 2).min(config.backoff_cap_ms.max(1));
                counters.retries.inc();
            }
            if post_once(&config, &body).is_ok() {
                counters.pushed.inc();
                delivered = true;
                break;
            }
        }
        if !delivered {
            counters.dropped.inc();
        }
    }
}

/// One blocking POST. `Ok` only on a 2xx status line; connection
/// errors, timeouts, and non-2xx all report `Err` so the caller
/// retries uniformly.
fn post_once(config: &PushConfig, body: &str) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(config.target.addr()).map_err(|e| format!("connect: {e}"))?;
    let timeout = Some(Duration::from_millis(config.timeout_ms.max(1)));
    let _ = stream.set_read_timeout(timeout);
    let _ = stream.set_write_timeout(timeout);
    let request = format!(
        "POST {} HTTP/1.1\r\nHost: {}:{}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        config.target.path,
        config.target.host,
        config.target.port,
        body.len(),
        body
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut response = Vec::new();
    // Read until close; only the status line matters.
    let _ = stream.read_to_end(&mut response);
    let status_line = response
        .split(|&b| b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .unwrap_or_default();
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    if (200..300).contains(&code) {
        Ok(())
    } else {
        Err(format!("collector returned {code}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn read_request(stream: &mut TcpStream) -> (String, String) {
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut head = String::new();
        let mut content_len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_len = v.trim().parse().unwrap();
            }
            head.push_str(&line);
        }
        let mut body = vec![0u8; content_len];
        reader.read_exact(&mut body).unwrap();
        (head, String::from_utf8(body).unwrap())
    }

    fn respond(stream: &mut TcpStream, status: &str) {
        let _ = stream.write_all(
            format!("HTTP/1.1 {status}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        );
    }

    #[test]
    fn parse_push_url_variants() {
        assert_eq!(
            parse_push_url("http://127.0.0.1:4318/v1/traces").unwrap(),
            PushTarget {
                host: "127.0.0.1".into(),
                port: 4318,
                path: "/v1/traces".into()
            }
        );
        // Default port and default path.
        assert_eq!(parse_push_url("http://collector").unwrap().port, 4318);
        assert_eq!(
            parse_push_url("http://collector:9999").unwrap().path,
            "/v1/traces"
        );
        assert!(parse_push_url("https://collector:4318/x").is_err());
        assert!(parse_push_url("collector:4318").is_err());
        assert!(parse_push_url("http://:4318/x").is_err());
        assert!(parse_push_url("http://h:notaport/x").is_err());
    }

    #[test]
    fn parse_webhook_url_defaults() {
        let t = parse_webhook_url("http://hooks.local").unwrap();
        assert_eq!((t.port, t.path.as_str()), (80, "/"));
        let t = parse_webhook_url("http://hooks.local:9009/notify").unwrap();
        assert_eq!((t.port, t.path.as_str()), (9009, "/notify"));
        let err = parse_webhook_url("https://hooks.local/x").unwrap_err();
        assert!(err.contains("--alert-webhook"), "{err}");
    }

    #[test]
    fn delivers_body_to_sink() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let sink = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let (head, body) = read_request(&mut stream);
            respond(&mut stream, "200 OK");
            (head, body)
        });
        let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
        let pusher = OtlpPusher::start(PushConfig::new(target), PushCounters::default());
        assert!(pusher.enqueue("{\"resourceSpans\":[]}".into()));
        pusher.shutdown();
        let (head, body) = sink.join().unwrap();
        assert!(head.starts_with("POST /v1/traces HTTP/1.1"), "{head}");
        assert_eq!(body, "{\"resourceSpans\":[]}");
        assert_eq!(pusher.counters().pushed.get(), 1);
        assert_eq!(pusher.counters().dropped.get(), 0);
    }

    #[test]
    fn retries_after_rejection_then_succeeds() {
        // One listener that 503s the first POST and 200s the second:
        // exercises the retry path without racing on a restarted port.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let sink = thread::spawn(move || {
            let (mut first, _) = listener.accept().unwrap();
            let _ = read_request(&mut first);
            respond(&mut first, "503 Service Unavailable");
            let (mut second, _) = listener.accept().unwrap();
            let (_, body) = read_request(&mut second);
            respond(&mut second, "200 OK");
            body
        });
        let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
        let mut config = PushConfig::new(target);
        config.backoff_ms = 5;
        config.backoff_cap_ms = 10;
        let pusher = OtlpPusher::start(config, PushCounters::default());
        assert!(pusher.enqueue("{\"try\":2}".into()));
        pusher.shutdown();
        assert_eq!(sink.join().unwrap(), "{\"try\":2}");
        assert_eq!(pusher.counters().pushed.get(), 1);
        assert_eq!(pusher.counters().retries.get(), 1);
        assert_eq!(pusher.counters().dropped.get(), 0);
    }

    #[test]
    fn exhausted_retries_count_a_drop() {
        // Bind then drop the listener so the port refuses connections.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
        let mut config = PushConfig::new(target);
        config.max_attempts = 3;
        config.backoff_ms = 2;
        config.backoff_cap_ms = 4;
        let pusher = OtlpPusher::start(config, PushCounters::default());
        assert!(pusher.enqueue("{}".into()));
        pusher.shutdown();
        assert_eq!(pusher.counters().pushed.get(), 0);
        assert_eq!(
            pusher.counters().retries.get(),
            2,
            "attempts 2 and 3 retried"
        );
        assert_eq!(pusher.counters().dropped.get(), 1);
    }

    #[test]
    fn full_queue_drops_without_blocking() {
        // Hold the worker hostage on a sink that accepts but never
        // responds, so the queue backs up deterministically.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let sink = thread::spawn(move || {
            let mut held = Vec::new();
            // Accept connections until released; never respond.
            listener.set_nonblocking(true).unwrap();
            loop {
                if let Ok((stream, _)) = listener.accept() {
                    held.push(stream);
                }
                if release_rx.try_recv().is_ok() {
                    break;
                }
                thread::sleep(Duration::from_millis(2));
            }
            drop(held);
        });
        let target = parse_push_url(&format!("http://127.0.0.1:{port}/v1/traces")).unwrap();
        let mut config = PushConfig::new(target);
        config.queue_capacity = 1;
        config.max_attempts = 1;
        config.timeout_ms = 10_000;
        let pusher = OtlpPusher::start(config, PushCounters::default());
        // First body goes to the worker, second fills the queue of 1;
        // keep enqueuing until one is rejected.
        let mut saw_drop = false;
        for i in 0..50 {
            if !pusher.enqueue(format!("{{\"n\":{i}}}")) {
                saw_drop = true;
                break;
            }
        }
        assert!(saw_drop, "bounded queue never reported full");
        assert!(pusher.counters().dropped.get() >= 1);
        release_tx.send(()).unwrap();
        sink.join().unwrap();
        pusher.shutdown();
    }

    #[test]
    fn enqueue_after_shutdown_is_a_counted_drop() {
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let target = parse_push_url(&format!("http://127.0.0.1:{port}/")).unwrap();
        let mut config = PushConfig::new(target);
        config.max_attempts = 1;
        config.backoff_ms = 1;
        let pusher = OtlpPusher::start(config, PushCounters::default());
        pusher.shutdown();
        let before = pusher.counters().dropped.get();
        assert!(!pusher.enqueue("{}".into()));
        assert_eq!(pusher.counters().dropped.get(), before + 1);
    }
}
