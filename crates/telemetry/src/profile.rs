//! Hierarchical tick-phase profiling over the tracer's span stream.
//!
//! [`ProfileHub`] rides the spans the [`Tracer`](crate::Tracer) already
//! records — no new instrumentation sites — and folds each finished
//! cycle into a rolling *phase tree*: one node per distinct
//! `target.name` span label under its parent chain, carrying call
//! counts, total wall-clock, *self* time (total minus the time spent in
//! child phases), and a log-bucket latency histogram of per-occurrence
//! durations (the same bucket layout as [`Histogram`](crate::Histogram),
//! so quantiles carry the same ≤ 6.25 % relative error bound).
//!
//! Aggregation is windowed: only the most recent `window` cycles
//! contribute, so the profile tracks the *current* shape of the tick
//! loop rather than its whole history. Eviction subtracts the per-cycle
//! contributions exactly, which is why the per-phase state holds plain
//! bucket arrays behind one mutex instead of the shared atomic
//! histograms (those can only merge, never subtract).
//!
//! Two renderings come out of one tree:
//!
//! 1. [`ProfileHub::to_json`] — the nested phase tree with per-phase
//!    stats, served as `GET /profile`;
//! 2. [`ProfileHub::to_folded`] — flamegraph-compatible folded stacks
//!    (`root;child;leaf <self_ns>` per line, depth-first with children
//!    sorted by label), served as `GET /profile?format=folded`.
//!
//! Both are deterministic: the same span stream produces byte-identical
//! output, enforced by test.
//!
//! When constructed with a registry ([`ProfileHub::with_registry`]),
//! every span occurrence is also recorded into a
//! `netqos_tick_phase_ns{phase="..."}` histogram, so phase latencies
//! ride the ordinary `/metrics` exposition, the PromQL plane, and the
//! long-term store's registry sampler.
//!
//! The profiler costs nothing when tracing is off: `end_cycle` yields no
//! spans, so nothing reaches [`ProfileHub::record_spans`] — the only
//! per-span-site cost is the tracer's one relaxed atomic load (pinned by
//! the `profile`/`trace` benches).

use crate::flight::ParsedSpan;
use crate::json_escape;
use crate::metrics::{bucket_index, bucket_mid, BUCKETS};
use crate::trace::SpanRecord;
use crate::{escape_label_value, Histogram, HttpRequest, HttpResponse, Registry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;

/// Cycles kept in the rolling window by default — at the monitor's 1 s
/// poll cadence, a bit over four minutes of recent history.
pub const DEFAULT_PROFILE_WINDOW: usize = 256;

/// A borrowed view of one span, however it was stored. Both the live
/// [`SpanRecord`] stream and flight-recorder [`ParsedSpan`]s convert
/// into this, so online and offline profiling share one code path.
#[derive(Debug, Clone, Copy)]
pub struct SpanView<'a> {
    /// Span id, unique within its cycle.
    pub span_id: u64,
    /// Parent span id (`None` = phase-tree root).
    pub parent: Option<u64>,
    /// Dotted subsystem path (`monitor.poll`).
    pub target: &'a str,
    /// Stage name within the target (`device`).
    pub name: &'a str,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
}

impl<'a> From<&'a SpanRecord> for SpanView<'a> {
    fn from(s: &'a SpanRecord) -> Self {
        SpanView {
            span_id: s.span_id,
            parent: s.parent,
            target: s.target,
            name: s.name,
            dur_ns: s.dur_ns,
        }
    }
}

impl<'a> From<&'a ParsedSpan> for SpanView<'a> {
    fn from(s: &'a ParsedSpan) -> Self {
        SpanView {
            span_id: s.span_id,
            parent: s.parent,
            target: &s.target,
            name: &s.name,
            dur_ns: s.dur_ns,
        }
    }
}

/// One phase: a distinct span label at a distinct position in the tree.
struct PhaseNode {
    /// `target.name` of the spans aggregated here.
    label: String,
    /// Children by label (BTreeMap for deterministic order).
    children: BTreeMap<String, usize>,
    /// Span occurrences in the window.
    calls: u64,
    /// Summed wall-clock of those occurrences, nanoseconds.
    total_ns: u64,
    /// Summed wall-clock minus time spent in child phases.
    self_ns: u64,
    /// Log-bucket histogram of per-occurrence durations (same layout as
    /// [`crate::Histogram`], but plain counts so eviction can subtract).
    buckets: Vec<u64>,
    /// Cached `netqos_tick_phase_ns{phase="..."}` handle, when a
    /// registry is attached.
    metric: Option<Histogram>,
}

impl PhaseNode {
    fn new(label: String) -> PhaseNode {
        PhaseNode {
            label,
            children: BTreeMap::new(),
            calls: 0,
            total_ns: 0,
            self_ns: 0,
            buckets: vec![0; BUCKETS],
            metric: None,
        }
    }

    /// Quantile over the windowed duration buckets (bucket midpoint,
    /// ≤ 6.25 % relative error). 0 when the phase has no calls.
    fn quantile(&self, q: f64) -> u64 {
        if self.calls == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.calls as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_mid(i);
            }
        }
        self.max_ns()
    }

    /// Midpoint of the highest occupied bucket — the windowed maximum at
    /// bucket resolution.
    fn max_ns(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n != 0)
            .map(bucket_mid)
            .unwrap_or(0)
    }
}

/// One cycle's contributions, kept so eviction can subtract them:
/// `(node index, dur_ns, self_ns)` per span occurrence.
type CycleContribution = Vec<(usize, u64, u64)>;

/// The phase tree plus its rolling window. `nodes[0]` is a synthetic
/// root whose children are the cycle's top-level phases.
struct PhaseProfiler {
    nodes: Vec<PhaseNode>,
    window: usize,
    cycles: VecDeque<CycleContribution>,
    cycles_seen: u64,
    registry: Option<Arc<Registry>>,
}

impl PhaseProfiler {
    fn new(window: usize, registry: Option<Arc<Registry>>) -> PhaseProfiler {
        PhaseProfiler {
            nodes: vec![PhaseNode::new(String::new())],
            window: window.max(1),
            cycles: VecDeque::new(),
            cycles_seen: 0,
            registry,
        }
    }

    /// Finds or creates the child of `parent` labelled `label`.
    fn child(&mut self, parent: usize, label: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(label) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(PhaseNode::new(label.to_string()));
        self.nodes[parent].children.insert(label.to_string(), idx);
        idx
    }

    /// Folds one cycle's spans into the tree. Order-independent: each
    /// span's position comes from walking its parent chain, so the live
    /// children-before-parents guard order and a flight snapshot's
    /// serialized order profile identically.
    fn record(&mut self, spans: &[SpanView<'_>]) {
        self.cycles_seen += 1;
        if spans.is_empty() {
            // An empty cycle still ages the window, so a profile left
            // behind by a burst of traced cycles decays.
            self.push_cycle(Vec::new());
            return;
        }
        let by_id: HashMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.span_id, i))
            .collect();
        // Time attributed to children, per parent span.
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for s in spans {
            if let Some(p) = s.parent.filter(|p| by_id.contains_key(p)) {
                *child_ns.entry(p).or_default() += s.dur_ns;
            }
        }
        let mut contribution = Vec::with_capacity(spans.len());
        for s in spans {
            // Walk the parent chain to the root to place this span.
            // Spans whose parent never closed (or fell off a truncated
            // snapshot) root their own subtree.
            let mut chain = Vec::new();
            let mut cursor = *s;
            loop {
                chain.push(format!("{}.{}", cursor.target, cursor.name));
                match cursor.parent.and_then(|p| by_id.get(&p)) {
                    Some(&i) => cursor = spans[i],
                    None => break,
                }
            }
            let mut node = 0usize;
            for label in chain.iter().rev() {
                node = self.child(node, label);
            }
            let self_ns = s
                .dur_ns
                .saturating_sub(child_ns.get(&s.span_id).copied().unwrap_or(0));
            let n = &mut self.nodes[node];
            n.calls += 1;
            n.total_ns += s.dur_ns;
            n.self_ns += self_ns;
            n.buckets[bucket_index(s.dur_ns)] += 1;
            if let Some(registry) = &self.registry {
                if n.metric.is_none() {
                    n.metric = Some(registry.histogram(&format!(
                        "netqos_tick_phase_ns{{phase=\"{}\"}}",
                        escape_label_value(&n.label)
                    )));
                }
                if let Some(metric) = &n.metric {
                    metric.record(s.dur_ns);
                }
            }
            contribution.push((node, s.dur_ns, self_ns));
        }
        self.push_cycle(contribution);
    }

    fn push_cycle(&mut self, contribution: CycleContribution) {
        self.cycles.push_back(contribution);
        while self.cycles.len() > self.window {
            let evicted = self.cycles.pop_front().unwrap_or_default();
            for (node, dur_ns, self_ns) in evicted {
                let n = &mut self.nodes[node];
                n.calls = n.calls.saturating_sub(1);
                n.total_ns = n.total_ns.saturating_sub(dur_ns);
                n.self_ns = n.self_ns.saturating_sub(self_ns);
                let b = bucket_index(dur_ns);
                n.buckets[b] = n.buckets[b].saturating_sub(1);
            }
        }
    }

    /// Summed wall-clock of the top-level phases — the denominator the
    /// per-phase self times partition (they sum to exactly this).
    fn root_total_ns(&self) -> u64 {
        self.nodes[0]
            .children
            .values()
            .map(|&i| self.nodes[i].total_ns)
            .sum()
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"cycles_seen\":{},\"window\":{},\"window_cycles\":{},\"root_total_ns\":{}",
            self.cycles_seen,
            self.window,
            self.cycles.len(),
            self.root_total_ns(),
        );
        out.push_str(",\"phases\":");
        self.render_children(&mut out, 0);
        out.push_str("}\n");
        out
    }

    fn render_children(&self, out: &mut String, node: usize) {
        out.push('[');
        let mut first = true;
        for &child in self.nodes[node].children.values() {
            let n = &self.nodes[child];
            if n.calls == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"phase\":{},\"calls\":{},\"total_ns\":{},\"self_ns\":{},\
                 \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"children\":",
                json_escape(&n.label),
                n.calls,
                n.total_ns,
                n.self_ns,
                n.quantile(0.5),
                n.quantile(0.99),
                n.max_ns(),
            );
            self.render_children(out, child);
            out.push('}');
        }
        out.push(']');
    }

    fn render_folded(&self) -> String {
        let mut out = String::new();
        let mut stack = Vec::new();
        self.fold_into(&mut out, &mut stack, 0);
        out
    }

    fn fold_into(&self, out: &mut String, stack: &mut Vec<String>, node: usize) {
        for (label, &child) in &self.nodes[node].children {
            let n = &self.nodes[child];
            if n.calls == 0 {
                continue;
            }
            stack.push(label.clone());
            let _ = writeln!(out, "{} {}", stack.join(";"), n.self_ns);
            self.fold_into(out, stack, child);
            stack.pop();
        }
    }
}

/// Thread-safe handle around the phase tree: the tick loop records into
/// it, HTTP handler threads render from it.
pub struct ProfileHub {
    inner: Mutex<PhaseProfiler>,
}

impl ProfileHub {
    /// A profiler keeping the most recent `window` cycles (zero behaves
    /// as one).
    pub fn new(window: usize) -> Arc<ProfileHub> {
        Arc::new(ProfileHub {
            inner: Mutex::new(PhaseProfiler::new(window, None)),
        })
    }

    /// Like [`ProfileHub::new`], additionally recording every span
    /// occurrence into `netqos_tick_phase_ns{phase="..."}` histograms in
    /// `registry`.
    pub fn with_registry(window: usize, registry: Arc<Registry>) -> Arc<ProfileHub> {
        Arc::new(ProfileHub {
            inner: Mutex::new(PhaseProfiler::new(window, Some(registry))),
        })
    }

    /// Folds one cycle's live span stream into the profile.
    pub fn record_spans(&self, spans: &[SpanRecord]) {
        let views: Vec<SpanView<'_>> = spans.iter().map(SpanView::from).collect();
        self.inner.lock().record(&views);
    }

    /// Folds one flight-recorder cycle into the profile (offline
    /// `netqos profile` over a snapshot).
    pub fn record_parsed(&self, spans: &[ParsedSpan]) {
        let views: Vec<SpanView<'_>> = spans.iter().map(SpanView::from).collect();
        self.inner.lock().record(&views);
    }

    /// Folds one cycle of pre-built views into the profile.
    pub fn record_views(&self, spans: &[SpanView<'_>]) {
        self.inner.lock().record(spans);
    }

    /// Cycles ever recorded (kept or aged out of the window alike).
    pub fn cycles_seen(&self) -> u64 {
        self.inner.lock().cycles_seen
    }

    /// Summed wall-clock of the windowed top-level phases — by
    /// construction exactly the sum of every phase's self time.
    pub fn root_total_ns(&self) -> u64 {
        self.inner.lock().root_total_ns()
    }

    /// The profile as a nested JSON phase tree (`GET /profile`).
    pub fn to_json(&self) -> String {
        self.inner.lock().render_json()
    }

    /// The profile as flamegraph folded stacks: one
    /// `root;child;leaf <self_ns>` line per phase, in deterministic
    /// depth-first order with children sorted by label. Feed it straight
    /// to `flamegraph.pl` / `inferno`.
    pub fn to_folded(&self) -> String {
        self.inner.lock().render_folded()
    }
}

/// Serves one `GET /profile` request: the JSON phase tree by default,
/// folded stacks with `?format=folded` (or an `Accept: text/plain`
/// preference). Unknown `format=` values get a 400.
pub fn profile_response(hub: &ProfileHub, req: &HttpRequest) -> HttpResponse {
    let folded = match req.query_param("format").as_deref() {
        Some("folded") => true,
        Some("json") => false,
        Some(other) => {
            return HttpResponse::json(
                400,
                format!(
                    "{{\"error\":\"bad format; expected json or folded\",\"got\":{}}}\n",
                    json_escape(other)
                ),
            )
        }
        None => {
            let accept = req.accept.to_ascii_lowercase();
            accept.contains("text/plain") && !accept.contains("application/json")
        }
    };
    if folded {
        HttpResponse {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: hub.to_folded(),
        }
    } else {
        HttpResponse::json(200, hub.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    /// A deterministic synthetic cycle: root with two children, one of
    /// which repeats.
    fn cycle(scale: u64) -> Vec<SpanRecord> {
        let span = |id, parent, target, name, dur| SpanRecord {
            trace_id: 1,
            span_id: id,
            parent,
            target,
            name,
            start_ns: 0,
            dur_ns: dur,
            attrs: Vec::new(),
        };
        // Children-before-parents, the order end_cycle yields.
        vec![
            span(2, Some(1), "monitor.poll", "device", 400 * scale),
            span(3, Some(1), "monitor.poll", "device", 600 * scale),
            span(4, Some(1), "monitor.qos", "evaluate", 1_000 * scale),
            span(1, None, "monitor", "cycle", 3_000 * scale),
        ]
    }

    #[test]
    fn aggregates_calls_totals_and_self_time() {
        let hub = ProfileHub::new(8);
        hub.record_spans(&cycle(1));
        let json = hub.to_json();
        // Root: total 3000, children consume 2000, self 1000.
        assert!(json.contains("\"phase\":\"monitor.cycle\""), "{json}");
        assert!(
            json.contains("\"total_ns\":3000,\"self_ns\":1000"),
            "{json}"
        );
        // The two poll spans fold into one phase node.
        assert!(
            json.contains("\"phase\":\"monitor.poll.device\",\"calls\":2"),
            "{json}"
        );
        assert_eq!(hub.root_total_ns(), 3000);
    }

    #[test]
    fn self_times_partition_the_root_total() {
        let hub = ProfileHub::new(16);
        for scale in 1..=10 {
            hub.record_spans(&cycle(scale));
        }
        let folded = hub.to_folded();
        let sum: u64 = folded
            .lines()
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse::<u64>().ok())
            .sum();
        assert_eq!(sum, hub.root_total_ns());
    }

    #[test]
    fn folded_output_is_deterministic() {
        let render = || {
            let hub = ProfileHub::new(8);
            for scale in [3, 1, 2] {
                hub.record_spans(&cycle(scale));
            }
            (hub.to_folded(), hub.to_json())
        };
        let (folded_a, json_a) = render();
        let (folded_b, json_b) = render();
        assert_eq!(folded_a, folded_b, "same span stream, same bytes");
        assert_eq!(json_a, json_b);
        // Folded lines are parent-prefixed paths, sorted, value = self.
        let lines: Vec<&str> = folded_a.lines().collect();
        assert_eq!(
            lines[0],
            format!("monitor.cycle {}", 6 * 1000),
            "{folded_a}"
        );
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("monitor.cycle;monitor.poll.device ")),
            "{folded_a}"
        );
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted, "folded stacks sort lexicographically");
    }

    #[test]
    fn window_evicts_old_cycles_exactly() {
        let hub = ProfileHub::new(2);
        hub.record_spans(&cycle(1000)); // will be evicted
        hub.record_spans(&cycle(1));
        hub.record_spans(&cycle(1));
        // Only the two scale-1 cycles remain: totals as if the giant
        // cycle never happened.
        assert_eq!(hub.root_total_ns(), 6000);
        let json = hub.to_json();
        assert!(
            json.contains("\"phase\":\"monitor.poll.device\",\"calls\":4"),
            "{json}"
        );
        assert!(json.contains("\"window_cycles\":2"), "{json}");
        assert_eq!(hub.cycles_seen(), 3);
    }

    #[test]
    fn live_tracer_spans_profile_end_to_end() {
        let tracer = Tracer::new();
        tracer.begin_cycle();
        {
            let _root = tracer.span("monitor", "cycle");
            {
                let _poll = tracer.span("monitor.poll", "device");
            }
            let _qos = tracer.span("monitor.qos", "evaluate");
        }
        let spans = tracer.end_cycle();
        let hub = ProfileHub::new(4);
        hub.record_spans(&spans);
        let folded = hub.to_folded();
        assert!(folded.contains("monitor.cycle "), "{folded}");
        assert!(
            folded.contains("monitor.cycle;monitor.poll.device "),
            "{folded}"
        );
        assert!(
            folded.contains("monitor.cycle;monitor.qos.evaluate "),
            "{folded}"
        );
    }

    #[test]
    fn registry_gains_labelled_phase_histograms() {
        let registry = Registry::new();
        let hub = ProfileHub::with_registry(8, registry.clone());
        hub.record_spans(&cycle(1));
        hub.record_spans(&cycle(2));
        let text = registry.render_prometheus();
        assert!(
            text.contains("# TYPE netqos_tick_phase_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("netqos_tick_phase_ns_count{phase=\"monitor.cycle\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("netqos_tick_phase_ns_count{phase=\"monitor.poll.device\"} 4"),
            "{text}"
        );
    }

    #[test]
    fn response_negotiates_format() {
        let hub = ProfileHub::new(4);
        hub.record_spans(&cycle(1));
        let req = |query: &str, accept: &str| HttpRequest {
            method: "GET".into(),
            path: "/profile".into(),
            query: query.into(),
            accept: accept.into(),
        };
        let json = profile_response(&hub, &req("", ""));
        assert_eq!(json.status, 200);
        assert_eq!(json.content_type, "application/json");
        assert!(crate::parse_json(&json.body).is_ok(), "{}", json.body);
        let folded = profile_response(&hub, &req("format=folded", ""));
        assert_eq!(folded.status, 200);
        assert!(folded.content_type.starts_with("text/plain"));
        assert!(folded.body.starts_with("monitor.cycle "), "{}", folded.body);
        // Accept: text/plain implies folded without the parameter.
        let via_accept = profile_response(&hub, &req("", "text/plain"));
        assert_eq!(via_accept.body, folded.body);
        let bad = profile_response(&hub, &req("format=xml", ""));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn orphan_spans_root_their_own_subtree() {
        let orphan = SpanRecord {
            trace_id: 1,
            span_id: 9,
            parent: Some(777), // never recorded
            target: "monitor.poll",
            name: "late",
            start_ns: 0,
            dur_ns: 50,
            attrs: Vec::new(),
        };
        let hub = ProfileHub::new(4);
        hub.record_spans(&[orphan]);
        let folded = hub.to_folded();
        assert_eq!(folded, "monitor.poll.late 50\n");
    }
}
