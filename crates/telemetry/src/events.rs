//! Structured JSONL event sink with per-target level filtering.
//!
//! Each emitted event becomes one JSON object on its own line:
//!
//! ```json
//! {"t_s":1.042,"level":"info","target":"snmp.client","kind":"timeout","fields":{"agent":"10.0.0.7","attempt":2}}
//! ```
//!
//! Targets are dotted paths (`monitor.tick`, `snmp.client`); level
//! filters apply to the longest matching prefix, so
//! `set_target_level("snmp", Warn)` silences `snmp.client` info events
//! while leaving `monitor.*` untouched.

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained tracing (per-request).
    Debug,
    /// Normal operational events.
    Info,
    /// Degraded but functioning (timeouts, drops).
    Warn,
    /// Failures.
    Error,
}

impl Level {
    /// Lowercase name used in the JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!("unknown level {other:?}")),
        }
    }
}

/// A field value; renders as a bare JSON number/bool or a quoted string.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// Appends this value as JSON (non-finite floats become `null`).
    pub fn write_json_into(&self, s: &mut String) {
        match self {
            FieldValue::U64(n) => {
                let _ = write!(s, "{n}");
            }
            FieldValue::I64(n) => {
                let _ = write!(s, "{n}");
            }
            FieldValue::F64(f) if f.is_finite() => {
                let _ = write!(s, "{f}");
            }
            FieldValue::F64(_) => s.push_str("null"),
            FieldValue::Bool(b) => {
                let _ = write!(s, "{b}");
            }
            FieldValue::Str(t) => {
                s.push('"');
                escape_json_into(s, t);
                s.push('"');
            }
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event, as written to the sink.
#[derive(Debug, Clone)]
pub struct Event {
    /// Seconds since the sink was created.
    pub t_s: f64,
    /// Severity.
    pub level: Level,
    /// Dotted origin path, e.g. `monitor.tick`.
    pub target: String,
    /// Event kind within the target, e.g. `qos_violation`.
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t_s\":{:.6},\"level\":\"{}\",\"target\":\"",
            self.t_s,
            self.level.as_str()
        );
        escape_json_into(&mut s, &self.target);
        s.push_str("\",\"kind\":\"");
        escape_json_into(&mut s, &self.kind);
        s.push_str("\",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json_into(&mut s, k);
            s.push_str("\":");
            v.write_json_into(&mut s);
        }
        s.push_str("}}");
        s
    }
}

/// Where emitted events go.
enum SinkOut {
    /// Discard (still counts emitted events).
    Null,
    /// Any buffered writer.
    Writer(BufWriter<Box<dyn Write + Send>>),
}

/// A JSONL event sink with per-target level filtering.
pub struct EventSink {
    start: Instant,
    out: Mutex<SinkOut>,
    default_level: RwLock<Level>,
    target_levels: RwLock<BTreeMap<String, Level>>,
    emitted: std::sync::atomic::AtomicU64,
    suppressed: std::sync::atomic::AtomicU64,
}

impl Default for EventSink {
    fn default() -> Self {
        Self::null()
    }
}

impl EventSink {
    fn with_out(out: SinkOut) -> Self {
        EventSink {
            start: Instant::now(),
            out: Mutex::new(out),
            default_level: RwLock::new(Level::Info),
            target_levels: RwLock::new(BTreeMap::new()),
            emitted: std::sync::atomic::AtomicU64::new(0),
            suppressed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A sink that discards events (the default for tests/benches).
    pub fn null() -> Self {
        Self::with_out(SinkOut::Null)
    }

    /// A sink writing JSONL to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        Self::with_out(SinkOut::Writer(BufWriter::new(w)))
    }

    /// A sink appending JSONL to a file (created if absent).
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = File::create(path)?;
        Ok(Self::to_writer(Box::new(f)))
    }

    /// Sets the level applied when no target-specific level matches.
    pub fn set_default_level(&self, level: Level) {
        *self.default_level.write() = level;
    }

    /// Sets the minimum level for `target` and everything below it
    /// (dotted-prefix match, longest prefix wins).
    pub fn set_target_level(&self, target: impl Into<String>, level: Level) {
        self.target_levels.write().insert(target.into(), level);
    }

    /// Effective minimum level for a target.
    pub fn level_for(&self, target: &str) -> Level {
        let map = self.target_levels.read();
        if map.is_empty() {
            return *self.default_level.read();
        }
        // Longest dotted prefix: try `a.b.c`, then `a.b`, then `a`.
        let mut probe = target;
        loop {
            if let Some(l) = map.get(probe) {
                return *l;
            }
            match probe.rfind('.') {
                Some(i) => probe = &probe[..i],
                None => return *self.default_level.read(),
            }
        }
    }

    /// Whether an event at `level` from `target` would be written.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        level >= self.level_for(target)
    }

    /// Emits one event; filtered events count as suppressed.
    pub fn emit(&self, level: Level, target: &str, kind: &str, fields: Vec<(String, FieldValue)>) {
        use std::sync::atomic::Ordering;
        if !self.enabled(target, level) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = Event {
            t_s: self.start.elapsed().as_secs_f64(),
            level,
            target: target.to_string(),
            kind: kind.to_string(),
            fields,
        };
        self.emitted.fetch_add(1, Ordering::Relaxed);
        let mut out = self.out.lock();
        if let SinkOut::Writer(w) = &mut *out {
            let _ = writeln!(w, "{}", ev.to_json());
        }
    }

    /// Number of events written (post-filter).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of events dropped by level filtering.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        if let SinkOut::Writer(w) = &mut *self.out.lock() {
            let _ = w.flush();
        }
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Builds the `fields` vector for [`EventSink::emit`] from `key => value`
/// pairs; values can be anything `Into<FieldValue>`.
#[macro_export]
macro_rules! fields {
    ($($k:literal => $v:expr),* $(,)?) => {
        vec![$(($k.to_string(), $crate::FieldValue::from($v))),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer handing written bytes back to the test.
    #[derive(Clone)]
    struct Capture(Arc<StdMutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn capture_sink() -> (EventSink, Arc<StdMutex<Vec<u8>>>) {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let sink = EventSink::to_writer(Box::new(Capture(buf.clone())));
        (sink, buf)
    }

    #[test]
    fn emits_valid_jsonl_shape() {
        let (sink, buf) = capture_sink();
        sink.emit(
            Level::Info,
            "snmp.client",
            "timeout",
            fields!["agent" => "10.0.0.7", "attempt" => 2u64, "ok" => false],
        );
        sink.flush();
        let s = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(s.ends_with('\n'));
        assert!(s.contains("\"level\":\"info\""));
        assert!(s.contains("\"target\":\"snmp.client\""));
        assert!(s.contains("\"kind\":\"timeout\""));
        assert!(s.contains("\"agent\":\"10.0.0.7\""));
        assert!(s.contains("\"attempt\":2"));
        assert!(s.contains("\"ok\":false"));
    }

    #[test]
    fn per_target_levels_use_longest_prefix() {
        let sink = EventSink::null();
        sink.set_default_level(Level::Info);
        sink.set_target_level("snmp", Level::Warn);
        sink.set_target_level("snmp.client", Level::Debug);
        assert!(sink.enabled("snmp.client", Level::Debug));
        assert!(!sink.enabled("snmp.transport", Level::Info));
        assert!(sink.enabled("snmp.transport", Level::Warn));
        assert!(sink.enabled("monitor.tick", Level::Info));
        assert!(!sink.enabled("monitor.tick", Level::Debug));
    }

    #[test]
    fn suppressed_events_are_counted_not_written() {
        let (sink, buf) = capture_sink();
        sink.set_default_level(Level::Error);
        sink.emit(Level::Info, "monitor", "tick", vec![]);
        sink.emit(Level::Error, "monitor", "boom", vec![]);
        sink.flush();
        assert_eq!(sink.emitted(), 1);
        assert_eq!(sink.suppressed(), 1);
        let s = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("boom"));
    }

    #[test]
    fn json_escaping() {
        let ev = Event {
            t_s: 0.5,
            level: Level::Warn,
            target: "a".into(),
            kind: "k\"ind\n".into(),
            fields: vec![("msg".to_string(), FieldValue::from("tab\there"))],
        };
        let s = ev.to_json();
        assert!(s.contains("k\\\"ind\\n"));
        assert!(s.contains("tab\\there"));
    }
}
