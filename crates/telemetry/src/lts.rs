//! Long-term stats: an embedded, append-only time-series store.
//!
//! The live registry answers "what is happening *now*"; everything in it
//! dies with the process. This module gives the monitor durable history:
//! per-series segment files holding counters, gauges, and sparse
//! log-bucket histogram states, downsampled through three resolutions
//! (`1s` raw → `1m` → `1h`) so a week of history stays queryable without
//! retaining raw samples.
//!
//! # Disk layout
//!
//! ```text
//! DIR/
//!   series.idx                  # JSONL: {"slug","name","kind"} per series
//!   1s/<slug>/open.seg          # JSONL append tail (mutable, always v1)
//!   1s/<slug>/seg-A-B.seg       # sealed, immutable, covers [A, B] (JSONL, codec v1)
//!   1s/<slug>/seg-A-B.bin       # sealed, immutable, covers [A, B] (binary, codec v2)
//!   1m/<slug>/...               # same shape per resolution
//!   1h/<slug>/...
//! ```
//!
//! Two sealed-segment codecs coexist in one directory and readers handle
//! both transparently: `.seg` files are JSONL (codec v1), `.bin` files
//! are the delta-varint binary format (codec v2, see
//! [`encode_segment_v2`]). The open tail stays JSONL regardless of the
//! configured codec — line-oriented appends keep the
//! truncate-on-torn-line crash recovery — and is transcoded at seal
//! time. [`migrate_store`] converts sealed segments between codecs with
//! the same tmp-file-plus-rename discipline, and the byte-identical
//! query guarantee holds across a migration.
//!
//! Points are stored as *interval* values, which is what makes
//! downsampling a pure merge: counters hold per-interval deltas (merge =
//! sum), gauges hold the sampled value (merge = last), histograms hold
//! per-interval delta [`HistogramState`]s (merge = bucket-wise fold, the
//! same associative merge [`Histogram::merge_from`] uses). A `1m` point
//! at `t = w` aggregates every `1s` point in `[w, w + 60)`; `1h` folds
//! `1m` points the same way. Only *complete* windows are written — a
//! window closes when a newer point at or past its end exists.
//!
//! # Crash safety
//!
//! Appends go to `open.seg`, one JSON document per line. Sealing renames
//! `open.seg` to its immutable `seg-A-B.seg` name — atomic on POSIX, so
//! a crash leaves either the old tail or the sealed file, never a
//! half-sealed hybrid. On open, a torn final line (crash mid-append) is
//! truncated away and reported, never silently read. Sealed segments and
//! the index are rewritten only by [`compact_store`], always via
//! tmp-file-plus-rename.
//!
//! Queries ([`LtsReader`]) read exclusively from disk and canonicalize
//! (sort by time, first write wins), so the same store yields
//! byte-identical JSON before and after a restart or a compaction.

use crate::events::{EventSink, FieldValue, Level};
use crate::json::parse_json;
use crate::metrics::{bucket_high, bucket_low};
use crate::{Counter, Gauge, Histogram, HistogramState, Registry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Storage resolutions, coarsest-last. Raw points land in `1s`; the
/// store folds completed windows into `1m` and `1h` on flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// Raw per-tick points (one simulated second per tick).
    Raw1s,
    /// 60-second windows.
    Min1,
    /// 3600-second windows.
    Hour1,
}

impl Resolution {
    /// All resolutions, finest first.
    pub const ALL: [Resolution; 3] = [Resolution::Raw1s, Resolution::Min1, Resolution::Hour1];

    /// Window width in seconds (1 for raw).
    pub fn window_secs(self) -> u64 {
        match self {
            Resolution::Raw1s => 1,
            Resolution::Min1 => 60,
            Resolution::Hour1 => 3600,
        }
    }

    /// On-disk directory name, also the `step=` query token.
    pub fn dir_name(self) -> &'static str {
        match self {
            Resolution::Raw1s => "1s",
            Resolution::Min1 => "1m",
            Resolution::Hour1 => "1h",
        }
    }

    /// Parses a `step=` token.
    pub fn parse(s: &str) -> Option<Resolution> {
        match s {
            "1s" => Some(Resolution::Raw1s),
            "1m" => Some(Resolution::Min1),
            "1h" => Some(Resolution::Hour1),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            Resolution::Raw1s => 0,
            Resolution::Min1 => 1,
            Resolution::Hour1 => 2,
        }
    }
}

/// What a series holds, fixed at first append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Per-interval deltas of a monotonic counter.
    Counter,
    /// Sampled instantaneous values.
    Gauge,
    /// Per-interval delta histogram states.
    Histogram,
}

impl SeriesKind {
    /// Stable on-disk token.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }

    /// Parses the on-disk token.
    pub fn parse(s: &str) -> Option<SeriesKind> {
        match s {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            "histogram" => Some(SeriesKind::Histogram),
            _ => None,
        }
    }
}

/// One sample's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum PointValue {
    /// Counter delta over the interval ending at the point's time.
    Counter(u64),
    /// Gauge value at the point's time.
    Gauge(i64),
    /// Histogram of samples recorded during the interval.
    Histogram(HistogramState),
}

impl PointValue {
    /// The series kind this value belongs to.
    pub fn kind(&self) -> SeriesKind {
        match self {
            PointValue::Counter(_) => SeriesKind::Counter,
            PointValue::Gauge(_) => SeriesKind::Gauge,
            PointValue::Histogram(_) => SeriesKind::Histogram,
        }
    }
}

/// A timestamped sample. `t` is unix seconds; for downsampled
/// resolutions it is the *window start*.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Unix seconds (window start for `1m`/`1h`).
    pub t: u64,
    /// The payload.
    pub value: PointValue,
}

/// Retention bounds, same shape as the flight recorder's
/// [`RetentionPolicy`](crate::RetentionPolicy): `0` disables a bound.
/// Only sealed segments are ever deleted — the open tail and the index
/// are spared — and age is measured against the newest point in the
/// store (data time), so replayed or simulated clocks work unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtsRetention {
    /// Delete sealed segments whose newest point is older than this many
    /// seconds behind the store's newest point. `0` = keep forever.
    pub max_age_secs: u64,
    /// Total on-disk budget in bytes; oldest sealed segments are deleted
    /// first until the store fits. `0` = unlimited.
    pub max_bytes: u64,
}

impl Default for LtsRetention {
    fn default() -> Self {
        LtsRetention {
            max_age_secs: 7 * 24 * 3600,
            max_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Sealed-segment encoding. The open tail is always JSONL; this picks
/// what a tail is transcoded into when it seals (and what
/// [`compact_store_to`] / [`migrate_store`] write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentCodec {
    /// Codec v1: one JSON document per line, `.seg` extension.
    Jsonl,
    /// Codec v2: delta-varint binary, `.bin` extension.
    Binary,
}

impl SegmentCodec {
    /// On-disk codec version byte (1 = JSONL, 2 = binary).
    pub fn version(self) -> u8 {
        match self {
            SegmentCodec::Jsonl => 1,
            SegmentCodec::Binary => 2,
        }
    }

    /// Parses a CLI token (`jsonl`/`v1` or `binary`/`v2`).
    pub fn parse(s: &str) -> Option<SegmentCodec> {
        match s {
            "jsonl" | "v1" => Some(SegmentCodec::Jsonl),
            "binary" | "v2" => Some(SegmentCodec::Binary),
            _ => None,
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct LtsConfig {
    /// Seal `open.seg` once it holds this many points.
    pub seal_points: usize,
    /// Age/size bounds enforced on every flush.
    pub retention: LtsRetention,
    /// Codec for newly sealed segments. Existing segments of either
    /// codec stay readable.
    pub codec: SegmentCodec,
}

impl Default for LtsConfig {
    fn default() -> Self {
        LtsConfig {
            seal_points: 4096,
            retention: LtsRetention::default(),
            codec: SegmentCodec::Binary,
        }
    }
}

/// The store's self-instrumentation handles. Registered into the live
/// registry by the monitor (where the sampler then records them into the
/// store itself); detached no-op-visible handles otherwise (CLI use).
#[derive(Clone)]
pub struct LtsCounters {
    /// `netqos_lts_segments` — segment files on disk (sealed + open).
    pub segments: Gauge,
    /// `netqos_lts_bytes_on_disk` — total store size in bytes.
    pub bytes_on_disk: Gauge,
    /// `netqos_lts_appends_total` — points accepted.
    pub appends: Counter,
    /// `netqos_lts_dropped_total` — points rejected (out-of-order
    /// timestamp or kind mismatch).
    pub dropped: Counter,
    /// `netqos_lts_compactions_total` — in-process compaction passes.
    pub compactions: Counter,
}

impl LtsCounters {
    /// Handles not attached to any registry.
    pub fn detached() -> Self {
        LtsCounters {
            segments: Gauge::new(),
            bytes_on_disk: Gauge::new(),
            appends: Counter::new(),
            dropped: Counter::new(),
            compactions: Counter::new(),
        }
    }

    /// Handles registered under the canonical `netqos_lts_*` names.
    pub fn register_in(r: &Registry) -> Self {
        LtsCounters {
            segments: r.gauge("netqos_lts_segments"),
            bytes_on_disk: r.gauge("netqos_lts_bytes_on_disk"),
            appends: r.counter("netqos_lts_appends_total"),
            dropped: r.counter("netqos_lts_dropped_total"),
            compactions: r.counter("netqos_lts_compactions_total"),
        }
    }
}

/// One segment deleted by retention.
#[derive(Debug, Clone)]
pub struct RetentionDeletion {
    /// Path relative to the store root.
    pub path: String,
    /// Size of the deleted file.
    pub bytes: u64,
    /// `"age"` or `"size"`.
    pub reason: &'static str,
}

/// What one [`LtsStore::flush`] did.
#[derive(Debug, Clone, Default)]
pub struct FlushReport {
    /// Raw points written to `1s` segments.
    pub points_written: u64,
    /// Downsampled points written to `1m`/`1h`.
    pub downsampled: u64,
    /// Open tails sealed into immutable segments.
    pub segments_sealed: u64,
    /// Sealed segments deleted by retention.
    pub deleted: Vec<RetentionDeletion>,
}

struct SeriesState {
    name: String,
    kind: SeriesKind,
    slug: String,
    /// Raw points appended since the last flush.
    buf: Vec<Point>,
    /// Newest point time per resolution (persisted or buffered).
    last_t: [Option<u64>; 3],
    /// Points in the open tail per resolution.
    open_len: [usize; 3],
    /// First point time in the open tail per resolution.
    open_first: [Option<u64>; 3],
    /// In-memory copy of the open tail per resolution, kept only while
    /// every tail point was written by this process (a preexisting tail
    /// on open leaves it empty). Lets a binary seal encode from memory
    /// instead of re-reading and parsing the JSONL tail; bounded by
    /// `seal_points` entries per resolution.
    open_pts: [Vec<Point>; 3],
    /// Flushed-but-not-yet-downsampled points feeding `1m` (raw points)
    /// and `1h` (`1m` points).
    pending: [Vec<Point>; 2],
    /// Needs a `series.idx` line on next flush.
    new_to_index: bool,
}

/// The writable store. Single-writer by design: the monitor owns one
/// `LtsStore` and flushes on its baseline-save cadence; readers go
/// through [`LtsReader`], which never touches writer state.
pub struct LtsStore {
    dir: PathBuf,
    config: LtsConfig,
    counters: LtsCounters,
    series: BTreeMap<String, SeriesState>,
    warnings: Vec<String>,
}

impl LtsStore {
    /// Opens (creating if absent) the store at `dir`, recovering from a
    /// torn final line in any open tail by truncating it away. Recovery
    /// notes are queued for [`LtsStore::take_warnings`].
    pub fn open(
        dir: impl Into<PathBuf>,
        config: LtsConfig,
        counters: LtsCounters,
    ) -> io::Result<LtsStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for res in Resolution::ALL {
            fs::create_dir_all(dir.join(res.dir_name()))?;
        }
        let mut store = LtsStore {
            dir,
            config,
            counters,
            series: BTreeMap::new(),
            warnings: Vec::new(),
        };
        store.load_index()?;
        let names: Vec<String> = store.series.keys().cloned().collect();
        for name in names {
            store.recover_series(&name)?;
        }
        store.update_disk_gauges();
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Drains recovery/consistency warnings accumulated so far.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    fn load_index(&mut self) -> io::Result<()> {
        let idx = self.dir.join("series.idx");
        let text = match fs::read_to_string(&idx) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut good = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                good += line.len() + 1;
                continue;
            }
            match parse_index_line(line) {
                Some((slug, name, kind)) => {
                    good += line.len() + 1;
                    self.series
                        .entry(name.clone())
                        .or_insert_with(|| SeriesState {
                            name,
                            kind,
                            slug,
                            buf: Vec::new(),
                            last_t: [None; 3],
                            open_len: [0; 3],
                            open_first: [None; 3],
                            open_pts: [Vec::new(), Vec::new(), Vec::new()],
                            pending: [Vec::new(), Vec::new()],
                            new_to_index: false,
                        });
                }
                None => {
                    // Torn or foreign tail: keep the good prefix only.
                    self.warnings.push(format!(
                        "series.idx: unparseable line at byte {good}; truncating index tail"
                    ));
                    truncate_file(&idx, good as u64)?;
                    break;
                }
            }
        }
        Ok(())
    }

    fn recover_series(&mut self, name: &str) -> io::Result<()> {
        // One mutable borrow per series: destructure so the series map,
        // the root dir, and the warnings queue are disjoint borrows.
        let LtsStore {
            dir,
            series,
            warnings,
            ..
        } = self;
        let Some(s) = series.get_mut(name) else {
            return Ok(());
        };
        for res in Resolution::ALL {
            let sdir = dir.join(res.dir_name()).join(&s.slug);
            let sealed_last = segment_files(&sdir)?.iter().map(|x| x.last).max();
            let mut last = sealed_last;
            let open = sdir.join("open.seg");
            if open.exists() {
                let (pts, warn) = read_segment_recovering(&open, s.kind)?;
                if let Some(w) = warn {
                    warnings.push(w);
                }
                let stale = matches!(
                    (pts.last(), sealed_last),
                    (Some(p), Some(sl)) if p.t <= sl
                );
                if stale {
                    // Leftover of a crash between sealing the tail and
                    // removing it (binary seals copy then delete): the
                    // sealed segment already holds every point.
                    fs::remove_file(&open)?;
                    warnings.push(format!(
                        "{}: stale open tail from interrupted seal; removed",
                        open.display()
                    ));
                } else {
                    s.open_len[res.index()] = pts.len();
                    s.open_first[res.index()] = pts.first().map(|p| p.t);
                    if let Some(p) = pts.last() {
                        last = Some(last.map_or(p.t, |l: u64| l.max(p.t)));
                    }
                }
            }
            s.last_t[res.index()] = last;
        }
        // Rebuild the pending downsample buffers: every finer-resolution
        // point past the last written window belongs to a window that
        // has not been folded yet.
        for (pi, (fine, coarse)) in [
            (Resolution::Raw1s, Resolution::Min1),
            (Resolution::Min1, Resolution::Hour1),
        ]
        .into_iter()
        .enumerate()
        {
            let cutoff = match s.last_t[coarse.index()] {
                Some(w) => w + coarse.window_secs(),
                None => 0,
            };
            s.pending[pi] = read_series_points(dir, &s.slug, s.kind, fine, cutoff, u64::MAX);
        }
        Ok(())
    }

    /// Appends one point. Points must arrive in strictly increasing time
    /// order per series and keep their first-seen kind; violations are
    /// counted in `netqos_lts_dropped_total` and discarded.
    pub fn append(&mut self, name: &str, t: u64, value: PointValue) {
        let kind = value.kind();
        let s = self
            .series
            .entry(name.to_string())
            .or_insert_with(|| SeriesState {
                name: name.to_string(),
                kind,
                slug: slug_for(name),
                buf: Vec::new(),
                last_t: [None; 3],
                open_len: [0; 3],
                open_first: [None; 3],
                open_pts: [Vec::new(), Vec::new(), Vec::new()],
                pending: [Vec::new(), Vec::new()],
                new_to_index: true,
            });
        if s.kind != kind {
            self.counters.dropped.inc();
            return;
        }
        let newest = s.buf.last().map(|p| p.t).or(s.last_t[0]);
        if newest.is_some_and(|n| t <= n) {
            self.counters.dropped.inc();
            return;
        }
        s.buf.push(Point { t, value });
        self.counters.appends.inc();
    }

    /// Writes buffered points to disk, folds completed `1m`/`1h`
    /// windows, seals oversized tails, and enforces retention.
    pub fn flush(&mut self) -> io::Result<FlushReport> {
        let mut report = FlushReport::default();
        let names: Vec<String> = self
            .series
            .iter()
            .filter(|(_, s)| {
                s.new_to_index
                    || !s.buf.is_empty()
                    || !s.pending[0].is_empty()
                    || !s.pending[1].is_empty()
            })
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            self.flush_series(&name, &mut report)?;
        }
        report.deleted = self.enforce_retention()?;
        self.update_disk_gauges();
        Ok(report)
    }

    fn flush_series(&mut self, name: &str, report: &mut FlushReport) -> io::Result<()> {
        // One mutable borrow per series per flush (not one per step):
        // destructure so `s` coexists with the dir and config borrows.
        let LtsStore {
            dir,
            config,
            series,
            ..
        } = self;
        let Some(s) = series.get_mut(name) else {
            return Ok(());
        };
        if s.new_to_index {
            let line = format!(
                "{{\"slug\":\"{}\",\"name\":{},\"kind\":\"{}\"}}\n",
                s.slug,
                json_escape(&s.name),
                s.kind.as_str()
            );
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("series.idx"))?;
            f.write_all(line.as_bytes())?;
            s.new_to_index = false;
        }

        let buf = std::mem::take(&mut s.buf);
        if !buf.is_empty() {
            report.points_written += buf.len() as u64;
            report.segments_sealed += write_points(dir, config, s, Resolution::Raw1s, &buf)?;
            s.last_t[0] = buf.last().map(|p| p.t).or(s.last_t[0]);
            s.pending[0].extend(buf);
        }

        // Fold completed windows, finest resolution first so a fresh
        // `1m` point can immediately complete an `1h` window.
        for (pi, coarse) in [Resolution::Min1, Resolution::Hour1]
            .into_iter()
            .enumerate()
        {
            let window = coarse.window_secs();
            // The clock that closes windows is the newest point of the
            // finer resolution.
            let Some(newest) = s.last_t[pi] else { continue };
            let mut produced: Vec<Point> = Vec::new();
            while let Some(first) = s.pending[pi].first() {
                let w = (first.t / window) * window;
                if newest < w + window {
                    break;
                }
                let split = s.pending[pi].partition_point(|p| p.t < w + window);
                let consumed: Vec<Point> = s.pending[pi].drain(..split).collect();
                if let Some(v) = downsample(s.kind, &consumed) {
                    produced.push(Point { t: w, value: v });
                }
            }
            if produced.is_empty() {
                continue;
            }
            report.downsampled += produced.len() as u64;
            report.segments_sealed += write_points(dir, config, s, coarse, &produced)?;
            s.last_t[coarse.index()] = produced.last().map(|p| p.t).or(s.last_t[coarse.index()]);
            if coarse == Resolution::Min1 {
                s.pending[1].extend(produced);
            }
        }
        Ok(())
    }

    fn enforce_retention(&mut self) -> io::Result<Vec<RetentionDeletion>> {
        let ret = self.config.retention;
        let mut deleted = Vec::new();
        if ret.max_age_secs == 0 && ret.max_bytes == 0 {
            return Ok(deleted);
        }
        let newest = self
            .series
            .values()
            .flat_map(|s| s.last_t.iter().flatten().copied())
            .max()
            .unwrap_or(0);
        // All sealed segments, oldest data first.
        let mut segs: Vec<(PathBuf, u64, u64)> = Vec::new(); // (path, last_t, bytes)
        let mut total_bytes = 0u64;
        for res in Resolution::ALL {
            let rdir = self.dir.join(res.dir_name());
            for entry in fs::read_dir(&rdir)? {
                let sdir = entry?.path();
                if !sdir.is_dir() {
                    continue;
                }
                for seg in segment_files(&sdir)? {
                    total_bytes += seg.bytes;
                    segs.push((seg.path, seg.last, seg.bytes));
                }
                let open = sdir.join("open.seg");
                if let Ok(m) = fs::metadata(&open) {
                    total_bytes += m.len();
                }
            }
        }
        total_bytes += fs::metadata(self.dir.join("series.idx"))
            .map(|m| m.len())
            .unwrap_or(0);
        segs.sort_by_key(|&(_, last, _)| last);

        let mut survivors = Vec::new();
        for (path, last, bytes) in segs {
            if ret.max_age_secs > 0 && newest.saturating_sub(last) > ret.max_age_secs {
                fs::remove_file(&path)?;
                total_bytes -= bytes;
                deleted.push(RetentionDeletion {
                    path: rel_path(&self.dir, &path),
                    bytes,
                    reason: "age",
                });
            } else {
                survivors.push((path, bytes));
            }
        }
        if ret.max_bytes > 0 {
            for (path, bytes) in survivors {
                if total_bytes <= ret.max_bytes {
                    break;
                }
                fs::remove_file(&path)?;
                total_bytes -= bytes;
                deleted.push(RetentionDeletion {
                    path: rel_path(&self.dir, &path),
                    bytes,
                    reason: "size",
                });
            }
        }
        Ok(deleted)
    }

    /// In-process compaction: flushes buffered points, then rewrites
    /// every series/resolution as a single sealed segment (the
    /// [`compact_store`] pass) and resets the writer's open-tail state
    /// to match — the open tails were folded into the sealed segment
    /// and their files removed. Readers canonicalize, so answers are
    /// byte-identical before and after; only the layout changes. This
    /// is the safe form of [`compact_store`] for a store a writer has
    /// open.
    pub fn compact(&mut self) -> io::Result<CompactReport> {
        self.flush()?;
        let report = compact_store_to(&self.dir, self.config.codec)?;
        for s in self.series.values_mut() {
            s.open_len = [0; 3];
            s.open_first = [None; 3];
            s.open_pts = [Vec::new(), Vec::new(), Vec::new()];
        }
        self.counters.compactions.inc();
        self.update_disk_gauges();
        Ok(report)
    }

    fn update_disk_gauges(&self) {
        let (mut segments, mut bytes) = (0i64, 0u64);
        bytes += fs::metadata(self.dir.join("series.idx"))
            .map(|m| m.len())
            .unwrap_or(0);
        for res in Resolution::ALL {
            let rdir = self.dir.join(res.dir_name());
            let Ok(entries) = fs::read_dir(&rdir) else {
                continue;
            };
            for sdir in entries.flatten() {
                let sdir = sdir.path();
                let Ok(files) = fs::read_dir(&sdir) else {
                    continue;
                };
                for f in files.flatten() {
                    if f.path()
                        .extension()
                        .is_some_and(|e| e == "seg" || e == "bin")
                    {
                        segments += 1;
                        bytes += f.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
        }
        self.counters.segments.set(segments);
        self.counters
            .bytes_on_disk
            .set(bytes.min(i64::MAX as u64) as i64);
    }
}

/// Appends `pts` to `s`'s open tail at `res`, sealing the tail into the
/// configured codec once it crosses the configured size. Returns
/// segments sealed. Free function so [`LtsStore::flush_series`] can
/// hold a single mutable borrow of the series state.
fn write_points(
    dir: &Path,
    config: &LtsConfig,
    s: &mut SeriesState,
    res: Resolution,
    pts: &[Point],
) -> io::Result<u64> {
    let ri = res.index();
    let sdir = dir.join(res.dir_name()).join(&s.slug);
    fs::create_dir_all(&sdir)?;
    let open = sdir.join("open.seg");
    let mut f = OpenOptions::new().create(true).append(true).open(&open)?;
    let mut body = String::new();
    for p in pts {
        body.push_str(&point_to_json(p));
        body.push('\n');
    }
    f.write_all(body.as_bytes())?;
    drop(f);
    if s.open_first[ri].is_none() {
        s.open_first[ri] = pts.first().map(|p| p.t);
    }
    if s.open_pts[ri].len() == s.open_len[ri] {
        s.open_pts[ri].extend_from_slice(pts);
    } else {
        s.open_pts[ri].clear();
    }
    s.open_len[ri] += pts.len();
    let mut sealed = 0;
    if s.open_len[ri] >= config.seal_points {
        match config.codec {
            SegmentCodec::Jsonl => {
                let first = s.open_first[ri].unwrap_or(0);
                let last = pts.last().map(|p| p.t).unwrap_or(first);
                fs::rename(
                    &open,
                    sdir.join(segment_file_name(first, last, config.codec)),
                )?;
            }
            SegmentCodec::Binary => {
                // The tail spans many flushes; encode it from the
                // in-memory copy when this process wrote every point,
                // else re-read it whole. Rename is atomic and the
                // tail is removed only after the sealed file exists; a
                // crash in between leaves both, which readers
                // canonicalize and `open` cleans up as a stale tail.
                let tail = if s.open_pts[ri].len() == s.open_len[ri] {
                    std::mem::take(&mut s.open_pts[ri])
                } else {
                    read_segment_recovering(&open, s.kind)?.0
                };
                let Some((first, last)) = tail.first().zip(tail.last()).map(|(a, b)| (a.t, b.t))
                else {
                    return Ok(0);
                };
                let tmp = sdir.join("seal.tmp");
                fs::write(&tmp, encode_segment_v2(s.kind, &tail))?;
                fs::rename(
                    &tmp,
                    sdir.join(segment_file_name(first, last, config.codec)),
                )?;
                fs::remove_file(&open)?;
            }
        }
        s.open_len[ri] = 0;
        s.open_first[ri] = None;
        s.open_pts[ri].clear();
        sealed = 1;
    }
    Ok(sealed)
}

/// Folds one completed window of finer-resolution points into a single
/// coarser point: counters sum their deltas, gauges keep the last value,
/// histograms merge bucket-wise (count/sum add, min/max fold). `None`
/// for an empty window.
pub fn downsample(kind: SeriesKind, window: &[Point]) -> Option<PointValue> {
    if window.is_empty() {
        return None;
    }
    Some(match kind {
        SeriesKind::Counter => PointValue::Counter(
            window
                .iter()
                .map(|p| match &p.value {
                    PointValue::Counter(v) => *v,
                    _ => 0,
                })
                .sum(),
        ),
        SeriesKind::Gauge => window.iter().rev().find_map(|p| match &p.value {
            PointValue::Gauge(v) => Some(PointValue::Gauge(*v)),
            _ => None,
        })?,
        SeriesKind::Histogram => {
            let mut merged = HistogramState {
                min: u64::MAX,
                ..HistogramState::default()
            };
            let mut buckets: BTreeMap<u32, u64> = BTreeMap::new();
            for p in window {
                let PointValue::Histogram(h) = &p.value else {
                    continue;
                };
                for &(i, n) in &h.buckets {
                    *buckets.entry(i).or_insert(0) += n;
                }
                merged.count += h.count;
                merged.sum += h.sum;
                merged.min = merged.min.min(h.min);
                merged.max = merged.max.max(h.max);
            }
            merged.buckets = buckets.into_iter().collect();
            PointValue::Histogram(merged)
        }
    })
}

/// Bridges the live [`Registry`] into an [`LtsStore`]: each call emits
/// one point per registered metric at time `t` — counters as deltas
/// since the previous call (a decrease is treated as a restart, so the
/// current value is the delta), gauges as-is, histograms as delta
/// states with min/max re-derived from the delta's occupied bucket
/// bounds.
#[derive(Default)]
pub struct RegistrySampler {
    prev_counters: BTreeMap<String, u64>,
    prev_hists: BTreeMap<String, HistogramState>,
}

impl RegistrySampler {
    /// A sampler with no history (first sample emits full values).
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples every metric in `reg` into `store` at time `t`.
    pub fn sample(&mut self, reg: &Registry, store: &mut LtsStore, t: u64) {
        for (name, c) in reg.counter_entries() {
            let cur = c.get();
            let prev = self.prev_counters.insert(name.clone(), cur).unwrap_or(0);
            let delta = if cur >= prev { cur - prev } else { cur };
            store.append(&name, t, PointValue::Counter(delta));
        }
        for (name, g) in reg.gauge_entries() {
            store.append(&name, t, PointValue::Gauge(g.get()));
        }
        for (name, h) in reg.histogram_entries() {
            let cur = h.to_state();
            let prev = self.prev_hists.insert(name.clone(), cur.clone());
            let delta = hist_delta(prev.as_ref(), &cur);
            store.append(&name, t, PointValue::Histogram(delta));
        }
    }
}

/// The per-interval difference between two cumulative histogram states.
/// A count regression reads as a process restart: the current state *is*
/// the interval. Interval min/max are estimated from the occupied delta
/// buckets' bounds (within the histogram's ≤6.25% bucket error) since
/// cumulative extremes don't subtract.
pub fn hist_delta(prev: Option<&HistogramState>, cur: &HistogramState) -> HistogramState {
    let Some(prev) = prev else { return cur.clone() };
    if cur.count < prev.count {
        return cur.clone();
    }
    let prev_map: BTreeMap<u32, u64> = prev.buckets.iter().copied().collect();
    let mut buckets: Vec<(u32, u64)> = Vec::new();
    for &(i, n) in &cur.buckets {
        let d = n.saturating_sub(prev_map.get(&i).copied().unwrap_or(0));
        if d > 0 {
            buckets.push((i, d));
        }
    }
    let count = cur.count - prev.count;
    let (min, max) = if count == 0 || buckets.is_empty() {
        (u64::MAX, 0)
    } else {
        (
            bucket_low(buckets[0].0 as usize),
            bucket_high(buckets[buckets.len() - 1].0 as usize),
        )
    };
    HistogramState {
        buckets,
        count,
        sum: cur.sum.saturating_sub(prev.sum),
        min,
        max,
    }
}

/// `*`-wildcard series selector: `*` matches any run of characters,
/// everything else is literal. `netqos_lts_*` matches the store's own
/// metrics; `*` matches everything.
pub fn selector_matches(pattern: &str, name: &str) -> bool {
    fn match_at(pat: &[u8], s: &[u8]) -> bool {
        match pat.first() {
            None => s.is_empty(),
            Some(b'*') => (0..=s.len()).any(|i| match_at(&pat[1..], &s[i..])),
            Some(&c) => s.first() == Some(&c) && match_at(&pat[1..], &s[1..]),
        }
    }
    match_at(pattern.as_bytes(), name.as_bytes())
}

/// A series the index knows about.
#[derive(Debug, Clone)]
pub struct SeriesInfo {
    /// Metric name (may embed a `{label="..."}` set).
    pub name: String,
    /// Fixed kind.
    pub kind: SeriesKind,
    /// Directory slug.
    pub slug: String,
}

/// Read-only, stateless view of a store directory. Safe to use from
/// HTTP handler threads while the monitor's [`LtsStore`] keeps writing:
/// every query re-reads from disk and canonicalizes, so results depend
/// only on persisted bytes.
#[derive(Clone)]
pub struct LtsReader {
    dir: PathBuf,
}

impl LtsReader {
    /// A reader over `dir` (which need not exist yet — queries over a
    /// missing store are empty, not errors).
    pub fn open(dir: impl Into<PathBuf>) -> LtsReader {
        LtsReader { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Newest raw-resolution point timestamp across every indexed
    /// series, reading only segment filenames (which encode their time
    /// range) and open tails. `None` for an empty or missing store.
    pub fn newest_t(&self) -> Option<u64> {
        let mut newest = None;
        for info in self.index() {
            let sdir = self.dir.join(Resolution::Raw1s.dir_name()).join(&info.slug);
            if let Ok(segs) = segment_files(&sdir) {
                if let Some(last) = segs.iter().map(|s| s.last).max() {
                    newest = Some(newest.map_or(last, |n: u64| n.max(last)));
                }
            }
            if let Ok(text) = fs::read_to_string(sdir.join("open.seg")) {
                for line in text.lines() {
                    if let Some(p) = point_from_json(line) {
                        newest = Some(newest.map_or(p.t, |n: u64| n.max(p.t)));
                    }
                }
            }
        }
        newest
    }

    /// Every indexed series, sorted by name, duplicates dropped
    /// (first index line wins). Unparseable lines are skipped.
    pub fn index(&self) -> Vec<SeriesInfo> {
        let Ok(text) = fs::read_to_string(self.dir.join("series.idx")) else {
            return Vec::new();
        };
        let mut seen: BTreeMap<String, SeriesInfo> = BTreeMap::new();
        for line in text.lines() {
            if let Some((slug, name, kind)) = parse_index_line(line) {
                seen.entry(name.clone())
                    .or_insert(SeriesInfo { name, kind, slug });
            }
        }
        seen.into_values().collect()
    }

    /// Canonical points for one series/resolution in `[start, end]`:
    /// sealed segments oldest-first, then the open tail, sorted by time,
    /// first write winning any duplicate timestamp.
    pub fn series_points(
        &self,
        info: &SeriesInfo,
        res: Resolution,
        start: u64,
        end: u64,
    ) -> Vec<Point> {
        read_series_points(&self.dir, &info.slug, info.kind, res, start, end)
    }

    /// Serves `GET /query`: every indexed series matching `selector`,
    /// at resolution `step`, restricted to `[start, end]`. The output is
    /// deterministic — sorted by series name, canonical point order —
    /// so identical stores yield byte-identical JSON.
    pub fn query(&self, selector: &str, start: u64, end: u64, step: Resolution) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"start\":{start},\"end\":{end},\"step\":\"{}\",\"series\":[",
            step.dir_name()
        );
        let mut first = true;
        for info in self.index() {
            if !selector_matches(selector, &info.name) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":\"{}\",\"points\":[",
                json_escape(&info.name),
                info.kind.as_str()
            );
            let pts = self.series_points(&info, step, start, end);
            for (i, p) in pts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match &p.value {
                    PointValue::Counter(v) => {
                        let _ = write!(out, "[{},{}]", p.t, v);
                    }
                    PointValue::Gauge(v) => {
                        let _ = write!(out, "[{},{}]", p.t, v);
                    }
                    PointValue::Histogram(h) => {
                        let hist = Histogram::from_state(h);
                        let _ = write!(
                            out,
                            "{{\"t\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                            p.t,
                            h.count,
                            h.sum,
                            hist.min(),
                            h.max,
                            hist.quantile(0.50),
                            hist.quantile(0.99),
                        );
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// A parsed `range=<start>:<end>` pair (either side may be empty:
/// `range=100:` means "from 100 on", `range=:200` "up to 200").
pub fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once(':')?;
    let start = if a.is_empty() { 0 } else { a.parse().ok()? };
    let end = if b.is_empty() {
        u64::MAX
    } else {
        b.parse().ok()?
    };
    (start <= end).then_some((start, end))
}

/// What [`verify_store`] found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Indexed series.
    pub series: usize,
    /// Segment files scanned (sealed + open).
    pub segments: u64,
    /// Points parsed.
    pub points: u64,
    /// Bytes on disk.
    pub bytes: u64,
    /// Human-readable problems; empty means the store is sound.
    pub issues: Vec<String>,
}

/// Structural check of a store: the index parses, every segment's every
/// line parses as the indexed kind, timestamps are strictly increasing
/// within a file, and sealed filenames match their contents' range.
pub fn verify_store(dir: &Path) -> io::Result<VerifyReport> {
    let mut rep = VerifyReport::default();
    let reader = LtsReader::open(dir);
    let idx_path = dir.join("series.idx");
    if let Ok(text) = fs::read_to_string(&idx_path) {
        rep.bytes += text.len() as u64;
        for (ln, line) in text.lines().enumerate() {
            if !line.trim().is_empty() && parse_index_line(line).is_none() {
                rep.issues
                    .push(format!("series.idx line {}: unparseable", ln + 1));
            }
        }
    }
    let index = reader.index();
    rep.series = index.len();
    let known: BTreeMap<&str, &SeriesInfo> = index.iter().map(|i| (i.slug.as_str(), i)).collect();
    for res in Resolution::ALL {
        let rdir = dir.join(res.dir_name());
        let Ok(entries) = fs::read_dir(&rdir) else {
            continue;
        };
        for entry in entries.flatten() {
            let sdir = entry.path();
            if !sdir.is_dir() {
                continue;
            }
            let slug = sdir
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            let Some(info) = known.get(slug.as_str()) else {
                rep.issues
                    .push(format!("{}/{slug}: not in series.idx", res.dir_name()));
                continue;
            };
            let mut files: Vec<PathBuf> = Vec::new();
            for f in fs::read_dir(&sdir)?.flatten() {
                files.push(f.path());
            }
            files.sort();
            for path in files {
                let fname = path
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .to_string();
                let sealed = parse_segment_name(&fname);
                if fname != "open.seg" && sealed.is_none() {
                    rep.issues.push(format!(
                        "{}/{slug}/{fname}: unexpected file",
                        res.dir_name()
                    ));
                    continue;
                }
                rep.segments += 1;
                rep.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                if let Some((_, _, SegmentCodec::Binary)) = sealed {
                    // Binary segments are immutable: decode strictly and
                    // cross-check the header's fold against the points.
                    let buf = fs::read(&path)?;
                    match decode_segment_v2(&buf) {
                        Err(e) => {
                            rep.issues
                                .push(format!("{}/{slug}/{fname}: {e}", res.dir_name()));
                        }
                        Ok((header, pts)) => {
                            rep.points += pts.len() as u64;
                            if header.kind != info.kind {
                                rep.issues.push(format!(
                                    "{}/{slug}/{fname}: kind mismatch (index says {})",
                                    res.dir_name(),
                                    info.kind.as_str()
                                ));
                            }
                            if pts.windows(2).any(|w| w[1].t <= w[0].t) {
                                rep.issues.push(format!(
                                    "{}/{slug}/{fname}: time not increasing",
                                    res.dir_name()
                                ));
                            }
                            let (first_t, last_t) =
                                (pts.first().map(|p| p.t), pts.last().map(|p| p.t));
                            if let Some(hs) = header.stats {
                                let mut sum = 0u64;
                                let (mut mn, mut mx) = (u64::MAX, 0u64);
                                for p in &pts {
                                    if let PointValue::Counter(v) = &p.value {
                                        sum = sum.saturating_add(*v);
                                        mn = mn.min(*v);
                                        mx = mx.max(*v);
                                    }
                                }
                                if pts.is_empty() {
                                    mn = 0;
                                }
                                if hs
                                    != (SegmentStats {
                                        sum,
                                        min: mn,
                                        max: mx,
                                    })
                                {
                                    rep.issues.push(format!(
                                        "{}/{slug}/{fname}: header stats disagree with points",
                                        res.dir_name()
                                    ));
                                }
                            }
                            if let Some((a, b, _)) = sealed {
                                if first_t != Some(a) || last_t != Some(b) {
                                    rep.issues.push(format!(
                                        "{}/{slug}/{fname}: name range [{a},{b}] != content range [{:?},{:?}]",
                                        res.dir_name(),
                                        first_t,
                                        last_t
                                    ));
                                }
                            }
                        }
                    }
                    continue;
                }
                let text = fs::read_to_string(&path)?;
                let mut last_t: Option<u64> = None;
                let mut first_t: Option<u64> = None;
                let mut bad = false;
                for (ln, line) in text.lines().enumerate() {
                    match point_from_json(line) {
                        Some(p) if p.value.kind() == info.kind => {
                            if last_t.is_some_and(|l| p.t <= l) {
                                rep.issues.push(format!(
                                    "{}/{slug}/{fname} line {}: time not increasing",
                                    res.dir_name(),
                                    ln + 1
                                ));
                            }
                            first_t.get_or_insert(p.t);
                            last_t = Some(p.t);
                            rep.points += 1;
                        }
                        Some(_) => {
                            rep.issues.push(format!(
                                "{}/{slug}/{fname} line {}: kind mismatch (index says {})",
                                res.dir_name(),
                                ln + 1,
                                info.kind.as_str()
                            ));
                            bad = true;
                        }
                        None => {
                            rep.issues.push(format!(
                                "{}/{slug}/{fname} line {}: unparseable",
                                res.dir_name(),
                                ln + 1
                            ));
                            bad = true;
                        }
                    }
                }
                if let Some((a, b, _)) = sealed {
                    if !bad && (first_t != Some(a) || last_t != Some(b)) {
                        rep.issues.push(format!(
                            "{}/{slug}/{fname}: name range [{a},{b}] != content range [{:?},{:?}]",
                            res.dir_name(),
                            first_t,
                            last_t
                        ));
                    }
                }
            }
        }
    }
    Ok(rep)
}

/// What [`compact_store`] did.
#[derive(Debug, Clone, Default)]
pub struct CompactReport {
    /// Segment files before/after.
    pub segments_before: u64,
    /// Segment files after.
    pub segments_after: u64,
    /// Store bytes before.
    pub bytes_before: u64,
    /// Store bytes after.
    pub bytes_after: u64,
}

/// [`compact_store_to`] with the default (binary) codec.
pub fn compact_store(dir: &Path) -> io::Result<CompactReport> {
    compact_store_to(dir, SegmentCodec::Binary)
}

/// Rewrites every series/resolution as a single sealed segment (encoded
/// in `codec`) holding its canonical point sequence, and the index as
/// one deduplicated, sorted file — both via tmp-file-plus-rename.
/// Because queries already canonicalize, a query over the compacted
/// store is byte-identical to one over the original. Must not run while
/// a writer has the store open (offline maintenance only).
pub fn compact_store_to(dir: &Path, codec: SegmentCodec) -> io::Result<CompactReport> {
    let mut rep = CompactReport::default();
    let reader = LtsReader::open(dir);
    let index = reader.index();

    let measure = |rep_seg: &mut u64, rep_bytes: &mut u64| -> io::Result<()> {
        *rep_seg = 0;
        *rep_bytes = fs::metadata(dir.join("series.idx"))
            .map(|m| m.len())
            .unwrap_or(0);
        for res in Resolution::ALL {
            let rdir = dir.join(res.dir_name());
            let Ok(entries) = fs::read_dir(&rdir) else {
                continue;
            };
            for sdir in entries.flatten() {
                let Ok(files) = fs::read_dir(sdir.path()) else {
                    continue;
                };
                for f in files.flatten() {
                    if f.path()
                        .extension()
                        .is_some_and(|e| e == "seg" || e == "bin")
                    {
                        *rep_seg += 1;
                        *rep_bytes += f.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
        }
        Ok(())
    };
    measure(&mut rep.segments_before, &mut rep.bytes_before)?;

    // Rewrite the index: sorted, deduplicated.
    if !index.is_empty() {
        let tmp = dir.join("series.idx.tmp");
        let mut body = String::new();
        for info in &index {
            let _ = writeln!(
                body,
                "{{\"slug\":\"{}\",\"name\":{},\"kind\":\"{}\"}}",
                info.slug,
                json_escape(&info.name),
                info.kind.as_str()
            );
        }
        fs::write(&tmp, body)?;
        fs::rename(&tmp, dir.join("series.idx"))?;
    }

    for info in &index {
        for res in Resolution::ALL {
            let sdir = dir.join(res.dir_name()).join(&info.slug);
            if !sdir.is_dir() {
                continue;
            }
            let pts = read_series_points(dir, &info.slug, info.kind, res, 0, u64::MAX);
            let mut old: Vec<PathBuf> = Vec::new();
            for f in fs::read_dir(&sdir)?.flatten() {
                if f.path()
                    .extension()
                    .is_some_and(|e| e == "seg" || e == "bin")
                {
                    old.push(f.path());
                }
            }
            if pts.is_empty() {
                for p in old {
                    fs::remove_file(p)?;
                }
                continue;
            }
            let dest = sdir.join(segment_file_name(pts[0].t, pts[pts.len() - 1].t, codec));
            let tmp = sdir.join("compact.tmp");
            match codec {
                SegmentCodec::Jsonl => {
                    let mut body = String::new();
                    for p in &pts {
                        body.push_str(&point_to_json(p));
                        body.push('\n');
                    }
                    fs::write(&tmp, body)?;
                }
                SegmentCodec::Binary => {
                    fs::write(&tmp, encode_segment_v2(info.kind, &pts))?;
                }
            }
            fs::rename(&tmp, &dest)?;
            for p in old {
                if p != dest {
                    fs::remove_file(p)?;
                }
            }
        }
    }
    measure(&mut rep.segments_after, &mut rep.bytes_after)?;
    Ok(rep)
}

/// What [`migrate_store`] did.
#[derive(Debug, Clone, Default)]
pub struct MigrateReport {
    /// Sealed segments rewritten into the target codec.
    pub segments_converted: u64,
    /// Sealed segments already in the target codec, left untouched.
    pub segments_skipped: u64,
    /// Total sealed-segment bytes before/after.
    pub bytes_before: u64,
    /// Total sealed-segment bytes after.
    pub bytes_after: u64,
}

/// Converts every sealed segment of every indexed series to `codec`,
/// one segment at a time via tmp-file-plus-rename: the replacement is
/// renamed into place before the source file is removed, so a crash at
/// any byte leaves a store whose canonicalizing readers still answer
/// byte-identically (an interim duplicate pair dedups first-wins), and
/// re-running the migration finishes the job. Open tails and the index
/// are untouched. Must not run while a writer has the store open.
pub fn migrate_store(dir: &Path, codec: SegmentCodec) -> io::Result<MigrateReport> {
    let mut rep = MigrateReport::default();
    let reader = LtsReader::open(dir);
    for info in reader.index() {
        for res in Resolution::ALL {
            let sdir = dir.join(res.dir_name()).join(&info.slug);
            for seg in segment_files(&sdir)? {
                rep.bytes_before += seg.bytes;
                if seg.codec == codec {
                    rep.segments_skipped += 1;
                    rep.bytes_after += seg.bytes;
                    continue;
                }
                let pts = read_sealed_points(&seg, info.kind).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}: {e}", rel_path(dir, &seg.path)),
                    )
                })?;
                let (first, last) = match (pts.first(), pts.last()) {
                    (Some(a), Some(b)) => (a.t, b.t),
                    _ => (seg.first, seg.last),
                };
                let dest = sdir.join(segment_file_name(first, last, codec));
                let tmp = sdir.join("migrate.tmp");
                match codec {
                    SegmentCodec::Jsonl => {
                        let mut body = String::new();
                        for p in &pts {
                            body.push_str(&point_to_json(p));
                            body.push('\n');
                        }
                        fs::write(&tmp, body)?;
                    }
                    SegmentCodec::Binary => {
                        fs::write(&tmp, encode_segment_v2(info.kind, &pts))?;
                    }
                }
                fs::rename(&tmp, &dest)?;
                if dest != seg.path {
                    fs::remove_file(&seg.path)?;
                }
                rep.segments_converted += 1;
                rep.bytes_after += fs::metadata(&dest).map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    Ok(rep)
}

/// Result of a segment-by-segment counter fold over a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeFold {
    /// Points in the window.
    pub count: u64,
    /// Sum of the counter deltas in the window.
    pub sum: u64,
    /// Smallest delta (`u64::MAX` when the window is empty).
    pub min: u64,
    /// Largest delta.
    pub max: u64,
    /// Newest point timestamp ≤ the window end, if any.
    pub last_t: Option<u64>,
    /// Points actually decoded (partial segments + open tail). Fully
    /// covered binary segments fold from their header and add nothing
    /// here.
    pub points_scanned: u64,
    /// Segments folded from header stats alone.
    pub segments_folded: u64,
}

impl Default for RangeFold {
    fn default() -> Self {
        RangeFold {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            last_t: None,
            points_scanned: 0,
            segments_folded: 0,
        }
    }
}

/// Folds a counter series over the window `(after, upto]` — the same
/// half-open bound the query engine's windows use — without
/// materializing a point vector: fully covered binary segments
/// contribute their header fold in O(1), everything else streams. Gives
/// exactly the count/sum/min/max a scan of the canonical point sequence
/// would. Returns `None` when the fast path cannot be trusted and the
/// caller must take the general (materialize + canonicalize) path:
/// non-counter series, overlapping sealed segments, an open tail
/// overlapping the sealed range, or an undecodable segment.
pub fn fold_series_range(
    dir: &Path,
    slug: &str,
    kind: SeriesKind,
    res: Resolution,
    after: Option<u64>,
    upto: u64,
) -> Option<RangeFold> {
    if kind != SeriesKind::Counter {
        return None;
    }
    let low = after.map(|a| a.saturating_add(1)).unwrap_or(0);
    if low > upto {
        return Some(RangeFold::default());
    }
    let sdir = dir.join(res.dir_name()).join(slug);
    let segs = segment_files(&sdir).ok()?;
    // Overlap between sealed segments (or with the open tail) means
    // duplicate timestamps are possible and only the canonicalizing
    // path dedups them.
    if segs.windows(2).any(|w| w[1].first <= w[0].last) {
        return None;
    }
    let sealed_last = segs.last().map(|s| s.last);
    let mut fold = RangeFold::default();
    let add = |t: u64, v: u64, fold: &mut RangeFold| {
        if t >= low && t <= upto {
            fold.count += 1;
            fold.sum = fold.sum.saturating_add(v);
            fold.min = fold.min.min(v);
            fold.max = fold.max.max(v);
        }
        if t <= upto {
            fold.last_t = Some(fold.last_t.map_or(t, |l| l.max(t)));
        }
    };
    for seg in &segs {
        if seg.last < low {
            // Still the newest point below the window end so far.
            fold.last_t = Some(fold.last_t.map_or(seg.last, |l| l.max(seg.last)));
            continue;
        }
        if seg.first > upto {
            continue;
        }
        let covered = seg.first >= low && seg.last <= upto;
        if covered && seg.codec == SegmentCodec::Binary {
            let buf = fs::read(&seg.path).ok()?;
            let header = decode_segment_v2_header(&buf).ok()?;
            let stats = header.stats?;
            if header.kind != kind {
                return None;
            }
            fold.count += header.count;
            fold.sum = fold.sum.saturating_add(stats.sum);
            if header.count > 0 {
                fold.min = fold.min.min(stats.min);
                fold.max = fold.max.max(stats.max);
                fold.last_t = Some(fold.last_t.map_or(header.last_t, |l| l.max(header.last_t)));
            }
            fold.segments_folded += 1;
            continue;
        }
        let pts = read_sealed_points(seg, kind).ok()?;
        fold.points_scanned += pts.len() as u64;
        for p in &pts {
            if let PointValue::Counter(v) = &p.value {
                add(p.t, *v, &mut fold);
            }
        }
    }
    let open = sdir.join("open.seg");
    if let Ok(text) = fs::read_to_string(&open) {
        let mut first_open: Option<u64> = None;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(p) = point_from_json(line) else {
                continue;
            };
            let PointValue::Counter(v) = p.value else {
                continue;
            };
            first_open.get_or_insert(p.t);
            fold.points_scanned += 1;
            add(p.t, v, &mut fold);
        }
        // A tail at or before the sealed range (crashed seal leftover)
        // would double-count: only the canonical path dedups.
        if let (Some(f), Some(sl)) = (first_open, sealed_last) {
            if f <= sl {
                return None;
            }
        }
    }
    Some(fold)
}

/// Per-segment detail for [`store_stats`].
#[derive(Debug, Clone)]
pub struct SegmentStat {
    /// Path relative to the store root.
    pub path: String,
    /// Codec version byte (1 = JSONL, 2 = binary); open tails are 1.
    pub codec_version: u8,
    /// `false` for open tails.
    pub sealed: bool,
    /// Points held.
    pub points: u64,
    /// File size.
    pub bytes: u64,
}

/// Per-resolution rollup for [`store_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ResolutionStat {
    /// Segment files (sealed + open).
    pub segments: u64,
    /// Sealed JSONL (v1) segments.
    pub v1_segments: u64,
    /// Sealed binary (v2) segments.
    pub v2_segments: u64,
    /// Open tails.
    pub open_tails: u64,
    /// Bytes on disk.
    pub bytes: u64,
    /// Points held.
    pub points: u64,
}

/// What [`store_stats`] measured.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Rollup per resolution, finest first (indexable by
    /// [`Resolution::ALL`] order).
    pub resolutions: [ResolutionStat; 3],
    /// Every segment file, sorted by path.
    pub segments: Vec<SegmentStat>,
}

/// Measures on-disk layout per resolution and per segment: bytes, point
/// counts, and codec versions. Binary point counts come from segment
/// headers; JSONL files are line-counted.
pub fn store_stats(dir: &Path) -> io::Result<StoreStats> {
    let mut stats = StoreStats::default();
    let count_jsonl = |path: &Path| -> u64 {
        fs::read_to_string(path)
            .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count() as u64)
            .unwrap_or(0)
    };
    for res in Resolution::ALL {
        let rdir = dir.join(res.dir_name());
        let entries = match fs::read_dir(&rdir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let rs = &mut stats.resolutions[res.index()];
        for entry in entries.flatten() {
            let sdir = entry.path();
            if !sdir.is_dir() {
                continue;
            }
            for seg in segment_files(&sdir)? {
                let points = match seg.codec {
                    SegmentCodec::Jsonl => count_jsonl(&seg.path),
                    SegmentCodec::Binary => fs::read(&seg.path)
                        .ok()
                        .and_then(|b| decode_segment_v2_header(&b).ok())
                        .map(|h| h.count)
                        .unwrap_or(0),
                };
                rs.segments += 1;
                match seg.codec {
                    SegmentCodec::Jsonl => rs.v1_segments += 1,
                    SegmentCodec::Binary => rs.v2_segments += 1,
                }
                rs.bytes += seg.bytes;
                rs.points += points;
                stats.segments.push(SegmentStat {
                    path: rel_path(dir, &seg.path),
                    codec_version: seg.codec.version(),
                    sealed: true,
                    points,
                    bytes: seg.bytes,
                });
            }
            let open = sdir.join("open.seg");
            if let Ok(m) = fs::metadata(&open) {
                let points = count_jsonl(&open);
                rs.segments += 1;
                rs.open_tails += 1;
                rs.bytes += m.len();
                rs.points += points;
                stats.segments.push(SegmentStat {
                    path: rel_path(dir, &open),
                    codec_version: SegmentCodec::Jsonl.version(),
                    sealed: false,
                    points,
                    bytes: m.len(),
                });
            }
        }
    }
    stats.segments.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(stats)
}

/// Emits one `lts` JSONL event per retention deletion and per recovery
/// warning, and bumps `retention_deleted` — the shared
/// `netqos_retention_deleted_total` counter.
pub fn report_flush(
    sink: &EventSink,
    retention_deleted: &Counter,
    report: &FlushReport,
    warnings: &[String],
) {
    for d in &report.deleted {
        retention_deleted.inc();
        sink.emit(
            Level::Info,
            "lts",
            "retention_delete",
            vec![
                ("path".to_string(), FieldValue::Str(d.path.clone())),
                ("bytes".to_string(), FieldValue::U64(d.bytes)),
                ("reason".to_string(), FieldValue::Str(d.reason.to_string())),
            ],
        );
    }
    for w in warnings {
        sink.emit(
            Level::Warn,
            "lts",
            "recovered",
            vec![("detail".to_string(), FieldValue::Str(w.clone()))],
        );
    }
}

// ---------------------------------------------------------------------
// On-disk encoding
// ---------------------------------------------------------------------

/// One point as a single JSON line. Histogram `min`/`max` are omitted
/// for empty intervals so the `u64::MAX` "empty" sentinel never hits a
/// float-backed JSON parser.
fn point_to_json(p: &Point) -> String {
    match &p.value {
        PointValue::Counter(v) => format!("{{\"t\":{},\"kind\":\"counter\",\"v\":{}}}", p.t, v),
        PointValue::Gauge(v) => format!("{{\"t\":{},\"kind\":\"gauge\",\"v\":{}}}", p.t, v),
        PointValue::Histogram(h) => {
            let mut out = format!(
                "{{\"t\":{},\"kind\":\"histogram\",\"count\":{},\"sum\":{}",
                p.t, h.count, h.sum
            );
            if h.count > 0 {
                let _ = write!(out, ",\"min\":{},\"max\":{}", h.min, h.max);
            }
            out.push_str(",\"buckets\":[");
            for (i, &(b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{n}]");
            }
            out.push_str("]}");
            out
        }
    }
}

fn point_from_json(line: &str) -> Option<Point> {
    let v = parse_json(line).ok()?;
    let t = v.get("t")?.as_u64()?;
    let kind = SeriesKind::parse(v.get("kind")?.as_str()?)?;
    let value = match kind {
        SeriesKind::Counter => PointValue::Counter(v.get("v")?.as_u64()?),
        SeriesKind::Gauge => {
            let n = v.get("v")?.as_f64()?;
            PointValue::Gauge(n.round() as i64)
        }
        SeriesKind::Histogram => {
            let count = v.get("count")?.as_u64()?;
            let mut buckets = Vec::new();
            for b in v.get("buckets")?.as_array()? {
                let pair = b.as_array()?;
                if pair.len() != 2 {
                    return None;
                }
                buckets.push((pair[0].as_u64()? as u32, pair[1].as_u64()?));
            }
            PointValue::Histogram(HistogramState {
                buckets,
                count,
                sum: v.get("sum")?.as_u64()?,
                min: v.get("min").and_then(|m| m.as_u64()).unwrap_or(u64::MAX),
                max: v.get("max").and_then(|m| m.as_u64()).unwrap_or(0),
            })
        }
    };
    Some(Point { t, value })
}

// ---------------------------------------------------------------------
// Binary segment codec (v2)
// ---------------------------------------------------------------------
//
// Layout (all integers LEB128 varints unless noted):
//
// ```text
// magic   4 bytes  "NQS2"
// version u8       2
// kind    u8       0 = counter, 1 = gauge, 2 = histogram
// count            points in the segment
// first_t          timestamp of the first point
// last_t           timestamp of the last point
// [counter only] sum, min_delta, max_delta   whole-segment fold (zeros
//                                            when count == 0) — lets a
//                                            fully-covered window be
//                                            folded from the header
//                                            without decoding points
// points  count ×:
//   dt             t - previous t (first point: t - first_t, i.e. 0)
//   counter:       zigzag(v - prev_v)          (prev starts at 0,
//                                              wrapping, lossless)
//   gauge:         zigzag(v - prev_v)          (same)
//   histogram:     count, sum,
//                  flag u8 (1 = min/max follow, mirrors JSONL's
//                  omit-when-empty), [min, max],
//                  n_buckets, then n × (index - prev_index, bucket
//                  count) with the first index absolute
// ```
//
// Deltas use wrapping arithmetic in both directions, so every `u64`
// round-trips exactly; zigzag keeps small negative deltas short.

const SEG_MAGIC: [u8; 4] = *b"NQS2";

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Whole-segment fold carried in a v2 counter segment's header.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Sum of the counter deltas.
    pub sum: u64,
    /// Smallest delta (`u64::MAX` when the segment is empty).
    pub min: u64,
    /// Largest delta.
    pub max: u64,
}

/// Decoded v2 header, available without touching the point payload.
#[derive(Debug, Clone)]
pub struct SegmentHeader {
    /// Series kind the segment holds.
    pub kind: SeriesKind,
    /// Points in the segment.
    pub count: u64,
    /// First point's timestamp.
    pub first_t: u64,
    /// Last point's timestamp.
    pub last_t: u64,
    /// Whole-segment counter fold; `None` for gauge/histogram segments.
    pub stats: Option<SegmentStats>,
    /// Byte offset where the point payload starts.
    payload: usize,
}

fn kind_byte(kind: SeriesKind) -> u8 {
    match kind {
        SeriesKind::Counter => 0,
        SeriesKind::Gauge => 1,
        SeriesKind::Histogram => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<SeriesKind> {
    match b {
        0 => Some(SeriesKind::Counter),
        1 => Some(SeriesKind::Gauge),
        2 => Some(SeriesKind::Histogram),
        _ => None,
    }
}

/// Encodes `pts` (strictly increasing `t`, all of `kind`) as one v2
/// binary segment.
pub fn encode_segment_v2(kind: SeriesKind, pts: &[Point]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + pts.len() * 3);
    out.extend_from_slice(&SEG_MAGIC);
    out.push(2);
    out.push(kind_byte(kind));
    push_varint(&mut out, pts.len() as u64);
    let first_t = pts.first().map(|p| p.t).unwrap_or(0);
    let last_t = pts.last().map(|p| p.t).unwrap_or(0);
    push_varint(&mut out, first_t);
    push_varint(&mut out, last_t);
    if kind == SeriesKind::Counter {
        let mut stats = SegmentStats {
            min: u64::MAX,
            ..SegmentStats::default()
        };
        let mut any = false;
        for p in pts {
            if let PointValue::Counter(v) = &p.value {
                stats.sum = stats.sum.saturating_add(*v);
                stats.min = stats.min.min(*v);
                stats.max = stats.max.max(*v);
                any = true;
            }
        }
        if !any {
            stats.min = 0;
        }
        push_varint(&mut out, stats.sum);
        push_varint(&mut out, stats.min);
        push_varint(&mut out, stats.max);
    }
    let mut prev_t = first_t;
    let mut prev_v: u64 = 0;
    for p in pts {
        push_varint(&mut out, p.t.wrapping_sub(prev_t));
        prev_t = p.t;
        match &p.value {
            PointValue::Counter(v) => {
                push_varint(&mut out, zigzag(v.wrapping_sub(prev_v) as i64));
                prev_v = *v;
            }
            PointValue::Gauge(v) => {
                push_varint(&mut out, zigzag(v.wrapping_sub(prev_v as i64)));
                prev_v = *v as u64;
            }
            PointValue::Histogram(h) => {
                push_varint(&mut out, h.count);
                push_varint(&mut out, h.sum);
                if h.count > 0 {
                    out.push(1);
                    push_varint(&mut out, h.min);
                    push_varint(&mut out, h.max);
                } else {
                    out.push(0);
                }
                push_varint(&mut out, h.buckets.len() as u64);
                let mut prev_i: u32 = 0;
                for &(i, n) in &h.buckets {
                    push_varint(&mut out, i.wrapping_sub(prev_i) as u64);
                    prev_i = i;
                    push_varint(&mut out, n);
                }
            }
        }
    }
    out
}

/// Decodes a v2 header. Errors on a bad magic/version/kind or a
/// truncated header.
pub fn decode_segment_v2_header(buf: &[u8]) -> Result<SegmentHeader, String> {
    if buf.len() < 6 {
        return Err("truncated header".to_string());
    }
    if buf[0..4] != SEG_MAGIC {
        return Err("bad magic".to_string());
    }
    if buf[4] != 2 {
        return Err(format!("unsupported codec version {}", buf[4]));
    }
    let kind = kind_from_byte(buf[5]).ok_or_else(|| format!("bad kind byte {}", buf[5]))?;
    let mut pos = 6usize;
    let count = read_varint(buf, &mut pos).ok_or("truncated count")?;
    let first_t = read_varint(buf, &mut pos).ok_or("truncated first_t")?;
    let last_t = read_varint(buf, &mut pos).ok_or("truncated last_t")?;
    let stats = if kind == SeriesKind::Counter {
        Some(SegmentStats {
            sum: read_varint(buf, &mut pos).ok_or("truncated sum")?,
            min: read_varint(buf, &mut pos).ok_or("truncated min")?,
            max: read_varint(buf, &mut pos).ok_or("truncated max")?,
        })
    } else {
        None
    };
    Ok(SegmentHeader {
        kind,
        count,
        first_t,
        last_t,
        stats,
        payload: pos,
    })
}

/// Decodes a whole v2 segment into its header and points. Errors on any
/// truncation or trailing garbage — sealed binary segments are immutable
/// and must parse exactly.
pub fn decode_segment_v2(buf: &[u8]) -> Result<(SegmentHeader, Vec<Point>), String> {
    let header = decode_segment_v2_header(buf)?;
    let mut pos = header.payload;
    let mut pts = Vec::with_capacity(header.count as usize);
    let mut prev_t = header.first_t;
    let mut prev_v: u64 = 0;
    for i in 0..header.count {
        let dt = read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
        let t = prev_t.wrapping_add(dt);
        prev_t = t;
        let value = match header.kind {
            SeriesKind::Counter => {
                let dv =
                    read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
                let v = prev_v.wrapping_add(unzigzag(dv) as u64);
                prev_v = v;
                PointValue::Counter(v)
            }
            SeriesKind::Gauge => {
                let dv =
                    read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
                let v = (prev_v as i64).wrapping_add(unzigzag(dv));
                prev_v = v as u64;
                PointValue::Gauge(v)
            }
            SeriesKind::Histogram => {
                let count =
                    read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
                let sum =
                    read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
                let flag = *buf
                    .get(pos)
                    .ok_or_else(|| format!("truncated at point {i}"))?;
                pos += 1;
                let (min, max) = if flag == 1 {
                    (
                        read_varint(buf, &mut pos)
                            .ok_or_else(|| format!("truncated at point {i}"))?,
                        read_varint(buf, &mut pos)
                            .ok_or_else(|| format!("truncated at point {i}"))?,
                    )
                } else {
                    (u64::MAX, 0)
                };
                let nb =
                    read_varint(buf, &mut pos).ok_or_else(|| format!("truncated at point {i}"))?;
                let mut buckets = Vec::with_capacity(nb.min(4096) as usize);
                let mut prev_i: u32 = 0;
                for _ in 0..nb {
                    let di = read_varint(buf, &mut pos)
                        .ok_or_else(|| format!("truncated at point {i}"))?;
                    let bi = prev_i.wrapping_add(di as u32);
                    prev_i = bi;
                    let n = read_varint(buf, &mut pos)
                        .ok_or_else(|| format!("truncated at point {i}"))?;
                    buckets.push((bi, n));
                }
                PointValue::Histogram(HistogramState {
                    buckets,
                    count,
                    sum,
                    min,
                    max,
                })
            }
        };
        pts.push(Point { t, value });
    }
    if pos != buf.len() {
        return Err(format!("{} trailing bytes", buf.len() - pos));
    }
    Ok((header, pts))
}

fn parse_index_line(line: &str) -> Option<(String, String, SeriesKind)> {
    let v = parse_json(line).ok()?;
    let slug = v.get("slug")?.as_str()?.to_string();
    let name = v.get("name")?.as_str()?.to_string();
    let kind = SeriesKind::parse(v.get("kind")?.as_str()?)?;
    Some((slug, name, kind))
}

/// Filesystem-safe directory name for a series: sanitized name prefix
/// plus an FNV-1a hash of the full name, so `a.b` and `a_b` (or two
/// label sets sanitizing alike) never collide.
fn slug_for(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    s.truncate(48);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{s}-{hash:016x}")
}

/// Sealed-segment filename covering `[first, last]` in `codec`.
/// Zero-padded so lexicographic directory order is chronological order.
fn segment_file_name(first: u64, last: u64, codec: SegmentCodec) -> String {
    let ext = match codec {
        SegmentCodec::Jsonl => "seg",
        SegmentCodec::Binary => "bin",
    };
    format!("seg-{first:012}-{last:012}.{ext}")
}

fn parse_segment_name(name: &str) -> Option<(u64, u64, SegmentCodec)> {
    let (body, codec) = match name.strip_prefix("seg-")? {
        rest if rest.ends_with(".seg") => (rest.strip_suffix(".seg")?, SegmentCodec::Jsonl),
        rest if rest.ends_with(".bin") => (rest.strip_suffix(".bin")?, SegmentCodec::Binary),
        _ => return None,
    };
    let (a, b) = body.split_once('-')?;
    Some((a.parse().ok()?, b.parse().ok()?, codec))
}

struct SegmentFile {
    path: PathBuf,
    first: u64,
    last: u64,
    bytes: u64,
    codec: SegmentCodec,
}

/// Sealed segments in a series directory (either codec), oldest first.
fn segment_files(sdir: &Path) -> io::Result<Vec<SegmentFile>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(sdir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        if let Some((first, last, codec)) = parse_segment_name(&name) {
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            out.push(SegmentFile {
                path,
                first,
                last,
                bytes,
                codec,
            });
        }
    }
    out.sort_by_key(|s| (s.first, s.last));
    Ok(out)
}

/// Reads one sealed segment's points (codec from the filename), strict:
/// any undecodable content is an error. Used by verify/migrate; the
/// query path ([`read_series_points`]) stays lenient.
fn read_sealed_points(seg: &SegmentFile, kind: SeriesKind) -> Result<Vec<Point>, String> {
    match seg.codec {
        SegmentCodec::Jsonl => {
            let text = fs::read_to_string(&seg.path).map_err(|e| e.to_string())?;
            let mut pts = Vec::new();
            for (ln, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let p =
                    point_from_json(line).ok_or_else(|| format!("line {}: unparseable", ln + 1))?;
                if p.value.kind() != kind {
                    return Err(format!("line {}: kind mismatch", ln + 1));
                }
                pts.push(p);
            }
            Ok(pts)
        }
        SegmentCodec::Binary => {
            let buf = fs::read(&seg.path).map_err(|e| e.to_string())?;
            let (header, pts) = decode_segment_v2(&buf)?;
            if header.kind != kind {
                return Err(format!(
                    "kind mismatch (segment says {})",
                    header.kind.as_str()
                ));
            }
            Ok(pts)
        }
    }
}

/// Reads one segment file leniently: a torn *final* line is truncated
/// off the file and reported; a bad line mid-file stops the read there
/// (everything after a corrupt line is untrusted).
fn read_segment_recovering(
    path: &Path,
    kind: SeriesKind,
) -> io::Result<(Vec<Point>, Option<String>)> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let mut pts = Vec::new();
    let mut good_bytes = 0usize;
    let mut warn = None;
    for line in text.split_inclusive('\n') {
        let trimmed = line.trim_end_matches('\n');
        if trimmed.is_empty() {
            good_bytes += line.len();
            continue;
        }
        match point_from_json(trimmed) {
            Some(p) if p.value.kind() == kind && line.ends_with('\n') => {
                pts.push(p);
                good_bytes += line.len();
            }
            _ => {
                warn = Some(format!(
                    "{}: corrupt tail at byte {good_bytes}; truncated",
                    path.display()
                ));
                truncate_file(path, good_bytes as u64)?;
                break;
            }
        }
    }
    Ok((pts, warn))
}

/// Canonical read used by both the reader and the writer's recovery:
/// sealed oldest-first then the open tail, clipped to `[start, end]`,
/// stable-sorted by time with the first-written point winning ties.
/// Unparseable lines and undecodable binary segments are skipped
/// (readers never mutate the store).
fn read_series_points(
    dir: &Path,
    slug: &str,
    kind: SeriesKind,
    res: Resolution,
    start: u64,
    end: u64,
) -> Vec<Point> {
    let sdir = dir.join(res.dir_name()).join(slug);
    let mut pts: Vec<Point> = Vec::new();
    let read_jsonl = |path: &Path, pts: &mut Vec<Point>| {
        let Ok(text) = fs::read_to_string(path) else {
            return;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Some(p) = point_from_json(line) else {
                continue;
            };
            if p.value.kind() == kind && p.t >= start && p.t <= end {
                pts.push(p);
            }
        }
    };
    for seg in segment_files(&sdir).unwrap_or_default() {
        // Whole segment out of range: skip without reading.
        if seg.last < start || seg.first > end {
            continue;
        }
        match seg.codec {
            SegmentCodec::Jsonl => read_jsonl(&seg.path, &mut pts),
            SegmentCodec::Binary => {
                let Ok(buf) = fs::read(&seg.path) else {
                    continue;
                };
                let Ok((header, decoded)) = decode_segment_v2(&buf) else {
                    continue;
                };
                if header.kind != kind {
                    continue;
                }
                pts.extend(decoded.into_iter().filter(|p| p.t >= start && p.t <= end));
            }
        }
    }
    let open = sdir.join("open.seg");
    if open.exists() {
        read_jsonl(&open, &mut pts);
    }
    pts.sort_by_key(|p| p.t);
    pts.dedup_by_key(|p| p.t);
    pts
}

fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// `s` as a quoted JSON string literal (quotes, backslashes and control
/// characters escaped) — for hand-assembled JSON documents.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "netqos-lts-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_hist(values: &[u64]) -> HistogramState {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.to_state()
    }

    #[test]
    fn point_json_round_trips() {
        for p in [
            Point {
                t: 7,
                value: PointValue::Counter(42),
            },
            Point {
                t: 8,
                value: PointValue::Gauge(-3),
            },
            Point {
                t: 9,
                value: PointValue::Histogram(sample_hist(&[5, 10, 10_000])),
            },
            Point {
                t: 10,
                value: PointValue::Histogram(HistogramState {
                    min: u64::MAX,
                    ..Default::default()
                }),
            },
        ] {
            let line = point_to_json(&p);
            let back = point_from_json(&line).expect(&line);
            assert_eq!(back, p, "{line}");
        }
    }

    #[test]
    fn slugs_distinguish_sanitized_collisions() {
        assert_ne!(slug_for("a.b"), slug_for("a_b"));
        assert_ne!(slug_for("m{x=\"1\"}"), slug_for("m{x=\"2\"}"));
        assert!(slug_for("net.qos/metric")
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
    }

    #[test]
    fn selector_wildcards() {
        assert!(selector_matches("*", "anything"));
        assert!(selector_matches("netqos_*_total", "netqos_polls_total"));
        assert!(!selector_matches("netqos_*_total", "netqos_polls"));
        assert!(selector_matches("exact", "exact"));
        assert!(!selector_matches("exact", "exactly"));
        assert!(selector_matches("*suffix", "has_suffix"));
    }

    #[test]
    fn downsample_rules() {
        let pts: Vec<Point> = (0..3)
            .map(|i| Point {
                t: i,
                value: PointValue::Counter(10 + i),
            })
            .collect();
        assert_eq!(
            downsample(SeriesKind::Counter, &pts),
            Some(PointValue::Counter(33))
        );

        let pts: Vec<Point> = (0..3)
            .map(|i| Point {
                t: i,
                value: PointValue::Gauge(i as i64 * 5),
            })
            .collect();
        assert_eq!(
            downsample(SeriesKind::Gauge, &pts),
            Some(PointValue::Gauge(10))
        );

        let pts = vec![
            Point {
                t: 0,
                value: PointValue::Histogram(sample_hist(&[1, 100])),
            },
            Point {
                t: 1,
                value: PointValue::Histogram(sample_hist(&[50])),
            },
        ];
        let Some(PointValue::Histogram(m)) = downsample(SeriesKind::Histogram, &pts) else {
            panic!("expected histogram");
        };
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 151);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 100);
        assert_eq!(downsample(SeriesKind::Counter, &[]), None);
    }

    #[test]
    fn hist_delta_subtracts_and_detects_reset() {
        let a = sample_hist(&[10, 20]);
        let b = sample_hist(&[10, 20, 30, 40]);
        let d = hist_delta(Some(&a), &b);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 70);
        // Reset: current count below previous → current is the interval.
        let d = hist_delta(Some(&b), &a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 30);
        // Empty interval keeps the sentinel out of serialized output.
        let d = hist_delta(Some(&b), &b);
        assert_eq!(d.count, 0);
        assert_eq!(d.min, u64::MAX);
        assert!(point_from_json(&point_to_json(&Point {
            t: 0,
            value: PointValue::Histogram(d)
        }))
        .is_some());
    }

    #[test]
    fn append_flush_query_round_trip() {
        let dir = tmpdir("roundtrip");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        for t in 0..130 {
            store.append("ticks_total", t, PointValue::Counter(1));
            store.append("depth", t, PointValue::Gauge(t as i64));
        }
        let rep = store.flush().unwrap();
        assert_eq!(rep.points_written, 260);
        // Two complete minutes folded per series (windows 0 and 60).
        assert_eq!(rep.downsampled, 4);

        let reader = LtsReader::open(&dir);
        let idx = reader.index();
        assert_eq!(idx.len(), 2);
        let ticks = idx.iter().find(|i| i.name == "ticks_total").unwrap();
        let raw = reader.series_points(ticks, Resolution::Raw1s, 0, u64::MAX);
        assert_eq!(raw.len(), 130);
        let mins = reader.series_points(ticks, Resolution::Min1, 0, u64::MAX);
        assert_eq!(mins.len(), 2);
        assert_eq!(
            mins[0],
            Point {
                t: 0,
                value: PointValue::Counter(60)
            }
        );
        assert_eq!(
            mins[1],
            Point {
                t: 60,
                value: PointValue::Counter(60)
            }
        );
        // Gauge minutes keep the last value of each window.
        let depth = idx.iter().find(|i| i.name == "depth").unwrap();
        let mins = reader.series_points(depth, Resolution::Min1, 0, u64::MAX);
        assert_eq!(
            mins[0],
            Point {
                t: 0,
                value: PointValue::Gauge(59)
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_order_and_kind_mismatch_drop() {
        let dir = tmpdir("drops");
        let counters = LtsCounters::detached();
        let mut store = LtsStore::open(&dir, LtsConfig::default(), counters.clone()).unwrap();
        store.append("m", 10, PointValue::Counter(1));
        store.append("m", 10, PointValue::Counter(1)); // duplicate t
        store.append("m", 5, PointValue::Counter(1)); // goes backwards
        store.append("m", 11, PointValue::Gauge(1)); // wrong kind
        assert_eq!(counters.appends.get(), 1);
        assert_eq!(counters.dropped.get(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealing_and_hourly_fold() {
        let dir = tmpdir("seal");
        let config = LtsConfig {
            codec: SegmentCodec::Jsonl,
            seal_points: 100,
            retention: LtsRetention {
                max_age_secs: 0,
                max_bytes: 0,
            },
        };
        let mut store = LtsStore::open(&dir, config.clone(), LtsCounters::detached()).unwrap();
        // 2h05m of data: 125 minute-windows complete, 2 hours complete.
        for t in 0..7500u64 {
            store.append("c", t, PointValue::Counter(2));
            if t % 500 == 499 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        let reader = LtsReader::open(&dir);
        let info = &reader.index()[0];
        let hours = reader.series_points(info, Resolution::Hour1, 0, u64::MAX);
        assert_eq!(hours.len(), 2);
        assert_eq!(
            hours[0],
            Point {
                t: 0,
                value: PointValue::Counter(7200)
            }
        );
        assert_eq!(
            hours[1],
            Point {
                t: 3600,
                value: PointValue::Counter(7200)
            }
        );
        // Raw is spread over sealed segments + open tail; reads stitch them.
        let raw = reader.series_points(info, Resolution::Raw1s, 0, u64::MAX);
        assert_eq!(raw.len(), 7500);
        // One seal per flush (each flush's 500-point batch crosses the
        // 100-point threshold once).
        let sdir = dir.join("1s").join(&info.slug);
        assert!(
            segment_files(&sdir).unwrap().len() >= 10,
            "expected sealed raw segments"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_resumes_pending_windows() {
        let dir = tmpdir("reopen");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        for t in 0..90 {
            store.append("g", t, PointValue::Gauge(t as i64));
        }
        store.flush().unwrap();
        drop(store);
        // Restart mid-minute: the [60,120) window is pending, not lost.
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        for t in 90..121 {
            store.append("g", t, PointValue::Gauge(t as i64));
        }
        store.flush().unwrap();
        let reader = LtsReader::open(&dir);
        let info = &reader.index()[0];
        let mins = reader.series_points(info, Resolution::Min1, 0, u64::MAX);
        assert_eq!(mins.len(), 2);
        assert_eq!(
            mins[1],
            Point {
                t: 60,
                value: PointValue::Gauge(119)
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_truncates_and_warns() {
        let dir = tmpdir("corrupt");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        for t in 0..5 {
            store.append("c", t, PointValue::Counter(1));
        }
        store.flush().unwrap();
        let slug = slug_for("c");
        let open = dir.join("1s").join(&slug).join("open.seg");
        // Simulate a crash mid-append: torn, newline-less JSON tail.
        let mut f = OpenOptions::new().append(true).open(&open).unwrap();
        f.write_all(b"{\"t\":5,\"ki").unwrap();
        drop(f);
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        let warnings = store.take_warnings();
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("corrupt tail"));
        // The torn line is gone from disk; appends continue cleanly.
        store.append("c", 5, PointValue::Counter(9));
        store.flush().unwrap();
        let reader = LtsReader::open(&dir);
        let pts = reader.series_points(&reader.index()[0], Resolution::Raw1s, 0, u64::MAX);
        assert_eq!(pts.len(), 6);
        assert_eq!(
            pts[5],
            Point {
                t: 5,
                value: PointValue::Counter(9)
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_by_age_and_size() {
        let dir = tmpdir("retention");
        let config = LtsConfig {
            codec: SegmentCodec::Jsonl,
            seal_points: 10,
            retention: LtsRetention {
                max_age_secs: 100,
                max_bytes: 0,
            },
        };
        let mut store = LtsStore::open(&dir, config, LtsCounters::detached()).unwrap();
        let mut deleted = Vec::new();
        // Seal a 20-point segment per flush so retention has sealed
        // files of different ages to work through.
        for t in 0..300u64 {
            store.append("c", t, PointValue::Counter(1));
            if t % 20 == 19 {
                deleted.extend(store.flush().unwrap().deleted);
            }
        }
        assert!(!deleted.is_empty(), "old sealed segments should be deleted");
        assert!(deleted.iter().all(|d| d.reason == "age"));
        let reader = LtsReader::open(&dir);
        let pts = reader.series_points(&reader.index()[0], Resolution::Raw1s, 0, u64::MAX);
        // Only segments whose newest point lags the store's newest point
        // by more than 100s are dropped; segment granularity means the
        // survivors start at the oldest still-young-enough segment.
        assert!(
            pts.iter().all(|p| p.t >= 180),
            "oldest surviving: {:?}",
            pts.first()
        );

        let dir2 = tmpdir("retention-size");
        let config = LtsConfig {
            codec: SegmentCodec::Jsonl,
            seal_points: 10,
            retention: LtsRetention {
                max_age_secs: 0,
                max_bytes: 2000,
            },
        };
        let mut store = LtsStore::open(&dir2, config, LtsCounters::detached()).unwrap();
        let mut deleted = Vec::new();
        for t in 0..300u64 {
            store.append("c", t, PointValue::Counter(1));
            if t % 20 == 19 {
                deleted.extend(store.flush().unwrap().deleted);
            }
        }
        assert!(deleted.iter().any(|d| d.reason == "size"));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn query_json_is_stable_across_compact_and_reopen() {
        let dir = tmpdir("stable");
        let config = LtsConfig {
            codec: SegmentCodec::Jsonl,
            seal_points: 50,
            retention: LtsRetention {
                max_age_secs: 0,
                max_bytes: 0,
            },
        };
        let mut store = LtsStore::open(&dir, config.clone(), LtsCounters::detached()).unwrap();
        for t in 0..200u64 {
            store.append(
                "lat_ns",
                t,
                PointValue::Histogram(sample_hist(&[t * 10 + 1])),
            );
            store.append("polls_total", t, PointValue::Counter(3));
            if t % 70 == 69 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
        drop(store);

        let reader = LtsReader::open(&dir);
        let before = reader.query("*", 0, u64::MAX, Resolution::Raw1s);
        let before_1m = reader.query("*", 0, u64::MAX, Resolution::Min1);
        assert!(before.contains("\"p50\""));

        // Reopen (restart) changes nothing.
        let store = LtsStore::open(&dir, config, LtsCounters::detached()).unwrap();
        drop(store);
        assert_eq!(reader.query("*", 0, u64::MAX, Resolution::Raw1s), before);

        // Compaction rewrites the files but not the answer.
        let rep = compact_store(&dir).unwrap();
        assert!(rep.segments_after <= rep.segments_before);
        assert_eq!(reader.query("*", 0, u64::MAX, Resolution::Raw1s), before);
        assert_eq!(reader.query("*", 0, u64::MAX, Resolution::Min1), before_1m);

        // And the compacted store verifies clean.
        let v = verify_store(&dir).unwrap();
        assert!(v.issues.is_empty(), "{:?}", v.issues);
        assert_eq!(v.series, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_problems() {
        let dir = tmpdir("verify");
        let mut store =
            LtsStore::open(&dir, LtsConfig::default(), LtsCounters::detached()).unwrap();
        store.append("c", 1, PointValue::Counter(1));
        store.flush().unwrap();
        let clean = verify_store(&dir).unwrap();
        assert!(clean.issues.is_empty());
        assert_eq!(clean.points, 1);
        // A stray series directory not in the index is flagged.
        fs::create_dir_all(dir.join("1s/rogue-0000000000000000")).unwrap();
        let rep = verify_store(&dir).unwrap();
        assert!(
            rep.issues.iter().any(|i| i.contains("not in series.idx")),
            "{:?}",
            rep.issues
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_sampler_emits_deltas() {
        let dir = tmpdir("sampler");
        let reg = Registry::new();
        let counters = LtsCounters::register_in(&reg);
        let mut store = LtsStore::open(&dir, LtsConfig::default(), counters).unwrap();
        let mut sampler = RegistrySampler::new();
        let c = reg.counter("polls_total");
        let h = reg.histogram("lat_ns");
        c.add(5);
        h.record(100);
        sampler.sample(&reg, &mut store, 10);
        c.add(3);
        h.record(200);
        h.record(300);
        sampler.sample(&reg, &mut store, 11);
        store.flush().unwrap();
        let reader = LtsReader::open(&dir);
        let idx = reader.index();
        let polls = idx.iter().find(|i| i.name == "polls_total").unwrap();
        let pts = reader.series_points(polls, Resolution::Raw1s, 0, u64::MAX);
        assert_eq!(pts[0].value, PointValue::Counter(5));
        assert_eq!(pts[1].value, PointValue::Counter(3));
        let lat = idx.iter().find(|i| i.name == "lat_ns").unwrap();
        let pts = reader.series_points(lat, Resolution::Raw1s, 0, u64::MAX);
        let PointValue::Histogram(ref d) = pts[1].value else {
            panic!()
        };
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 500);
        // The store's own instrumentation is in the registry it samples.
        assert!(idx.iter().any(|i| i.name == "netqos_lts_appends_total"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn range_parsing() {
        assert_eq!(parse_range("10:20"), Some((10, 20)));
        assert_eq!(parse_range("10:"), Some((10, u64::MAX)));
        assert_eq!(parse_range(":20"), Some((0, 20)));
        assert_eq!(parse_range(":"), Some((0, u64::MAX)));
        assert_eq!(parse_range("20:10"), None);
        assert_eq!(parse_range("abc"), None);
    }

    #[test]
    fn codec_v2_round_trips_every_kind() {
        let cases: Vec<(SeriesKind, Vec<Point>)> = vec![
            (SeriesKind::Counter, Vec::new()),
            (
                SeriesKind::Counter,
                (0..500)
                    .map(|i| Point {
                        t: 1_700_000_000 + i * 7,
                        value: PointValue::Counter(i % 13),
                    })
                    .collect(),
            ),
            (
                SeriesKind::Gauge,
                vec![
                    Point {
                        t: 5,
                        value: PointValue::Gauge(i64::MIN),
                    },
                    Point {
                        t: 6,
                        value: PointValue::Gauge(i64::MAX),
                    },
                    Point {
                        t: 1000,
                        value: PointValue::Gauge(-42),
                    },
                ],
            ),
            (
                SeriesKind::Histogram,
                vec![
                    Point {
                        t: 10,
                        value: PointValue::Histogram(sample_hist(&[5, 10, 10_000])),
                    },
                    // The empty state a quiet interval produces:
                    // min stays u64::MAX, max 0, no buckets — the same
                    // normalization the JSONL parser applies.
                    Point {
                        t: 11,
                        value: PointValue::Histogram(sample_hist(&[])),
                    },
                ],
            ),
        ];
        for (kind, pts) in cases {
            let buf = encode_segment_v2(kind, &pts);
            let header = decode_segment_v2_header(&buf).unwrap();
            assert_eq!(header.kind, kind);
            assert_eq!(header.count, pts.len() as u64);
            let (full, decoded) = decode_segment_v2(&buf).unwrap();
            assert_eq!(full.count, header.count);
            assert_eq!(decoded, pts, "{kind:?}");
            if kind == SeriesKind::Counter && !pts.is_empty() {
                let stats = header.stats.unwrap();
                let deltas: Vec<u64> = pts
                    .iter()
                    .map(|p| match p.value {
                        PointValue::Counter(v) => v,
                        _ => unreachable!(),
                    })
                    .collect();
                assert_eq!(stats.sum, deltas.iter().sum::<u64>());
                assert_eq!(stats.min, *deltas.iter().min().unwrap());
                assert_eq!(stats.max, *deltas.iter().max().unwrap());
            }
        }
    }

    #[test]
    fn codec_v2_rejects_corrupt_buffers() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point {
                t: i,
                value: PointValue::Counter(i),
            })
            .collect();
        let good = encode_segment_v2(SeriesKind::Counter, &pts);
        assert!(decode_segment_v2(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_segment_v2(&trailing).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_segment_v2(&bad_magic).is_err());
        assert!(decode_segment_v2(b"NQ").is_err());
    }

    fn seeded_store(dir: &Path, codec: SegmentCodec) {
        let config = LtsConfig {
            codec,
            seal_points: 64,
            retention: LtsRetention {
                max_age_secs: 0,
                max_bytes: 0,
            },
        };
        let mut store = LtsStore::open(dir, config, LtsCounters::detached()).unwrap();
        for t in 0..300u64 {
            store.append("req_total", t, PointValue::Counter(t % 7));
            store.append("queue_depth", t, PointValue::Gauge(50 - t as i64));
            store.append(
                "lat_ns",
                t,
                PointValue::Histogram(sample_hist(&[t + 1, (t + 1) * 90])),
            );
            if t % 50 == 49 {
                store.flush().unwrap();
            }
        }
        store.flush().unwrap();
    }

    fn full_query(dir: &Path) -> String {
        let reader = LtsReader::open(dir);
        let mut out = String::new();
        for res in [Resolution::Raw1s, Resolution::Min1, Resolution::Hour1] {
            out.push_str(&reader.query("*", 0, u64::MAX, res));
            out.push('\n');
        }
        out
    }

    #[test]
    fn binary_and_jsonl_stores_answer_identically() {
        let d1 = tmpdir("codec-jsonl");
        let d2 = tmpdir("codec-bin");
        seeded_store(&d1, SegmentCodec::Jsonl);
        seeded_store(&d2, SegmentCodec::Binary);
        assert_eq!(full_query(&d1), full_query(&d2));
        // The binary store actually sealed binary segments.
        let stats = store_stats(&d2).unwrap();
        assert!(stats.resolutions[0].v2_segments > 0);
        assert_eq!(stats.resolutions[0].v1_segments, 0);
        for d in [&d1, &d2] {
            let report = verify_store(d).unwrap();
            assert!(report.issues.is_empty(), "{:?}", report.issues);
        }
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d2);
    }

    #[test]
    fn migrate_preserves_queries_both_ways() {
        let dir = tmpdir("migrate");
        seeded_store(&dir, SegmentCodec::Jsonl);
        let before = full_query(&dir);
        let up = migrate_store(&dir, SegmentCodec::Binary).unwrap();
        assert!(up.segments_converted > 0);
        assert_eq!(up.segments_skipped, 0);
        assert!(up.bytes_after < up.bytes_before);
        assert_eq!(full_query(&dir), before);
        let report = verify_store(&dir).unwrap();
        assert!(report.issues.is_empty(), "{:?}", report.issues);
        // Second run is a no-op; migrating back restores JSONL answers.
        let again = migrate_store(&dir, SegmentCodec::Binary).unwrap();
        assert_eq!(again.segments_converted, 0);
        assert_eq!(again.segments_skipped, up.segments_converted);
        let down = migrate_store(&dir, SegmentCodec::Jsonl).unwrap();
        assert_eq!(down.segments_converted, up.segments_converted);
        assert_eq!(full_query(&dir), before);
        assert!(verify_store(&dir).unwrap().issues.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_codec_and_answers() {
        let dir = tmpdir("codec-compact");
        seeded_store(&dir, SegmentCodec::Binary);
        let before = full_query(&dir);
        compact_store_to(&dir, SegmentCodec::Binary).unwrap();
        assert_eq!(full_query(&dir), before);
        let stats = store_stats(&dir).unwrap();
        assert!(stats.resolutions[0].v2_segments > 0);
        assert_eq!(stats.resolutions[0].v1_segments, 0);
        assert_eq!(stats.resolutions[0].open_tails, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fold_matches_materialized_scan() {
        let dir = tmpdir("fold");
        seeded_store(&dir, SegmentCodec::Binary);
        let reader = LtsReader::open(&dir);
        let info = reader
            .index()
            .into_iter()
            .find(|i| i.name == "req_total")
            .unwrap();
        let pts = reader.series_points(&info, Resolution::Raw1s, 0, u64::MAX);
        assert_eq!(pts.len(), 300);
        for (after, upto) in [
            (None, u64::MAX),
            (None, 299),
            (None, 150),
            (Some(0), 299),
            (Some(63), 64), // exactly one sealed-segment boundary
            (Some(37), 222),
            (Some(290), 350), // open-tail only
            (Some(299), 400), // empty window past the data
        ] {
            let fold = fold_series_range(
                &dir,
                &info.slug,
                SeriesKind::Counter,
                Resolution::Raw1s,
                after,
                upto,
            )
            .unwrap_or_else(|| panic!("fold refused ({after:?}, {upto}]"));
            let low = after.map(|a| a + 1).unwrap_or(0);
            let window: Vec<u64> = pts
                .iter()
                .filter(|p| p.t >= low && p.t <= upto)
                .map(|p| match p.value {
                    PointValue::Counter(v) => v,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(fold.count, window.len() as u64, "({after:?}, {upto}]");
            assert_eq!(fold.sum, window.iter().sum::<u64>(), "({after:?}, {upto}]");
            if !window.is_empty() {
                assert_eq!(fold.min, *window.iter().min().unwrap());
                assert_eq!(fold.max, *window.iter().max().unwrap());
            }
            let expect_last = pts.iter().filter(|p| p.t <= upto).map(|p| p.t).max();
            assert_eq!(fold.last_t, expect_last, "({after:?}, {upto}]");
        }
        // Fully covered windows fold sealed segments from header stats
        // without decoding their points.
        let full = fold_series_range(
            &dir,
            &info.slug,
            SeriesKind::Counter,
            Resolution::Raw1s,
            None,
            u64::MAX,
        )
        .unwrap();
        assert!(full.segments_folded > 0);
        assert!(full.points_scanned < 300);
        // Gauges never fold.
        assert!(fold_series_range(
            &dir,
            &info.slug,
            SeriesKind::Gauge,
            Resolution::Raw1s,
            None,
            u64::MAX
        )
        .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_open_tail_from_interrupted_seal_is_removed() {
        let dir = tmpdir("stale-tail");
        seeded_store(&dir, SegmentCodec::Binary);
        let reader = LtsReader::open(&dir);
        let info = reader
            .index()
            .into_iter()
            .find(|i| i.name == "req_total")
            .unwrap();
        let before = full_query(&dir);
        // Simulate a crash between writing the sealed segment and
        // removing the tail: re-create an open.seg whose points are
        // already covered by sealed segments.
        let sdir = dir.join(Resolution::Raw1s.dir_name()).join(&info.slug);
        fs::write(
            sdir.join("open.seg"),
            "{\"t\":10,\"kind\":\"counter\",\"v\":999}\n",
        )
        .unwrap();
        let config = LtsConfig {
            codec: SegmentCodec::Binary,
            seal_points: 64,
            retention: LtsRetention {
                max_age_secs: 0,
                max_bytes: 0,
            },
        };
        let mut store = LtsStore::open(&dir, config, LtsCounters::detached()).unwrap();
        let warnings = store.take_warnings();
        assert!(
            warnings.iter().any(|w| w.contains("stale open tail")),
            "{warnings:?}"
        );
        assert!(!sdir.join("open.seg").exists());
        // The duplicate point is gone; queries match the pre-crash view.
        assert_eq!(full_query(&dir), before);
        let _ = fs::remove_dir_all(&dir);
    }
}
