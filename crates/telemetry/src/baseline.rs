//! Incremental quantile baselines over a sliding sample window.
//!
//! A [`QuantileBaseline`] answers two questions about a fresh sample in
//! O(1)/O(buckets) time without retaining raw samples: *where does this
//! value rank against recent history?* (percentile rank) and *what are
//! the recent p50/p99?* (quantile readout). It reuses the telemetry
//! crate's log-bucketed [`Histogram`] — the incremental-quantile role
//! that P² plays in Chambers et al. — and ages data with two rotating
//! windows: samples land in the *active* histogram, and when the active
//! window fills it becomes the *previous* window and a fresh one starts.
//! Queries merge both windows, so the effective history is between one
//! and two windows — old traffic patterns fall away instead of
//! permanently skewing the baseline.

use crate::json::{parse_json, JsonValue};
use crate::metrics::{Histogram, HistogramState};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Default samples per window: at 1 s/cycle, two windows ≈ 10 minutes of
/// history, matching the "p99.8 of last 10 min" framing in the issue.
pub const DEFAULT_WINDOW: u64 = 300;

struct BaselineWindows {
    active: Histogram,
    previous: Histogram,
}

/// A self-aging quantile estimator for one monitored series (a
/// connection's used bandwidth, a device's poll RTT). Cheap to clone;
/// clones share the same windows.
#[derive(Clone)]
pub struct QuantileBaseline {
    window: u64,
    inner: Arc<Mutex<BaselineWindows>>,
}

impl Default for QuantileBaseline {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl QuantileBaseline {
    /// A baseline rotating after `window` samples (min 1).
    pub fn new(window: u64) -> Self {
        QuantileBaseline {
            window: window.max(1),
            inner: Arc::new(Mutex::new(BaselineWindows {
                active: Histogram::new(),
                previous: Histogram::new(),
            })),
        }
    }

    /// Records a sample, rotating the windows when the active one fills.
    pub fn record(&self, v: u64) {
        let mut w = self.inner.lock();
        if w.active.count() >= self.window {
            w.previous = std::mem::take(&mut w.active);
        }
        w.active.record(v);
    }

    /// Percentile rank of `v` against the merged windows, in [0, 1].
    /// 0.0 when no history exists yet.
    pub fn rank(&self, v: u64) -> f64 {
        let w = self.inner.lock();
        let total = w.active.count() + w.previous.count();
        if total == 0 {
            return 0.0;
        }
        let le = w.active.count_le(v) + w.previous.count_le(v);
        (le.min(total) as f64) / total as f64
    }

    /// The value at quantile `q` over the merged windows (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let w = self.inner.lock();
        if w.previous.count() == 0 {
            return w.active.quantile(q);
        }
        let merged = Histogram::new();
        merged.merge_from(&w.active);
        merged.merge_from(&w.previous);
        merged.quantile(q)
    }

    /// Total samples across both windows.
    pub fn count(&self) -> u64 {
        let w = self.inner.lock();
        w.active.count() + w.previous.count()
    }

    /// A serializable copy of both windows.
    pub fn to_state(&self) -> BaselineState {
        let w = self.inner.lock();
        BaselineState {
            window: self.window,
            active: w.active.to_state(),
            previous: w.previous.to_state(),
        }
    }

    /// Rebuilds a baseline from a saved state.
    pub fn from_state(state: &BaselineState) -> Self {
        QuantileBaseline {
            window: state.window.max(1),
            inner: Arc::new(Mutex::new(BaselineWindows {
                active: Histogram::from_state(&state.active),
                previous: Histogram::from_state(&state.previous),
            })),
        }
    }
}

/// Full persistable state of one [`QuantileBaseline`]: the rotation
/// window plus both histogram windows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BaselineState {
    /// Samples per rotation window.
    pub window: u64,
    /// The filling window.
    pub active: HistogramState,
    /// The previous (full) window.
    pub previous: HistogramState,
}

// ---- persistence ----------------------------------------------------
//
// Baselines take one to two windows of live traffic (minutes at a
// 1 s poll period) to mature; a restart that forgets them re-opens the
// anomaly-detection blind spot every time the service is rolled. The
// state file is a single JSON object so it can be written atomically
// (temp file + rename) and inspected by hand. All u64 fields are
// serialized as strings: epoch-scale sums exceed 2^53 and the reader
// parses numbers through f64.

fn write_histogram_state(out: &mut String, h: &HistogramState) {
    let _ = write!(
        out,
        "{{\"count\":\"{}\",\"sum\":\"{}\",\"min\":\"{}\",\"max\":\"{}\",\"buckets\":[",
        h.count, h.sum, h.min, h.max
    );
    for (i, (idx, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},\"{n}\"]");
    }
    out.push_str("]}");
}

fn read_u64_str(v: &JsonValue, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(JsonValue::String(s)) => s.parse().map_err(|_| format!("bad {key}: {s:?}")),
        Some(other) => other.as_u64().ok_or_else(|| format!("bad {key}")),
        None => Err(format!("missing {key}")),
    }
}

fn read_histogram_state(v: &JsonValue) -> Result<HistogramState, String> {
    let mut state = HistogramState {
        count: read_u64_str(v, "count")?,
        sum: read_u64_str(v, "sum")?,
        min: read_u64_str(v, "min")?,
        max: read_u64_str(v, "max")?,
        buckets: Vec::new(),
    };
    let buckets = v
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or("missing buckets")?;
    for b in buckets {
        let pair = b.as_array().ok_or("bucket entry is not a pair")?;
        let idx = pair
            .first()
            .and_then(JsonValue::as_u64)
            .ok_or("bad bucket index")? as u32;
        let n = match pair.get(1) {
            Some(JsonValue::String(s)) => s.parse().map_err(|_| "bad bucket count")?,
            Some(other) => other.as_u64().ok_or("bad bucket count")?,
            None => return Err("bucket entry missing count".into()),
        };
        state.buckets.push((idx, n));
    }
    Ok(state)
}

/// Serializes named baselines to JSON text (see [`save_baselines`]).
pub fn baselines_to_json<'a, I>(entries: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a QuantileBaseline)>,
{
    let mut out = String::from("{\"version\":1,\"baselines\":{");
    for (i, (name, baseline)) in entries.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        crate::events::escape_json_into(&mut out, name);
        out.push_str("\":");
        let state = baseline.to_state();
        let _ = write!(out, "{{\"window\":{},\"active\":", state.window);
        write_histogram_state(&mut out, &state.active);
        out.push_str(",\"previous\":");
        write_histogram_state(&mut out, &state.previous);
        out.push('}');
    }
    out.push_str("}}\n");
    out
}

/// Parses the output of [`baselines_to_json`], returning
/// `(name, baseline)` pairs sorted by name.
pub fn baselines_from_json(src: &str) -> Result<Vec<(String, QuantileBaseline)>, String> {
    let doc = parse_json(src).map_err(|e| e.to_string())?;
    let map = match doc.get("baselines") {
        Some(JsonValue::Object(m)) => m,
        _ => return Err("missing baselines object".into()),
    };
    let mut out = Vec::with_capacity(map.len());
    for (name, entry) in map {
        let window = entry
            .get("window")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("baseline {name}: missing window"))?;
        let active = read_histogram_state(
            entry
                .get("active")
                .ok_or_else(|| format!("baseline {name}: missing active"))?,
        )
        .map_err(|e| format!("baseline {name}: {e}"))?;
        let previous = read_histogram_state(
            entry
                .get("previous")
                .ok_or_else(|| format!("baseline {name}: missing previous"))?,
        )
        .map_err(|e| format!("baseline {name}: {e}"))?;
        out.push((
            name.clone(),
            QuantileBaseline::from_state(&BaselineState {
                window,
                active,
                previous,
            }),
        ));
    }
    Ok(out)
}

/// Writes named baselines to `path` atomically (temp file + rename), so
/// a crash mid-save never leaves a truncated state file.
pub fn save_baselines<'a, I>(path: &Path, entries: I) -> std::io::Result<()>
where
    I: IntoIterator<Item = (&'a str, &'a QuantileBaseline)>,
{
    let json = baselines_to_json(entries);
    let tmp = path.with_extension("tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, path)
}

/// Reads baselines previously written by [`save_baselines`].
pub fn load_baselines(path: &Path) -> Result<Vec<(String, QuantileBaseline)>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    baselines_from_json(&src).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_baseline_is_neutral() {
        let b = QuantileBaseline::new(10);
        assert_eq!(b.rank(1_000), 0.0);
        assert_eq!(b.quantile(0.99), 0);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn rank_and_quantile_agree() {
        let b = QuantileBaseline::new(1_000);
        for v in 1..=500u64 {
            b.record(v * 100);
        }
        let p50 = b.quantile(0.5);
        let r = b.rank(p50);
        assert!((r - 0.5).abs() < 0.1, "rank({p50}) = {r}");
        assert!(b.rank(100_000) > 0.99);
        assert!(b.rank(1) < 0.05);
    }

    #[test]
    fn windows_rotate_and_history_ages_out() {
        let b = QuantileBaseline::new(100);
        // Old regime: low values fill one full window.
        for _ in 0..100 {
            b.record(10);
        }
        // New regime: high values. First rotation keeps the low window
        // as `previous`; the second rotation drops it entirely.
        for _ in 0..200 {
            b.record(1_000_000);
        }
        assert!(
            b.count() <= 200,
            "count() = {} retains stale windows",
            b.count()
        );
        // All history is now the new regime: a low sample ranks at 0.
        assert!(b.rank(10) < 0.05, "old regime should have aged out");
        assert!(b.quantile(0.5) > 500_000);
    }

    #[test]
    fn save_load_round_trip_preserves_quantiles() {
        let b = QuantileBaseline::new(100);
        for v in 1..=250u64 {
            b.record(v * 1_000);
        }
        let feed2 = QuantileBaseline::new(100);
        feed2.record(77);

        let dir = std::env::temp_dir().join(format!("netqos-baseline-{}", std::process::id()));
        let path = dir.join("state.json");
        save_baselines(&path, [("feed1", &b), ("feed2", &feed2)]).unwrap();
        let loaded = load_baselines(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(loaded.len(), 2);
        let restored = &loaded.iter().find(|(n, _)| n == "feed1").unwrap().1;
        assert_eq!(restored.count(), b.count());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(restored.quantile(q), b.quantile(q), "quantile {q}");
        }
        assert_eq!(restored.rank(200_000), b.rank(200_000));
        // Rotation picks up where it left off: the window survives too.
        assert_eq!(restored.to_state(), b.to_state());
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(baselines_from_json("not json").is_err());
        assert!(baselines_from_json("{}").is_err());
        assert!(baselines_from_json("{\"baselines\":{\"x\":{}}}").is_err());
    }

    #[test]
    fn clones_share_windows() {
        let a = QuantileBaseline::new(50);
        let b = a.clone();
        a.record(7);
        assert_eq!(b.count(), 1);
    }
}
