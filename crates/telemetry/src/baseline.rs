//! Incremental quantile baselines over a sliding sample window.
//!
//! A [`QuantileBaseline`] answers two questions about a fresh sample in
//! O(1)/O(buckets) time without retaining raw samples: *where does this
//! value rank against recent history?* (percentile rank) and *what are
//! the recent p50/p99?* (quantile readout). It reuses the telemetry
//! crate's log-bucketed [`Histogram`] — the incremental-quantile role
//! that P² plays in Chambers et al. — and ages data with two rotating
//! windows: samples land in the *active* histogram, and when the active
//! window fills it becomes the *previous* window and a fresh one starts.
//! Queries merge both windows, so the effective history is between one
//! and two windows — old traffic patterns fall away instead of
//! permanently skewing the baseline.

use crate::metrics::Histogram;
use parking_lot::Mutex;
use std::sync::Arc;

/// Default samples per window: at 1 s/cycle, two windows ≈ 10 minutes of
/// history, matching the "p99.8 of last 10 min" framing in the issue.
pub const DEFAULT_WINDOW: u64 = 300;

struct BaselineWindows {
    active: Histogram,
    previous: Histogram,
}

/// A self-aging quantile estimator for one monitored series (a
/// connection's used bandwidth, a device's poll RTT). Cheap to clone;
/// clones share the same windows.
#[derive(Clone)]
pub struct QuantileBaseline {
    window: u64,
    inner: Arc<Mutex<BaselineWindows>>,
}

impl Default for QuantileBaseline {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl QuantileBaseline {
    /// A baseline rotating after `window` samples (min 1).
    pub fn new(window: u64) -> Self {
        QuantileBaseline {
            window: window.max(1),
            inner: Arc::new(Mutex::new(BaselineWindows {
                active: Histogram::new(),
                previous: Histogram::new(),
            })),
        }
    }

    /// Records a sample, rotating the windows when the active one fills.
    pub fn record(&self, v: u64) {
        let mut w = self.inner.lock();
        if w.active.count() >= self.window {
            w.previous = std::mem::take(&mut w.active);
        }
        w.active.record(v);
    }

    /// Percentile rank of `v` against the merged windows, in [0, 1].
    /// 0.0 when no history exists yet.
    pub fn rank(&self, v: u64) -> f64 {
        let w = self.inner.lock();
        let total = w.active.count() + w.previous.count();
        if total == 0 {
            return 0.0;
        }
        let le = w.active.count_le(v) + w.previous.count_le(v);
        (le.min(total) as f64) / total as f64
    }

    /// The value at quantile `q` over the merged windows (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let w = self.inner.lock();
        if w.previous.count() == 0 {
            return w.active.quantile(q);
        }
        let merged = Histogram::new();
        merged.merge_from(&w.active);
        merged.merge_from(&w.previous);
        merged.quantile(q)
    }

    /// Total samples across both windows.
    pub fn count(&self) -> u64 {
        let w = self.inner.lock();
        w.active.count() + w.previous.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_baseline_is_neutral() {
        let b = QuantileBaseline::new(10);
        assert_eq!(b.rank(1_000), 0.0);
        assert_eq!(b.quantile(0.99), 0);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn rank_and_quantile_agree() {
        let b = QuantileBaseline::new(1_000);
        for v in 1..=500u64 {
            b.record(v * 100);
        }
        let p50 = b.quantile(0.5);
        let r = b.rank(p50);
        assert!((r - 0.5).abs() < 0.1, "rank({p50}) = {r}");
        assert!(b.rank(100_000) > 0.99);
        assert!(b.rank(1) < 0.05);
    }

    #[test]
    fn windows_rotate_and_history_ages_out() {
        let b = QuantileBaseline::new(100);
        // Old regime: low values fill one full window.
        for _ in 0..100 {
            b.record(10);
        }
        // New regime: high values. First rotation keeps the low window
        // as `previous`; the second rotation drops it entirely.
        for _ in 0..200 {
            b.record(1_000_000);
        }
        assert!(
            b.count() <= 200,
            "count() = {} retains stale windows",
            b.count()
        );
        // All history is now the new regime: a low sample ranks at 0.
        assert!(b.rank(10) < 0.05, "old regime should have aged out");
        assert!(b.quantile(0.5) > 500_000);
    }

    #[test]
    fn clones_share_windows() {
        let a = QuantileBaseline::new(50);
        let b = a.clone();
        a.record(7);
        assert_eq!(b.count(), 1);
    }
}
