//! Causal per-cycle tracing: spans with trace/parent propagation.
//!
//! A [`Tracer`] stamps every poll cycle with a fresh [`TraceId`] and
//! records a tree of [`SpanRecord`]s — one per pipeline stage (SNMP
//! encode, network exchange, decode, delta computation, path traversal,
//! QoS evaluation, RM decision). Spans are RAII guards: opening a span
//! reads the current top of the span stack as its parent, and dropping
//! the guard timestamps the span and appends it to the cycle buffer.
//!
//! The tracer is cheap when disabled: [`Tracer::span`] is a single
//! relaxed atomic load returning an inert guard, so an un-traced monitor
//! pays no locks and no allocations (< 5 % overhead budget, enforced by
//! the `trace` bench).
//!
//! Clones share state; [`Tracer::fork`] creates an independent span
//! buffer that shares only the enabled flag — one fork per worker thread
//! keeps parent/child attribution exact under the threaded poller.

use crate::FieldValue;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifies one poll cycle end to end.
pub type TraceId = u64;
/// Identifies one span within a trace.
pub type SpanId = u64;

/// One finished span: a named interval with causal parentage.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The cycle this span belongs to.
    pub trace_id: TraceId,
    /// This span's id (unique within the tracer).
    pub span_id: SpanId,
    /// The enclosing span, if any (`None` = cycle root).
    pub parent: Option<SpanId>,
    /// Dotted subsystem path, e.g. `snmp.codec` or `monitor.poll`.
    pub target: &'static str,
    /// Stage name within the target, e.g. `encode`.
    pub name: &'static str,
    /// Start offset from the tracer's origin, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (at least 1 so Chrome renders it).
    pub dur_ns: u64,
    /// Span attributes (device name, byte counts, percentile ranks, ...).
    pub attrs: Vec<(String, FieldValue)>,
}

struct TracerCore {
    enabled: Arc<AtomicBool>,
    origin: Instant,
    next_id: AtomicU64,
    state: Mutex<TraceState>,
}

#[derive(Default)]
struct TraceState {
    trace_id: TraceId,
    stack: Vec<SpanId>,
    spans: Vec<SpanRecord>,
}

/// Span collector for one logical execution context. Cheap to clone
/// (clones share everything); see [`Tracer::fork`] for worker threads.
#[derive(Clone)]
pub struct Tracer {
    core: Arc<TracerCore>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    fn with_enabled(enabled: Arc<AtomicBool>) -> Self {
        Tracer {
            core: Arc::new(TracerCore {
                enabled,
                origin: Instant::now(),
                next_id: AtomicU64::new(1),
                state: Mutex::new(TraceState::default()),
            }),
        }
    }

    /// A tracer that records spans.
    pub fn new() -> Self {
        Self::with_enabled(Arc::new(AtomicBool::new(true)))
    }

    /// A tracer that discards everything (the no-overhead default).
    pub fn disabled() -> Self {
        Self::with_enabled(Arc::new(AtomicBool::new(false)))
    }

    /// A tracer with an independent span buffer sharing this tracer's
    /// enabled flag — give one to each worker thread so concurrent spans
    /// do not corrupt each other's parent stacks.
    pub fn fork(&self) -> Self {
        Self::with_enabled(self.core.enabled.clone())
    }

    /// Turns recording on or off (shared with forks).
    pub fn set_enabled(&self, enabled: bool) {
        self.core.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.core.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Starts a new cycle: clears the span buffer and assigns a fresh
    /// trace id (0 when disabled).
    pub fn begin_cycle(&self) -> TraceId {
        if !self.is_enabled() {
            return 0;
        }
        let id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.core.state.lock();
        st.trace_id = id;
        st.stack.clear();
        st.spans.clear();
        id
    }

    /// Ends the cycle, draining its finished spans (parents after their
    /// children, since guards close inside-out).
    pub fn end_cycle(&self) -> Vec<SpanRecord> {
        if !self.is_enabled() {
            return Vec::new();
        }
        let mut st = self.core.state.lock();
        st.stack.clear();
        std::mem::take(&mut st.spans)
    }

    /// Opens a span under the current innermost span. The guard records
    /// the span when dropped; attributes attach via
    /// [`SpanGuard::set_attr`]. Inert (no lock, no allocation) when the
    /// tracer is disabled.
    #[inline]
    pub fn span(&self, target: &'static str, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        self.span_slow(target, name)
    }

    fn span_slow(&self, target: &'static str, name: &'static str) -> SpanGuard {
        let span_id = self.core.next_id.fetch_add(1, Ordering::Relaxed);
        let (trace_id, parent) = {
            let mut st = self.core.state.lock();
            let parent = st.stack.last().copied();
            st.stack.push(span_id);
            (st.trace_id, parent)
        };
        SpanGuard {
            active: Some(ActiveSpan {
                tracer: self.clone(),
                trace_id,
                span_id,
                parent,
                target,
                name,
                start_ns: self.now_ns(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Number of spans buffered in the current cycle.
    pub fn pending_spans(&self) -> usize {
        self.core.state.lock().spans.len()
    }

    fn finish(&self, span: &mut ActiveSpan) {
        // One shared timebase (`now_ns`) for both endpoints: a second
        // clock read at open time would let a span's recorded end drift
        // past its parent's, breaking child-within-parent nesting.
        let dur_ns = self.now_ns().saturating_sub(span.start_ns);
        let mut st = self.core.state.lock();
        // Pop this span (and anything leaked above it) off the stack.
        if let Some(pos) = st.stack.iter().rposition(|&id| id == span.span_id) {
            st.stack.truncate(pos);
        }
        st.spans.push(SpanRecord {
            trace_id: span.trace_id,
            span_id: span.span_id,
            parent: span.parent,
            target: span.target,
            name: span.name,
            start_ns: span.start_ns,
            dur_ns: dur_ns.max(1),
            attrs: std::mem::take(&mut span.attrs),
        });
    }
}

struct ActiveSpan {
    tracer: Tracer,
    trace_id: TraceId,
    span_id: SpanId,
    parent: Option<SpanId>,
    target: &'static str,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(String, FieldValue)>,
}

/// RAII handle for an open span; records it on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches an attribute (no-op on an inert guard).
    pub fn set_attr(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(a) = &mut self.active {
            a.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Whether this guard will record a span (false when the tracer was
    /// disabled at open time) — lets callers skip attribute formatting.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut a) = self.active.take() {
            let tracer = a.tracer.clone();
            tracer.finish(&mut a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert_eq!(t.begin_cycle(), 0);
        {
            let mut s = t.span("a", "b");
            assert!(!s.is_recording());
            s.set_attr("k", 1u64);
        }
        assert!(t.end_cycle().is_empty());
    }

    #[test]
    fn spans_nest_via_stack() {
        let t = Tracer::new();
        let trace = t.begin_cycle();
        let root_id;
        {
            let root = t.span("cycle", "root");
            root_id = root.active.as_ref().unwrap().span_id;
            {
                let _child = t.span("stage", "inner");
                let _grand = t.span("stage", "leaf");
            }
            let _sibling = t.span("stage", "second");
        }
        let spans = t.end_cycle();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.trace_id == trace));
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").parent, None);
        assert_eq!(by_name("inner").parent, Some(root_id));
        assert_eq!(by_name("leaf").parent, Some(by_name("inner").span_id));
        assert_eq!(by_name("second").parent, Some(root_id));
        // Children close before parents.
        assert_eq!(spans.last().unwrap().name, "root");
    }

    #[test]
    fn attrs_and_timing_recorded() {
        let t = Tracer::new();
        t.begin_cycle();
        {
            let mut s = t.span("snmp", "encode");
            s.set_attr("bytes", 123u64);
            s.set_attr("agent", "10.0.0.7");
        }
        let spans = t.end_cycle();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.dur_ns >= 1);
        assert_eq!(s.attrs[0], ("bytes".to_string(), FieldValue::U64(123)));
        assert_eq!(
            s.attrs[1],
            ("agent".to_string(), FieldValue::Str("10.0.0.7".into()))
        );
    }

    #[test]
    fn fork_shares_enabled_flag_but_not_spans() {
        let t = Tracer::new();
        let w = t.fork();
        t.begin_cycle();
        w.begin_cycle();
        {
            let _s = w.span("worker", "poll");
        }
        assert_eq!(t.end_cycle().len(), 0);
        assert_eq!(w.end_cycle().len(), 1);
        t.set_enabled(false);
        assert!(!w.is_enabled());
    }

    #[test]
    fn begin_cycle_resets_buffer() {
        let t = Tracer::new();
        t.begin_cycle();
        {
            let _s = t.span("a", "one");
        }
        t.begin_cycle();
        {
            let _s = t.span("a", "two");
        }
        let spans = t.end_cycle();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "two");
    }
}
