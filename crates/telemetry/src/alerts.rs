//! Stateful QoS alerting: Prometheus-style rules over live signals.
//!
//! Raw series and per-tick violation flags are not actionable on their
//! own — an operator (or the paper's resource manager) wants
//! deduplicated alerts with a lifecycle and a named culprit. The
//! [`AlertEngine`] is evaluated once per tick against an
//! [`AlertContext`]: a set of labelled scopes (one global scope fed from
//! the metrics [`Registry`], one scope per qospath) carrying numeric
//! signals and diagnostic annotations. Rules are threshold or delta
//! (per-tick rate) predicates with Prometheus-style `for` hysteresis:
//!
//! ```text
//! inactive --cond true--> pending --cond true for N ticks--> firing
//!     ^                      |                                  |
//!     +----cond false--------+             cond false (resolved)+
//! ```
//!
//! Alerts are deduplicated by `(rule, labelset)` fingerprint, so a rule
//! matching three paths maintains three independent state machines.
//! Every state change is reported as an [`AlertTransition`] — the hook
//! for flight-recorder events, transition counters, and the
//! [`WebhookNotifier`] (a thin wrapper over the bounded-queue push
//! worker in [`crate::push`]).

use crate::events::escape_json_into;
use crate::push::{OtlpPusher, PushConfig, PushCounters, PushTarget};
use crate::{escape_label_value, Registry};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;

/// How loudly a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Informational — worth a log line, not a page.
    Info,
    /// Degraded but operating.
    Warning,
    /// Service-level impact.
    Critical,
}

impl AlertSeverity {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertSeverity::Info => "info",
            AlertSeverity::Warning => "warning",
            AlertSeverity::Critical => "critical",
        }
    }

    /// Parses a lowercase severity name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(AlertSeverity::Info),
            "warning" => Some(AlertSeverity::Warning),
            "critical" => Some(AlertSeverity::Critical),
            _ => None,
        }
    }
}

impl fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Threshold comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Whether `value op threshold` holds.
    pub fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            CmpOp::Lt => value < threshold,
            CmpOp::Le => value <= threshold,
            CmpOp::Gt => value > threshold,
            CmpOp::Ge => value >= threshold,
        }
    }

    /// The operator's source form.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Parses an operator token.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            _ => None,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One alert rule: a predicate over a named signal plus `for`
/// hysteresis. `delta` rules compare the signal's change since the
/// previous tick (a per-tick rate) rather than its level.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (alphanumeric and `_`); part of every fingerprint.
    pub name: String,
    /// The signal the predicate reads.
    pub signal: String,
    /// Compare the per-tick change instead of the level.
    pub delta: bool,
    /// Comparison operator.
    pub op: CmpOp,
    /// Threshold the signal (or its delta) is compared against.
    pub threshold: f64,
    /// Consecutive true ticks required before the alert fires.
    pub for_ticks: u64,
    /// Severity stamped on transitions and active alerts.
    pub severity: AlertSeverity,
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alert {} if {}{} {} {} for {} severity {}",
            self.name,
            if self.delta { "delta " } else { "" },
            self.signal,
            self.op,
            self.threshold,
            self.for_ticks.max(1),
            self.severity,
        )
    }
}

/// The default rule set: path QoS violations, a stalled poll loop, and
/// counter-wrap storms (a device rebooting or lying about its counters).
pub fn builtin_alert_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "path_qos_violation".into(),
            signal: "path_violated".into(),
            delta: false,
            op: CmpOp::Gt,
            threshold: 0.5,
            for_ticks: 2,
            severity: AlertSeverity::Critical,
        },
        AlertRule {
            name: "poll_stall".into(),
            signal: "netqos_monitor_polls_total".into(),
            delta: true,
            op: CmpOp::Lt,
            threshold: 0.5,
            for_ticks: 3,
            severity: AlertSeverity::Critical,
        },
        AlertRule {
            name: "counter_wrap_storm".into(),
            signal: "netqos_monitor_counter_wraps_total".into(),
            delta: true,
            op: CmpOp::Gt,
            threshold: 4.0,
            for_ticks: 2,
            severity: AlertSeverity::Warning,
        },
    ]
}

/// Parses a rules file: one rule per line,
/// `alert <name> if [delta] <signal> <op> <value> for <ticks>
/// [severity <level>]`, `#` comments, blank lines ignored. Duplicate
/// rule names are rejected.
pub fn parse_alert_rules(src: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules: Vec<AlertRule> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let rule = parse_rule_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if rules.iter().any(|r| r.name == rule.name) {
            return Err(format!(
                "line {}: duplicate rule name {:?}",
                idx + 1,
                rule.name
            ));
        }
        rules.push(rule);
    }
    Ok(rules)
}

fn next_tok<'a>(toks: &[&'a str], i: &mut usize, what: &str) -> Result<&'a str, String> {
    let t = toks
        .get(*i)
        .copied()
        .ok_or_else(|| format!("expected {what}, found end of line"))?;
    *i += 1;
    Ok(t)
}

fn parse_rule_line(line: &str) -> Result<AlertRule, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mut i = 0usize;
    let kw = next_tok(&toks, &mut i, "`alert`")?;
    if kw != "alert" {
        return Err(format!("expected `alert`, found {kw:?}"));
    }
    let name = next_tok(&toks, &mut i, "a rule name")?;
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!(
            "rule name {name:?} must be alphanumeric/underscore"
        ));
    }
    let kw = next_tok(&toks, &mut i, "`if`")?;
    if kw != "if" {
        return Err(format!("expected `if`, found {kw:?}"));
    }
    let mut signal = next_tok(&toks, &mut i, "a signal name")?;
    let delta = signal == "delta";
    if delta {
        signal = next_tok(&toks, &mut i, "a signal name after `delta`")?;
    }
    let op_tok = next_tok(&toks, &mut i, "an operator (< <= > >=)")?;
    let op = CmpOp::parse(op_tok).ok_or_else(|| format!("bad operator {op_tok:?}"))?;
    let thr_tok = next_tok(&toks, &mut i, "a threshold value")?;
    let threshold: f64 = thr_tok
        .parse()
        .map_err(|_| format!("bad threshold {thr_tok:?}"))?;
    if !threshold.is_finite() {
        return Err(format!("threshold {thr_tok:?} must be finite"));
    }
    let kw = next_tok(&toks, &mut i, "`for`")?;
    if kw != "for" {
        return Err(format!("expected `for`, found {kw:?}"));
    }
    let for_tok = next_tok(&toks, &mut i, "a tick count")?;
    let for_ticks: u64 = for_tok
        .parse()
        .map_err(|_| format!("bad `for` tick count {for_tok:?}"))?;
    if for_ticks == 0 {
        return Err("`for` needs at least 1 tick".into());
    }
    let severity = if i < toks.len() {
        let kw = next_tok(&toks, &mut i, "`severity`")?;
        if kw != "severity" {
            return Err(format!("expected `severity`, found {kw:?}"));
        }
        let sev_tok = next_tok(&toks, &mut i, "a severity (info|warning|critical)")?;
        AlertSeverity::parse(sev_tok).ok_or_else(|| format!("bad severity {sev_tok:?}"))?
    } else {
        AlertSeverity::Warning
    };
    if i < toks.len() {
        return Err(format!("unexpected trailing token {:?}", toks[i]));
    }
    Ok(AlertRule {
        name: name.to_string(),
        signal: signal.to_string(),
        delta,
        op,
        threshold,
        for_ticks,
        severity,
    })
}

/// One labelled evaluation scope: signals a rule can test and
/// annotations (diagnosis) attached to any alert that fires in it.
#[derive(Debug, Clone, Default)]
pub struct AlertScope {
    /// Identity labels (part of the alert fingerprint). Empty for the
    /// global scope.
    pub labels: BTreeMap<String, String>,
    /// Signal values visible to rules in this scope.
    pub signals: BTreeMap<String, f64>,
    /// Diagnosis strings copied onto alerts raised in this scope.
    pub annotations: BTreeMap<String, String>,
}

impl AlertScope {
    /// The unlabelled global scope.
    pub fn global() -> Self {
        AlertScope::default()
    }

    /// A scope with a single identity label.
    pub fn labelled(key: &str, value: &str) -> Self {
        let mut scope = AlertScope::default();
        scope.labels.insert(key.to_string(), value.to_string());
        scope
    }

    /// Sets a signal value.
    pub fn set(&mut self, signal: &str, value: f64) {
        self.signals.insert(signal.to_string(), value);
    }

    /// Attaches a diagnosis annotation.
    pub fn annotate(&mut self, key: &str, value: impl Into<String>) {
        self.annotations.insert(key.to_string(), value.into());
    }
}

/// Everything one evaluation sees: the tick number and the scopes.
#[derive(Debug, Clone, Default)]
pub struct AlertContext {
    /// Monotonic tick counter (timestamps on transitions).
    pub tick: u64,
    /// Evaluation scopes; a rule is tested in every scope that carries
    /// its signal.
    pub scopes: Vec<AlertScope>,
}

impl AlertContext {
    /// An empty context for `tick`.
    pub fn new(tick: u64) -> Self {
        AlertContext {
            tick,
            scopes: Vec::new(),
        }
    }

    /// Adds the global scope fed from a metrics registry: every counter
    /// and gauge becomes a signal under its metric name.
    pub fn add_registry(&mut self, registry: &Registry) {
        let mut scope = AlertScope::global();
        for (name, c) in registry.counter_entries() {
            scope.set(&name, c.get() as f64);
        }
        for (name, g) in registry.gauge_entries() {
            scope.set(&name, g.get() as f64);
        }
        self.scopes.push(scope);
    }
}

/// Where an active alert is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Condition true, `for` hysteresis not yet satisfied.
    Pending,
    /// Condition held for `for_ticks` consecutive ticks.
    Firing,
}

impl AlertState {
    /// The lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// One live `(rule, labelset)` state machine.
#[derive(Debug, Clone)]
pub struct ActiveAlert {
    /// The rule that raised it.
    pub rule: String,
    /// Rule severity.
    pub severity: AlertSeverity,
    /// The rule's hysteresis requirement.
    pub for_ticks: u64,
    /// Identity labels from the matching scope.
    pub labels: BTreeMap<String, String>,
    /// Lifecycle state.
    pub state: AlertState,
    /// Tick this episode entered pending.
    pub started_tick: u64,
    /// Tick the current state was entered.
    pub since_tick: u64,
    /// Consecutive ticks the condition has held.
    pub consecutive: u64,
    /// Most recent evaluated value (level or delta).
    pub value: f64,
    /// Most recent diagnosis annotations from the matching scope.
    pub annotations: BTreeMap<String, String>,
}

/// A finished firing episode, kept in a bounded history.
#[derive(Debug, Clone)]
pub struct ResolvedAlert {
    /// The rule that fired.
    pub rule: String,
    /// The `(rule, labelset)` fingerprint.
    pub fingerprint: String,
    /// Rule severity.
    pub severity: AlertSeverity,
    /// Identity labels.
    pub labels: BTreeMap<String, String>,
    /// Tick the episode entered pending.
    pub started_tick: u64,
    /// Tick it resolved.
    pub resolved_tick: u64,
    /// Last evaluated value while firing.
    pub value: f64,
}

/// One lifecycle edge, reported by [`AlertEngine::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// The rule.
    pub rule: String,
    /// The `(rule, labelset)` fingerprint.
    pub fingerprint: String,
    /// Identity labels.
    pub labels: BTreeMap<String, String>,
    /// State left (`inactive`, `pending`, or `firing`).
    pub from: &'static str,
    /// State entered (`pending`, `firing`, or `resolved`).
    pub to: &'static str,
    /// Tick of the transition.
    pub tick: u64,
    /// Evaluated value at the transition.
    pub value: f64,
    /// Rule severity.
    pub severity: AlertSeverity,
    /// Diagnosis annotations at the transition.
    pub annotations: BTreeMap<String, String>,
}

/// The `(rule, labelset)` dedup key: `rule{k="v",...}`, bare `rule` for
/// the empty labelset. Labels render in sorted order, so the same
/// labelset always produces the same fingerprint.
pub fn fingerprint(rule: &str, labels: &BTreeMap<String, String>) -> String {
    let mut out = String::from(rule);
    if labels.is_empty() {
        return out;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Key for the previous-value store backing `delta` rules: one slot per
/// `(labelset, signal)`.
fn delta_key(labels: &BTreeMap<String, String>, signal: &str) -> String {
    let mut key = fingerprint("", labels);
    key.push('\u{1}');
    key.push_str(signal);
    key
}

/// Resolved episodes kept for `/alerts` history.
const RESOLVED_HISTORY: usize = 32;

/// The rule-evaluation engine: feed it one [`AlertContext`] per tick.
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    active: BTreeMap<String, ActiveAlert>,
    resolved: VecDeque<ResolvedAlert>,
    last_values: BTreeMap<String, f64>,
    transitions_total: u64,
    tick: u64,
}

impl AlertEngine {
    /// An engine over `rules`. The last definition of a name wins (so
    /// user rules appended after [`builtin_alert_rules`] override them),
    /// and rules are sorted by name — evaluation order, and therefore
    /// every transition sequence, is independent of input order.
    pub fn new(mut rules: Vec<AlertRule>) -> Self {
        let mut seen = BTreeSet::new();
        let mut dedup: Vec<AlertRule> = Vec::new();
        for rule in rules.drain(..).rev() {
            if seen.insert(rule.name.clone()) {
                dedup.push(rule);
            }
        }
        dedup.sort_by(|a, b| a.name.cmp(&b.name));
        AlertEngine {
            rules: dedup,
            active: BTreeMap::new(),
            resolved: VecDeque::new(),
            last_values: BTreeMap::new(),
            transitions_total: 0,
            tick: 0,
        }
    }

    /// An engine with only the built-in rules.
    pub fn with_builtin_rules() -> Self {
        AlertEngine::new(builtin_alert_rules())
    }

    /// The effective rule set (deduplicated, sorted by name).
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Currently pending alerts.
    pub fn pending_count(&self) -> u64 {
        self.active
            .values()
            .filter(|a| a.state == AlertState::Pending)
            .count() as u64
    }

    /// Currently firing alerts.
    pub fn firing_count(&self) -> u64 {
        self.active
            .values()
            .filter(|a| a.state == AlertState::Firing)
            .count() as u64
    }

    /// Every live state machine, in fingerprint order.
    pub fn active(&self) -> impl Iterator<Item = (&str, &ActiveAlert)> {
        self.active.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Recent resolved episodes, oldest first.
    pub fn resolved(&self) -> impl Iterator<Item = &ResolvedAlert> {
        self.resolved.iter()
    }

    /// Lifecycle edges reported over the engine's lifetime.
    pub fn transitions_total(&self) -> u64 {
        self.transitions_total
    }

    /// Runs every rule against every scope carrying its signal and
    /// advances the per-fingerprint state machines. Returns the
    /// transitions of this tick, in fingerprint order (true conditions
    /// first, then resolutions).
    pub fn evaluate(&mut self, ctx: &AlertContext) -> Vec<AlertTransition> {
        self.tick = ctx.tick;
        // Pass 1: which fingerprints hold this tick, and at what value.
        // Rules are name-sorted and a fingerprint embeds its rule name,
        // so this map is independent of caller-supplied rule order.
        let mut true_now: BTreeMap<String, (usize, usize, f64)> = BTreeMap::new();
        for (ri, rule) in self.rules.iter().enumerate() {
            for (si, scope) in ctx.scopes.iter().enumerate() {
                let Some(&current) = scope.signals.get(&rule.signal) else {
                    continue;
                };
                let value = if rule.delta {
                    match self
                        .last_values
                        .get(&delta_key(&scope.labels, &rule.signal))
                    {
                        Some(prev) => current - prev,
                        // No previous observation: a delta is undefined,
                        // so the condition cannot hold yet.
                        None => continue,
                    }
                } else {
                    current
                };
                if rule.op.holds(value, rule.threshold) {
                    true_now
                        .entry(fingerprint(&rule.name, &scope.labels))
                        .or_insert((ri, si, value));
                }
            }
        }

        // Pass 2: advance state machines for true conditions.
        let mut transitions = Vec::new();
        for (fp, &(ri, si, value)) in &true_now {
            let rule = &self.rules[ri];
            let scope = &ctx.scopes[si];
            let alert = self
                .active
                .entry(fp.clone())
                .or_insert_with(|| ActiveAlert {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    for_ticks: rule.for_ticks.max(1),
                    labels: scope.labels.clone(),
                    state: AlertState::Pending,
                    started_tick: ctx.tick,
                    since_tick: ctx.tick,
                    consecutive: 0,
                    value,
                    annotations: scope.annotations.clone(),
                });
            let fresh = alert.consecutive == 0;
            alert.consecutive += 1;
            alert.value = value;
            alert.annotations = scope.annotations.clone();
            if alert.state == AlertState::Pending && alert.consecutive >= alert.for_ticks {
                let from = if fresh { "inactive" } else { "pending" };
                alert.state = AlertState::Firing;
                alert.since_tick = ctx.tick;
                transitions.push(make_transition(fp, alert, from, "firing", ctx.tick));
            } else if fresh {
                transitions.push(make_transition(fp, alert, "inactive", "pending", ctx.tick));
            }
        }

        // Pass 3: conditions that stopped holding. Firing alerts resolve
        // (and join the history); pending ones return to inactive
        // silently, Prometheus-style.
        let stale: Vec<String> = self
            .active
            .keys()
            .filter(|fp| !true_now.contains_key(*fp))
            .cloned()
            .collect();
        for fp in stale {
            let Some(alert) = self.active.remove(&fp) else {
                continue;
            };
            if alert.state == AlertState::Firing {
                transitions.push(make_transition(&fp, &alert, "firing", "resolved", ctx.tick));
                self.resolved.push_back(ResolvedAlert {
                    rule: alert.rule,
                    fingerprint: fp,
                    severity: alert.severity,
                    labels: alert.labels,
                    started_tick: alert.started_tick,
                    resolved_tick: ctx.tick,
                    value: alert.value,
                });
                while self.resolved.len() > RESOLVED_HISTORY {
                    self.resolved.pop_front();
                }
            }
        }

        // Pass 4: remember every signal level for next tick's deltas.
        for scope in &ctx.scopes {
            for (signal, &value) in &scope.signals {
                self.last_values
                    .insert(delta_key(&scope.labels, signal), value);
            }
        }

        self.transitions_total += transitions.len() as u64;
        transitions
    }

    /// The `/alerts` JSON document: summary counts, every active alert
    /// with its diagnosis annotations, and the resolved history.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"tick\":{},\"rules\":{},\"pending\":{},\"firing\":{},\"transitions_total\":{}",
            self.tick,
            self.rules.len(),
            self.pending_count(),
            self.firing_count(),
            self.transitions_total,
        );
        out.push_str(",\"alerts\":[");
        for (i, (fp, a)) in self.active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            push_json_str(&mut out, &a.rule);
            out.push_str(",\"fingerprint\":");
            push_json_str(&mut out, fp);
            let _ = write!(
                out,
                ",\"state\":\"{}\",\"severity\":\"{}\",\"started_tick\":{},\
                 \"since_tick\":{},\"for\":{},\"consecutive\":{},\"value\":",
                a.state.as_str(),
                a.severity,
                a.started_tick,
                a.since_tick,
                a.for_ticks,
                a.consecutive,
            );
            push_json_f64(&mut out, a.value);
            out.push_str(",\"labels\":");
            push_json_map(&mut out, &a.labels);
            out.push_str(",\"annotations\":");
            push_json_map(&mut out, &a.annotations);
            out.push('}');
        }
        out.push_str("],\"resolved\":[");
        for (i, r) in self.resolved.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            push_json_str(&mut out, &r.rule);
            out.push_str(",\"fingerprint\":");
            push_json_str(&mut out, &r.fingerprint);
            let _ = write!(
                out,
                ",\"severity\":\"{}\",\"started_tick\":{},\"resolved_tick\":{},\"value\":",
                r.severity, r.started_tick, r.resolved_tick,
            );
            push_json_f64(&mut out, r.value);
            out.push_str(",\"labels\":");
            push_json_map(&mut out, &r.labels);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn make_transition(
    fp: &str,
    alert: &ActiveAlert,
    from: &'static str,
    to: &'static str,
    tick: u64,
) -> AlertTransition {
    AlertTransition {
        rule: alert.rule.clone(),
        fingerprint: fp.to_string(),
        labels: alert.labels.clone(),
        from,
        to,
        tick,
        value: alert.value,
        severity: alert.severity,
        annotations: alert.annotations.clone(),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    escape_json_into(out, s);
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_map(out: &mut String, map: &BTreeMap<String, String>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_str(out, v);
    }
    out.push('}');
}

/// Renders one tick's transitions as the webhook batch document.
pub fn transitions_to_json(source: &str, tick: u64, transitions: &[AlertTransition]) -> String {
    let mut out = String::from("{\"source\":");
    push_json_str(&mut out, source);
    let _ = write!(out, ",\"tick\":{tick},\"transitions\":[");
    for (i, t) in transitions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_str(&mut out, &t.rule);
        out.push_str(",\"fingerprint\":");
        push_json_str(&mut out, &t.fingerprint);
        let _ = write!(
            out,
            ",\"from\":\"{}\",\"to\":\"{}\",\"severity\":\"{}\",\"tick\":{},\"value\":",
            t.from, t.to, t.severity, t.tick,
        );
        push_json_f64(&mut out, t.value);
        out.push_str(",\"labels\":");
        push_json_map(&mut out, &t.labels);
        out.push_str(",\"annotations\":");
        push_json_map(&mut out, &t.annotations);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Webhook delivery of transition batches: the same bounded-queue,
/// background-worker, capped-backoff machinery as the OTLP pusher,
/// POSTing [`transitions_to_json`] bodies to an operator endpoint.
pub struct WebhookNotifier {
    inner: OtlpPusher,
}

impl WebhookNotifier {
    /// Spawns the delivery worker.
    pub fn start(config: PushConfig, counters: PushCounters) -> WebhookNotifier {
        WebhookNotifier {
            inner: OtlpPusher::start(config, counters),
        }
    }

    /// Queues one transition batch; never blocks (a full queue counts a
    /// drop and returns `false`).
    pub fn enqueue(&self, body: String) -> bool {
        self.inner.enqueue(body)
    }

    /// Delivery counters (shared handles, live).
    pub fn counters(&self) -> &PushCounters {
        self.inner.counters()
    }

    /// The configured webhook endpoint.
    pub fn target(&self) -> &PushTarget {
        self.inner.target()
    }

    /// Closes the queue, drains accepted batches, joins the worker.
    pub fn shutdown(&self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    fn rule(name: &str, signal: &str, op: CmpOp, threshold: f64, for_ticks: u64) -> AlertRule {
        AlertRule {
            name: name.into(),
            signal: signal.into(),
            delta: false,
            op,
            threshold,
            for_ticks,
            severity: AlertSeverity::Warning,
        }
    }

    fn ctx_with(tick: u64, signal: &str, value: f64) -> AlertContext {
        let mut ctx = AlertContext::new(tick);
        let mut scope = AlertScope::global();
        scope.set(signal, value);
        ctx.scopes.push(scope);
        ctx
    }

    #[test]
    fn pending_then_firing_then_resolved() {
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Gt, 10.0, 3)]);
        // Tick 1: condition true -> pending.
        let t = engine.evaluate(&ctx_with(1, "temp", 15.0));
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), ("inactive", "pending"));
        assert_eq!(engine.pending_count(), 1);
        // Tick 2: still true, hysteresis not met -> no transition.
        assert!(engine.evaluate(&ctx_with(2, "temp", 16.0)).is_empty());
        // Tick 3: third consecutive true tick -> firing.
        let t = engine.evaluate(&ctx_with(3, "temp", 17.0));
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), ("pending", "firing"));
        assert_eq!(engine.firing_count(), 1);
        assert_eq!(t[0].value, 17.0);
        // Tick 4: stays true -> silent.
        assert!(engine.evaluate(&ctx_with(4, "temp", 18.0)).is_empty());
        // Tick 5: condition clears -> resolved, into history.
        let t = engine.evaluate(&ctx_with(5, "temp", 3.0));
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), ("firing", "resolved"));
        assert_eq!(engine.firing_count(), 0);
        let resolved: Vec<_> = engine.resolved().collect();
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].started_tick, 1);
        assert_eq!(resolved[0].resolved_tick, 5);
        assert_eq!(engine.transitions_total(), 3);
    }

    #[test]
    fn for_one_fires_immediately() {
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Ge, 10.0, 1)]);
        let t = engine.evaluate(&ctx_with(1, "temp", 10.0));
        assert_eq!(t.len(), 1, "for=1 must skip pending");
        assert_eq!((t[0].from, t[0].to), ("inactive", "firing"));
    }

    #[test]
    fn flapping_every_other_tick_never_fires_with_hysteresis() {
        // Satellite requirement: a rule that flaps true/false each tick
        // must never reach firing when `for >= 2`.
        let mut engine = AlertEngine::new(vec![rule("flappy", "sig", CmpOp::Gt, 0.5, 2)]);
        for tick in 1..=40u64 {
            let value = if tick % 2 == 1 { 1.0 } else { 0.0 };
            let transitions = engine.evaluate(&ctx_with(tick, "sig", value));
            assert!(
                transitions.iter().all(|t| t.to != "firing"),
                "flapping rule fired at tick {tick}"
            );
        }
        assert_eq!(engine.firing_count(), 0);
        assert_eq!(engine.resolved().count(), 0);
    }

    #[test]
    fn refire_opens_a_fresh_episode() {
        // Satellite requirement: a resolved alert that re-fires carries a
        // fresh fingerprint timestamp (started_tick), not the old one.
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Gt, 10.0, 2)]);
        engine.evaluate(&ctx_with(1, "temp", 20.0));
        engine.evaluate(&ctx_with(2, "temp", 20.0)); // firing
        engine.evaluate(&ctx_with(3, "temp", 0.0)); // resolved
        engine.evaluate(&ctx_with(7, "temp", 20.0));
        let t = engine.evaluate(&ctx_with(8, "temp", 20.0));
        assert_eq!((t[0].from, t[0].to), ("pending", "firing"));
        let (_, alert) = engine.active().next().unwrap();
        assert_eq!(alert.started_tick, 7, "episode restarts at re-entry");
        assert_eq!(alert.since_tick, 8);
        // Both episodes share one fingerprint; only the first resolved.
        assert_eq!(engine.resolved().count(), 1);
        assert_eq!(engine.resolved().next().unwrap().started_tick, 1);
    }

    #[test]
    fn labelled_scopes_are_independent_machines() {
        let mut engine = AlertEngine::new(vec![rule("slow", "bw", CmpOp::Lt, 100.0, 2)]);
        let mk = |tick: u64, a: f64, b: f64| {
            let mut ctx = AlertContext::new(tick);
            let mut sa = AlertScope::labelled("path", "feed1");
            sa.set("bw", a);
            sa.annotate("bottleneck", "link-a");
            let mut sb = AlertScope::labelled("path", "feed2");
            sb.set("bw", b);
            ctx.scopes.push(sa);
            ctx.scopes.push(sb);
            ctx
        };
        engine.evaluate(&mk(1, 50.0, 500.0));
        let t = engine.evaluate(&mk(2, 50.0, 500.0));
        assert_eq!(t.len(), 1, "only feed1 fires");
        assert_eq!(t[0].fingerprint, "slow{path=\"feed1\"}");
        assert_eq!(
            t[0].annotations.get("bottleneck").map(String::as_str),
            Some("link-a")
        );
        assert_eq!(engine.firing_count(), 1);
        // feed2 dips below too: its machine starts independently.
        let t = engine.evaluate(&mk(3, 50.0, 50.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].fingerprint, "slow{path=\"feed2\"}");
        assert_eq!(t[0].to, "pending");
    }

    #[test]
    fn delta_rules_compare_per_tick_change() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "stall".into(),
            signal: "polls".into(),
            delta: true,
            op: CmpOp::Lt,
            threshold: 0.5,
            for_ticks: 2,
            severity: AlertSeverity::Critical,
        }]);
        // First observation: delta undefined, nothing happens.
        assert!(engine.evaluate(&ctx_with(1, "polls", 10.0)).is_empty());
        // Counter advances: delta = 5, condition false.
        assert!(engine.evaluate(&ctx_with(2, "polls", 15.0)).is_empty());
        // Counter freezes twice: pending, then firing.
        let t = engine.evaluate(&ctx_with(3, "polls", 15.0));
        assert_eq!((t[0].from, t[0].to), ("inactive", "pending"));
        let t = engine.evaluate(&ctx_with(4, "polls", 15.0));
        assert_eq!((t[0].from, t[0].to), ("pending", "firing"));
        assert_eq!(t[0].value, 0.0);
        // Counter moves again: resolved.
        let t = engine.evaluate(&ctx_with(5, "polls", 25.0));
        assert_eq!((t[0].from, t[0].to), ("firing", "resolved"));
    }

    #[test]
    fn missing_signal_resolves_a_firing_alert() {
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Gt, 1.0, 1)]);
        engine.evaluate(&ctx_with(1, "temp", 5.0));
        assert_eq!(engine.firing_count(), 1);
        // The scope disappears entirely (path removed): firing -> resolved.
        let t = engine.evaluate(&AlertContext::new(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].to, "resolved");
    }

    #[test]
    fn last_rule_with_a_name_wins_and_order_is_sorted() {
        let weak = rule("dup", "x", CmpOp::Gt, 100.0, 5);
        let strong = rule("dup", "x", CmpOp::Gt, 1.0, 1);
        let engine = AlertEngine::new(vec![
            rule("zz", "x", CmpOp::Gt, 0.0, 1),
            weak,
            strong.clone(),
            rule("aa", "x", CmpOp::Gt, 0.0, 1),
        ]);
        let names: Vec<&str> = engine.rules().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["aa", "dup", "zz"]);
        assert_eq!(
            engine.rules().iter().find(|r| r.name == "dup"),
            Some(&strong),
            "the later definition overrides"
        );
    }

    #[test]
    fn parse_rules_round_trip() {
        let src = "\
# QoS alerting rules
alert path_starved if path_available_bps < 2000000 for 3 severity critical
alert rank_high if path_rank >= 0.99 for 5
alert poll_stall if delta netqos_monitor_polls_total < 0.5 for 3 severity critical
";
        let rules = parse_alert_rules(src).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "path_starved");
        assert_eq!(rules[0].op, CmpOp::Lt);
        assert_eq!(rules[0].threshold, 2_000_000.0);
        assert_eq!(rules[0].for_ticks, 3);
        assert_eq!(rules[0].severity, AlertSeverity::Critical);
        assert_eq!(
            rules[1].severity,
            AlertSeverity::Warning,
            "default severity"
        );
        assert!(rules[2].delta);
        // Display form re-parses to the same rule.
        for r in &rules {
            let reparsed = parse_alert_rules(&r.to_string()).unwrap();
            assert_eq!(&reparsed[0], r);
        }
    }

    #[test]
    fn parse_rules_rejects_malformed_lines() {
        for (src, needle) in [
            ("alarm x if y > 1 for 2", "expected `alert`"),
            ("alert bad-name if y > 1 for 2", "alphanumeric"),
            ("alert x when y > 1 for 2", "expected `if`"),
            ("alert x if y ~ 1 for 2", "bad operator"),
            ("alert x if y > up for 2", "bad threshold"),
            ("alert x if y > 1", "expected `for`"),
            ("alert x if y > 1 for 0", "at least 1"),
            ("alert x if y > 1 for 2 severity loud", "bad severity"),
            ("alert x if y > 1 for 2 extra", "expected `severity`"),
            (
                "alert x if y > 1 for 1\nalert x if z > 2 for 1",
                "duplicate rule name",
            ),
        ] {
            let err = parse_alert_rules(src).unwrap_err();
            assert!(err.contains(needle), "{src:?}: {err}");
        }
        // Errors carry line numbers.
        let err = parse_alert_rules("# fine\n\nalert ! if y > 1 for 2").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }

    #[test]
    fn registry_scope_feeds_counters_and_gauges() {
        let registry = Registry::new();
        registry.counter("polls_total").add(7);
        registry.gauge("depth").set(-3);
        let mut ctx = AlertContext::new(1);
        ctx.add_registry(&registry);
        let scope = &ctx.scopes[0];
        assert!(scope.labels.is_empty());
        assert_eq!(scope.signals.get("polls_total"), Some(&7.0));
        assert_eq!(scope.signals.get("depth"), Some(&-3.0));
    }

    #[test]
    fn render_json_is_valid_and_complete() {
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Gt, 10.0, 2)]);
        let mut ctx = AlertContext::new(1);
        let mut scope = AlertScope::labelled("path", "feed1");
        scope.set("temp", 20.0);
        scope.annotate("bottleneck", "sw.p1 <-> host.eth0");
        ctx.scopes.push(scope.clone());
        engine.evaluate(&ctx);
        let mut ctx2 = AlertContext::new(2);
        ctx2.scopes.push(scope);
        engine.evaluate(&ctx2);
        let doc = parse_json(&engine.render_json()).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("pending").and_then(|v| v.as_u64()), Some(0));
        let alerts = doc.get("alerts").and_then(|v| v.as_array()).unwrap();
        assert_eq!(alerts.len(), 1);
        let a = &alerts[0];
        assert_eq!(a.get("rule").and_then(|v| v.as_str()), Some("hot"));
        assert_eq!(a.get("state").and_then(|v| v.as_str()), Some("firing"));
        assert_eq!(
            a.get("fingerprint").and_then(|v| v.as_str()),
            Some("hot{path=\"feed1\"}")
        );
        assert_eq!(
            a.get("annotations")
                .and_then(|v| v.get("bottleneck"))
                .and_then(|v| v.as_str()),
            Some("sw.p1 <-> host.eth0")
        );
        // Resolve it; the history shows up in the document.
        engine.evaluate(&AlertContext::new(3));
        let doc = parse_json(&engine.render_json()).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(0));
        let resolved = doc.get("resolved").and_then(|v| v.as_array()).unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(
            resolved[0].get("resolved_tick").and_then(|v| v.as_u64()),
            Some(3)
        );
    }

    #[test]
    fn transition_batches_render_as_json() {
        let mut engine = AlertEngine::new(vec![rule("hot", "temp", CmpOp::Gt, 10.0, 1)]);
        let transitions = engine.evaluate(&ctx_with(4, "temp", 42.0));
        let body = transitions_to_json("netqos", 4, &transitions);
        let doc = parse_json(&body).unwrap();
        assert_eq!(doc.get("source").and_then(|v| v.as_str()), Some("netqos"));
        assert_eq!(doc.get("tick").and_then(|v| v.as_u64()), Some(4));
        let ts = doc.get("transitions").and_then(|v| v.as_array()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].get("to").and_then(|v| v.as_str()), Some("firing"));
        assert_eq!(ts[0].get("from").and_then(|v| v.as_str()), Some("inactive"));
    }

    #[test]
    fn builtin_rules_parse_from_their_display_form() {
        for r in builtin_alert_rules() {
            let reparsed = parse_alert_rules(&r.to_string()).unwrap();
            assert_eq!(reparsed[0], r);
        }
    }
}
