//! Shard federation: one export plane over N monitoring shards.
//!
//! A production deployment runs one `MonitoringService` per subnet (one
//! spec file each); centralized observability should receive *mergeable
//! summaries* from them, not raw streams. Each shard hands the
//! [`ShardRegistry`] three things: its metrics [`Registry`], a health
//! probe, and a snapshot renderer. The federation then serves a single
//! combined surface:
//!
//! * `/metrics` — every shard's series labelled `shard="..."`, plus an
//!   unlabelled aggregate per family (counters and gauges summed,
//!   log-bucketed histograms merged bucket-by-bucket, rendered with
//!   full `_bucket{le="..."}` exposition);
//! * `/healthz` — `503` if *any* shard reports unhealthy, with the
//!   per-shard detail in the body;
//! * `/snapshot` — an array of per-shard tick digests.
//!
//! Merging happens at scrape time from live handles — no copies are
//! kept between scrapes, and a scrape never blocks a shard's hot path
//! (reads are the same relaxed atomic loads the shard itself uses).

use crate::http::{HttpRequest, HttpResponse, Router};
use crate::lts::json_escape;
use crate::promql::{api_query_response, QueryEngine, SeriesSource};
use crate::{escape_label_value, render_histogram_into, split_labeled_name, Registry};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shard's health as seen by its probe.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    /// Whether the shard's tick loop is live (a stalled shard turns the
    /// whole federation's `/healthz` to 503).
    pub healthy: bool,
    /// The shard's own `/healthz` JSON document, embedded verbatim in
    /// the federated body.
    pub detail: String,
}

/// A shard's `/query` handler: answers long-term stats range reads.
type QueryHook = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A shard's `/profile` handler: renders its tick-phase profile.
type ProfileHook = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// A member of the federation: a name, its metrics registry, and the
/// two read closures the combined endpoints call at scrape time.
pub struct Shard {
    name: String,
    registry: Arc<Registry>,
    health: Arc<dyn Fn() -> ShardHealth + Send + Sync>,
    snapshot: Arc<dyn Fn() -> String + Send + Sync>,
    alerts: Arc<dyn Fn() -> String + Send + Sync>,
    query: Option<QueryHook>,
    profile: Option<ProfileHook>,
    promql: Option<Arc<dyn SeriesSource>>,
}

impl Shard {
    /// A shard with live read hooks. `health` is polled by `/healthz`,
    /// `snapshot` must return the shard's tick digest as a JSON
    /// document.
    pub fn new(
        name: impl Into<String>,
        registry: Arc<Registry>,
        health: impl Fn() -> ShardHealth + Send + Sync + 'static,
        snapshot: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        Shard {
            name: name.into(),
            registry,
            health: Arc::new(health),
            snapshot: Arc::new(snapshot),
            alerts: Arc::new(|| "{}".into()),
            query: None,
            profile: None,
            promql: None,
        }
    }

    /// Attaches the shard's `/alerts` document hook (the live alert
    /// engine state as JSON); without it the federated view shows `{}`.
    pub fn with_alerts(mut self, alerts: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.alerts = Arc::new(alerts);
        self
    }

    /// Attaches the shard's long-term stats `/query` handler (same
    /// request contract as the live endpoint); without it the federated
    /// `/query` answers 404 for this shard.
    pub fn with_query(
        mut self,
        query: impl Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    ) -> Self {
        self.query = Some(Arc::new(query));
        self
    }

    /// Attaches the shard's tick-phase `/profile` handler (same
    /// request contract as the live endpoint, including
    /// `?format=json|folded`); without it the federated `/profile`
    /// answers 404 for this shard.
    pub fn with_profile(
        mut self,
        profile: impl Fn(&HttpRequest) -> HttpResponse + Send + Sync + 'static,
    ) -> Self {
        self.profile = Some(Arc::new(profile));
        self
    }

    /// Attaches the shard's query-engine series source (usually an
    /// `LtsSource` over its long-term store). Shards with a source are
    /// fanned out to by the federated `/api/v1/query` engine; shards
    /// without one are reported in the response `warnings`.
    pub fn with_promql(mut self, source: Arc<dyn SeriesSource>) -> Self {
        self.promql = Some(source);
        self
    }

    /// A shard that is always healthy and has an empty snapshot — for
    /// registries without a live tick loop behind them (tests, batch
    /// jobs).
    pub fn metrics_only(name: impl Into<String>, registry: Arc<Registry>) -> Self {
        Shard::new(
            name,
            registry,
            || ShardHealth {
                healthy: true,
                detail: "{\"status\":\"ok\"}".into(),
            },
            || "{}".into(),
        )
    }

    /// The shard's name (the `shard` label value).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The federation: a set of registered shards and the merged read
/// plane over them.
#[derive(Default)]
pub struct ShardRegistry {
    shards: RwLock<Vec<Shard>>,
    scrapes: AtomicU64,
}

impl ShardRegistry {
    /// An empty federation.
    pub fn new() -> Arc<Self> {
        Arc::new(ShardRegistry::default())
    }

    /// Adds a shard. Duplicate names are rejected — the `shard` label
    /// must identify exactly one member.
    pub fn register(&self, shard: Shard) -> Result<(), String> {
        let mut shards = self.shards.write();
        if shards.iter().any(|s| s.name == shard.name) {
            return Err(format!("duplicate shard name {:?}", shard.name));
        }
        shards.push(shard);
        Ok(())
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.shards.read().len()
    }

    /// Whether no shards are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Combined `/metrics` scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// A registry holding the sum/merge of every shard's metrics —
    /// counters and gauges added, histograms merged. A fresh merge per
    /// call; shard registries are untouched.
    pub fn merged(&self) -> Registry {
        let merged = Registry::default();
        for shard in self.shards.read().iter() {
            merged.merge_from(&shard.registry);
        }
        merged
    }

    /// Renders the combined Prometheus exposition: per-shard series
    /// labelled `shard="..."` followed by the unlabelled aggregate, one
    /// `# TYPE` header per family, plus the federation's own
    /// `netqos_federation_*` meta-series.
    pub fn render_merged_prometheus(&self) -> String {
        self.scrapes.fetch_add(1, Ordering::Relaxed);
        let shards = self.shards.read();
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE netqos_federation_shards gauge");
        let _ = writeln!(out, "netqos_federation_shards {}", shards.len());
        let _ = writeln!(out, "# TYPE netqos_federation_scrapes_total counter");
        let _ = writeln!(
            out,
            "netqos_federation_scrapes_total {}",
            self.scrapes.load(Ordering::Relaxed)
        );

        // Union each metric family across shards, keeping per-shard
        // handles so the aggregate and the labelled series come from
        // one pass.
        let mut counters: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        let mut gauges: BTreeMap<String, Vec<(String, i64)>> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Vec<(String, crate::Histogram)>> = BTreeMap::new();
        for shard in shards.iter() {
            for (name, c) in shard.registry.counter_entries() {
                counters
                    .entry(name)
                    .or_default()
                    .push((shard.name.clone(), c.get()));
            }
            for (name, g) in shard.registry.gauge_entries() {
                gauges
                    .entry(name)
                    .or_default()
                    .push((shard.name.clone(), g.get()));
            }
            for (name, h) in shard.registry.histogram_entries() {
                histograms
                    .entry(name)
                    .or_default()
                    .push((shard.name.clone(), h));
            }
        }

        for (name, series) in &counters {
            let (base, plain) = split_labeled_name(name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let mut total = 0u64;
            for (shard, v) in series {
                let _ = writeln!(out, "{} {v}", shard_series(&base, &plain, shard));
                total += v;
            }
            let _ = writeln!(out, "{plain} {total}");
        }
        for (name, series) in &gauges {
            let (base, plain) = split_labeled_name(name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let mut total = 0i64;
            for (shard, v) in series {
                let _ = writeln!(out, "{} {v}", shard_series(&base, &plain, shard));
                total += v;
            }
            let _ = writeln!(out, "{plain} {total}");
        }
        for (name, series) in &histograms {
            let (base, full) = split_labeled_name(name);
            let labels = crate::embedded_labels(&base, &full);
            let _ = writeln!(out, "# TYPE {base} histogram");
            let merged = crate::Histogram::new();
            for (shard, h) in series {
                render_histogram_into(&mut out, &base, Some(shard), labels, h);
                merged.merge_from(h);
            }
            render_histogram_into(&mut out, &base, None, labels, &merged);
        }
        out
    }

    /// The federated `/alerts`: summed pending/firing counts over every
    /// shard's alert engine, with the per-shard documents embedded.
    pub fn alerts_response(&self) -> HttpResponse {
        let shards = self.shards.read();
        let mut pending = 0u64;
        let mut firing = 0u64;
        let mut entries = String::new();
        for (i, shard) in shards.iter().enumerate() {
            let doc = (shard.alerts)();
            if let Ok(parsed) = crate::parse_json(&doc) {
                pending += parsed.get("pending").and_then(|v| v.as_u64()).unwrap_or(0);
                firing += parsed.get("firing").and_then(|v| v.as_u64()).unwrap_or(0);
            }
            if i > 0 {
                entries.push(',');
            }
            let _ = write!(
                entries,
                "{{\"shard\":{:?},\"alerts\":{}}}",
                shard.name,
                embed_json(&doc),
            );
        }
        HttpResponse::json(
            200,
            format!("{{\"pending\":{pending},\"firing\":{firing},\"shards\":[{entries}]}}\n"),
        )
    }

    /// The federated `/query`: long-term stats are per-shard stores, so
    /// the request must pick one with `shard=<name>`; the rest of the
    /// query string is handed to that shard's handler unchanged.
    pub fn query_response(&self, req: &HttpRequest) -> HttpResponse {
        let Some(name) = req.query_param("shard") else {
            let shards = self.shards.read();
            let with_query: Vec<&str> = shards
                .iter()
                .filter(|s| s.query.is_some())
                .map(|s| s.name.as_str())
                .collect();
            return HttpResponse::json(
                400,
                format!(
                    "{{\"error\":\"missing shard= parameter\",\"shards\":[{}]}}\n",
                    with_query
                        .iter()
                        .map(|n| json_escape(n))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            );
        };
        let shards = self.shards.read();
        let Some(shard) = shards.iter().find(|s| s.name == name) else {
            return HttpResponse::json(
                404,
                format!(
                    "{{\"error\":\"unknown shard\",\"shard\":{}}}\n",
                    json_escape(&name)
                ),
            );
        };
        match &shard.query {
            Some(q) => q(req),
            None => HttpResponse::json(
                404,
                format!(
                    "{{\"error\":\"shard has no long-term store\",\"shard\":{}}}\n",
                    json_escape(&name)
                ),
            ),
        }
    }

    /// The federated `/profile`: tick-phase profiles are per-shard, so
    /// the request must pick one with `shard=<name>`; the rest of the
    /// query string (`format=json|folded`) is handed to that shard's
    /// handler unchanged.
    pub fn profile_dispatch(&self, req: &HttpRequest) -> HttpResponse {
        let Some(name) = req.query_param("shard") else {
            let shards = self.shards.read();
            let with_profile: Vec<&str> = shards
                .iter()
                .filter(|s| s.profile.is_some())
                .map(|s| s.name.as_str())
                .collect();
            return HttpResponse::json(
                400,
                format!(
                    "{{\"error\":\"missing shard= parameter\",\"shards\":[{}]}}\n",
                    with_profile
                        .iter()
                        .map(|n| json_escape(n))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            );
        };
        let shards = self.shards.read();
        let Some(shard) = shards.iter().find(|s| s.name == name) else {
            return HttpResponse::json(
                404,
                format!(
                    "{{\"error\":\"unknown shard\",\"shard\":{}}}\n",
                    json_escape(&name)
                ),
            );
        };
        match &shard.profile {
            Some(p) => p(req),
            None => HttpResponse::json(
                404,
                format!(
                    "{{\"error\":\"shard has no profiler attached\",\"shard\":{}}}\n",
                    json_escape(&name)
                ),
            ),
        }
    }

    /// The true cross-shard query engine behind `/api/v1/query` and
    /// `/api/v1/query_range` (unlike the legacy one-shard-at-a-time
    /// `/query?shard=` proxy): one [`QueryEngine`] fanning out to every
    /// shard that attached a series source, each shard's series tagged
    /// `shard="..."`. One evaluation therefore *is* the merge — plain
    /// selectors keep per-shard series apart, aggregations (`sum by
    /// (path)`) fold across shards. Shards without a source, and
    /// shards whose store fails to enumerate, degrade to response
    /// warnings instead of failing the query.
    pub fn promql_engine(&self) -> QueryEngine {
        let shards = self.shards.read();
        let mut engine = QueryEngine::new();
        for shard in shards.iter() {
            match &shard.promql {
                Some(src) => engine.push_source(Some(&shard.name), src.clone()),
                None => engine
                    .push_warning(format!("shard {}: no long-term store attached", shard.name)),
            }
        }
        engine
    }

    /// Serves the federated `/api/v1/query` (`range = false`) or
    /// `/api/v1/query_range` (`range = true`).
    pub fn promql_response(&self, req: &HttpRequest, range: bool) -> HttpResponse {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        api_query_response(&self.promql_engine(), req, range, now)
    }

    /// The federated `/healthz`: 200 only when every shard is healthy,
    /// 503 otherwise, always with per-shard detail in the body.
    pub fn healthz_response(&self) -> HttpResponse {
        let shards = self.shards.read();
        let mut body = String::from("{\"status\":");
        let unhealthy: Vec<&str> = shards
            .iter()
            .filter(|s| !(s.health)().healthy)
            .map(|s| s.name.as_str())
            .collect();
        let healthy = unhealthy.is_empty() && !shards.is_empty();
        let _ = write!(
            body,
            "\"{}\",\"shards\":[",
            if shards.is_empty() {
                "empty"
            } else if healthy {
                "ok"
            } else {
                "degraded"
            }
        );
        for (i, shard) in shards.iter().enumerate() {
            let health = (shard.health)();
            if i > 0 {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"shard\":{:?},\"healthy\":{},\"detail\":{}}}",
                shard.name,
                health.healthy,
                embed_json(&health.detail),
            );
        }
        body.push_str("]}\n");
        HttpResponse::json(if healthy { 200 } else { 503 }, body)
    }

    /// The federated `/snapshot`: every shard's tick digest in one
    /// array, newest state at scrape time.
    pub fn snapshot_response(&self) -> HttpResponse {
        let shards = self.shards.read();
        let mut body = String::from("{\"shards\":[");
        for (i, shard) in shards.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"shard\":{:?},\"snapshot\":{}}}",
                shard.name,
                embed_json(&(shard.snapshot)()),
            );
        }
        body.push_str("]}\n");
        HttpResponse::json(200, body)
    }

    /// The endpoint router for [`HttpServer::serve`]
    /// (`crate::HttpServer`): combined `/metrics`, `/healthz`,
    /// `/alerts`, `/snapshot`, and `/` index.
    pub fn router(self: &Arc<Self>) -> Arc<Router> {
        let fed = self.clone();
        Arc::new(move |req: &HttpRequest| match req.path.as_str() {
            "/metrics" => Some(HttpResponse::prometheus(fed.render_merged_prometheus()).into()),
            "/healthz" => Some(fed.healthz_response().into()),
            "/alerts" => Some(fed.alerts_response().into()),
            "/snapshot" => Some(fed.snapshot_response().into()),
            "/query" => Some(fed.query_response(req).into()),
            "/profile" => Some(fed.profile_dispatch(req).into()),
            "/api/v1/query" => Some(fed.promql_response(req, false).into()),
            "/api/v1/query_range" => Some(fed.promql_response(req, true).into()),
            "/" => Some(
                HttpResponse::json(
                    200,
                    format!(
                        "{{\"federation\":{{\"shards\":{}}},\
                         \"endpoints\":[\"/metrics\",\"/healthz\",\"/alerts\",\"/snapshot\",\
                         \"/query\",\"/profile\",\"/api/v1/query\",\"/api/v1/query_range\"]}}\n",
                        fed.len()
                    ),
                )
                .into(),
            ),
            _ => None,
        })
    }
}

/// One shard-labelled sample series: splices `shard="..."` into an
/// existing embedded label set, or opens a fresh one.
fn shard_series(base: &str, series: &str, shard: &str) -> String {
    let shard = escape_label_value(shard);
    if series.len() > base.len() {
        let labels = &series[base.len() + 1..series.len() - 1];
        format!("{base}{{shard=\"{shard}\",{labels}}}")
    } else {
        format!("{base}{{shard=\"{shard}\"}}")
    }
}

/// Embeds a shard-supplied JSON document in a larger document: trimmed
/// verbatim when it looks like JSON, re-quoted as a string otherwise so
/// a misbehaving shard cannot corrupt the federated body.
fn embed_json(doc: &str) -> String {
    let trimmed = doc.trim();
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        trimmed.to_string()
    } else {
        let mut quoted = String::from("\"");
        crate::events::escape_json_into(&mut quoted, trimmed);
        quoted.push('"');
        quoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, HttpRoute};

    fn two_shard_registry() -> Arc<ShardRegistry> {
        let fed = ShardRegistry::new();
        let a = Registry::new();
        a.counter("netqos_monitor_ticks_total").add(3);
        a.gauge("netqos_monitor_trap_outbox_depth").set(1);
        a.histogram("netqos_monitor_tick_duration_ns").record(100);
        let b = Registry::new();
        b.counter("netqos_monitor_ticks_total").add(4);
        b.counter("only_in_b_total").inc();
        b.histogram("netqos_monitor_tick_duration_ns").record(300);
        fed.register(Shard::metrics_only("subnet-a", a)).unwrap();
        fed.register(Shard::metrics_only("subnet-b", b)).unwrap();
        fed
    }

    #[test]
    fn merged_metrics_carry_shard_labels_and_aggregates() {
        let fed = two_shard_registry();
        let text = fed.render_merged_prometheus();
        assert!(text.contains("netqos_federation_shards 2"), "{text}");
        // Per-shard labelled series plus the unlabelled sum.
        assert!(
            text.contains("netqos_monitor_ticks_total{shard=\"subnet-a\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("netqos_monitor_ticks_total{shard=\"subnet-b\"} 4"),
            "{text}"
        );
        assert!(text.contains("\nnetqos_monitor_ticks_total 7\n"), "{text}");
        // A family present in only one shard still aggregates.
        assert!(text.contains("only_in_b_total{shard=\"subnet-b\"} 1"));
        assert!(text.contains("\nonly_in_b_total 1\n"));
        // Histograms: per-shard and merged bucket exposition.
        assert!(
            text.contains("netqos_monitor_tick_duration_ns_bucket{shard=\"subnet-a\",le="),
            "{text}"
        );
        assert!(
            text.contains("netqos_monitor_tick_duration_ns_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("netqos_monitor_tick_duration_ns_sum 400"),
            "{text}"
        );
        // One TYPE header per family, shared by all label sets.
        assert_eq!(
            text.matches("# TYPE netqos_monitor_ticks_total counter")
                .count(),
            1
        );
        assert_eq!(fed.scrapes(), 1);
    }

    #[test]
    fn merged_registry_preserves_totals() {
        let fed = two_shard_registry();
        let merged = fed.merged();
        assert_eq!(merged.counter("netqos_monitor_ticks_total").get(), 7);
        let h = merged.histogram("netqos_monitor_tick_duration_ns");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
    }

    #[test]
    fn healthz_is_503_when_any_shard_stalls() {
        let fed = ShardRegistry::new();
        fed.register(Shard::metrics_only("ok-shard", Registry::new()))
            .unwrap();
        fed.register(Shard::new(
            "stalled-shard",
            Registry::new(),
            || ShardHealth {
                healthy: false,
                detail: "{\"status\":\"stale\",\"ticks\":9}".into(),
            },
            || "{}".into(),
        ))
        .unwrap();
        let resp = fed.healthz_response();
        assert_eq!(resp.status, 503);
        let doc = parse_json(&resp.body).unwrap();
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("degraded"));
        let shards = doc.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(shards.len(), 2);
        let stalled = shards
            .iter()
            .find(|s| s.get("shard").and_then(|v| v.as_str()) == Some("stalled-shard"))
            .unwrap();
        assert_eq!(
            stalled
                .get("detail")
                .and_then(|d| d.get("status"))
                .and_then(|v| v.as_str()),
            Some("stale")
        );
    }

    #[test]
    fn snapshot_lists_every_shard_digest() {
        let fed = ShardRegistry::new();
        fed.register(Shard::new(
            "a",
            Registry::new(),
            || ShardHealth {
                healthy: true,
                detail: "{}".into(),
            },
            || "{\"ticks\":5,\"paths\":[]}".into(),
        ))
        .unwrap();
        let resp = fed.snapshot_response();
        assert_eq!(resp.status, 200);
        let doc = parse_json(&resp.body).unwrap();
        let shards = doc.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            shards[0]
                .get("snapshot")
                .and_then(|s| s.get("ticks"))
                .and_then(|v| v.as_u64()),
            Some(5)
        );
    }

    #[test]
    fn alerts_response_sums_shard_counts() {
        let fed = ShardRegistry::new();
        fed.register(
            Shard::metrics_only("a", Registry::new())
                .with_alerts(|| "{\"pending\":1,\"firing\":2,\"alerts\":[]}".into()),
        )
        .unwrap();
        fed.register(Shard::metrics_only("b", Registry::new()))
            .unwrap();
        let resp = fed.alerts_response();
        assert_eq!(resp.status, 200);
        let doc = parse_json(&resp.body).unwrap();
        assert_eq!(doc.get("pending").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(2));
        let shards = doc.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[0]
                .get("alerts")
                .and_then(|a| a.get("firing"))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn embedded_label_names_get_shard_label_spliced_in() {
        let fed = ShardRegistry::new();
        let a = Registry::new();
        a.gauge("netqos_build_info{version=\"0.1.0\"}").set(1);
        fed.register(Shard::metrics_only("subnet-a", a)).unwrap();
        let text = fed.render_merged_prometheus();
        assert!(text.contains("# TYPE netqos_build_info gauge"), "{text}");
        assert!(
            text.contains("netqos_build_info{shard=\"subnet-a\",version=\"0.1.0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("\nnetqos_build_info{version=\"0.1.0\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn duplicate_shard_names_are_rejected() {
        let fed = ShardRegistry::new();
        fed.register(Shard::metrics_only("x", Registry::new()))
            .unwrap();
        assert!(fed
            .register(Shard::metrics_only("x", Registry::new()))
            .is_err());
    }

    #[test]
    fn router_serves_combined_endpoints() {
        let fed = two_shard_registry();
        let router = fed.router();
        let req = |path: &str| HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            accept: String::new(),
        };
        let Some(HttpRoute::Response(metrics)) = router(&req("/metrics")) else {
            panic!("no /metrics route");
        };
        assert!(metrics.body.contains("shard=\"subnet-a\""));
        let Some(HttpRoute::Response(health)) = router(&req("/healthz")) else {
            panic!("no /healthz route");
        };
        assert_eq!(health.status, 200);
        let Some(HttpRoute::Response(snap)) = router(&req("/snapshot")) else {
            panic!("no /snapshot route");
        };
        assert!(parse_json(&snap.body).is_ok());
        let Some(HttpRoute::Response(alerts)) = router(&req("/alerts")) else {
            panic!("no /alerts route");
        };
        assert!(parse_json(&alerts.body).is_ok());
        let Some(HttpRoute::Response(index)) = router(&req("/")) else {
            panic!("no / route");
        };
        assert!(index.body.contains("/alerts"), "{}", index.body);
        assert!(router(&req("/nope")).is_none());
    }

    #[test]
    fn query_dispatches_to_the_named_shard() {
        let fed = ShardRegistry::new();
        fed.register(
            Shard::metrics_only("a", Registry::new())
                .with_query(|req| HttpResponse::json(200, format!("{{\"q\":{:?}}}", req.query))),
        )
        .unwrap();
        fed.register(Shard::metrics_only("b", Registry::new()))
            .unwrap();
        let req = |query: &str| HttpRequest {
            method: "GET".into(),
            path: "/query".into(),
            query: query.into(),
            accept: String::new(),
        };
        // Dispatch reaches the named shard's handler with the full query.
        let resp = fed.query_response(&req("shard=a&series=*&range=0:9&step=1s"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("series=*"), "{}", resp.body);
        // Missing shard param: 400 listing the shards that can answer.
        let resp = fed.query_response(&req("series=*"));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"a\""), "{}", resp.body);
        assert!(!resp.body.contains("\"b\""), "{}", resp.body);
        // Unknown shard and store-less shard: 404.
        assert_eq!(fed.query_response(&req("shard=zz")).status, 404);
        assert_eq!(fed.query_response(&req("shard=b")).status, 404);
        // The route is wired into the router.
        let router = fed.router();
        assert!(router(&req("shard=a")).is_some());
    }

    #[test]
    fn profile_dispatches_to_the_named_shard() {
        use crate::profile::{profile_response, ProfileHub, SpanView};
        let hub = ProfileHub::new(16);
        hub.record_views(&[SpanView {
            span_id: 1,
            parent: None,
            target: "monitor",
            name: "cycle",
            dur_ns: 500,
        }]);
        let fed = ShardRegistry::new();
        fed.register(
            Shard::metrics_only("a", Registry::new())
                .with_profile(move |req| profile_response(&hub, req)),
        )
        .unwrap();
        fed.register(Shard::metrics_only("b", Registry::new()))
            .unwrap();
        let req = |query: &str| HttpRequest {
            method: "GET".into(),
            path: "/profile".into(),
            query: query.into(),
            accept: String::new(),
        };
        // Dispatch reaches the named shard's profiler, format passthrough.
        let resp = fed.profile_dispatch(&req("shard=a&format=folded"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "monitor.cycle 500\n");
        // Missing shard param: 400 listing the shards that can answer.
        let resp = fed.profile_dispatch(&req("format=json"));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"a\""), "{}", resp.body);
        assert!(!resp.body.contains("\"b\""), "{}", resp.body);
        // Unknown shard and profiler-less shard: 404.
        assert_eq!(fed.profile_dispatch(&req("shard=zz")).status, 404);
        assert_eq!(fed.profile_dispatch(&req("shard=b")).status, 404);
        // The route is wired into the router.
        let router = fed.router();
        assert!(router(&req("shard=a")).is_some());
    }

    #[test]
    fn promql_engine_merges_shards_and_warns_on_missing_stores() {
        use crate::promql::RegistrySource;
        let fed = ShardRegistry::new();
        let a = Registry::new();
        a.gauge("netqos_path_used_bps{path=\"mw\"}").set(100);
        let b = Registry::new();
        b.gauge("netqos_path_used_bps{path=\"mw\"}").set(250);
        fed.register(
            Shard::metrics_only("east", a.clone()).with_promql(Arc::new(RegistrySource::new(a))),
        )
        .unwrap();
        fed.register(
            Shard::metrics_only("west", b.clone()).with_promql(Arc::new(RegistrySource::new(b))),
        )
        .unwrap();
        fed.register(Shard::metrics_only("storeless", Registry::new()))
            .unwrap();

        let req = |query: &str| HttpRequest {
            method: "GET".into(),
            path: "/api/v1/query".into(),
            query: query.into(),
            accept: String::new(),
        };
        // Plain selector: one series per shard, shard-labelled.
        let resp = fed.promql_response(&req("query=netqos_path_used_bps&time=100"), false);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"shard\":\"east\""), "{}", resp.body);
        assert!(resp.body.contains("\"shard\":\"west\""), "{}", resp.body);
        assert!(
            resp.body
                .contains("shard storeless: no long-term store attached"),
            "{}",
            resp.body
        );
        // Cross-shard aggregate: one folded sample.
        let resp = fed.promql_response(
            &req("query=sum%20by%20(path)%20(netqos_path_used_bps)&time=100"),
            false,
        );
        assert!(
            resp.body
                .contains("{\"metric\":{\"path\":\"mw\"},\"value\":[100,\"350\"]}"),
            "{}",
            resp.body
        );
        // The routes are wired.
        let router = fed.router();
        let mut r = req("query=1&time=5");
        assert!(router(&r).is_some());
        r.path = "/api/v1/query_range".into();
        r.query = "query=1&start=0&end=2&step=1".into();
        assert!(router(&r).is_some());
        // Malformed parameters answer 400 with an error body.
        let resp = fed.promql_response(&req("query=rate(x)&time=5"), false);
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"status\":\"error\""), "{}", resp.body);
    }

    #[test]
    fn empty_federation_reports_empty_not_ok() {
        let fed = ShardRegistry::new();
        assert!(fed.is_empty());
        let resp = fed.healthz_response();
        assert_eq!(resp.status, 503, "an empty federation is not healthy");
        assert!(resp.body.contains("\"empty\""));
    }
}
