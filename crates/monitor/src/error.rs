//! Monitor error type.

use std::fmt;

/// Errors from the monitoring pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorError {
    /// SNMP-level failure talking to an agent.
    Snmp(String),
    /// A response was missing an object the monitor asked for.
    MissingObject(String),
    /// A response object had the wrong type.
    WrongType { oid: String, got: &'static str },
    /// A snapshot references an interface the topology does not know.
    UnknownInterface { node: String, descr: String },
    /// Topology/path failure.
    Topology(String),
    /// Simulator failure while driving the in-sim runtime.
    Sim(String),
    /// The poll timed out (no response within the deadline).
    Timeout { node: String },
    /// The node is not SNMP-capable, so it cannot be polled.
    NotPollable(String),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Snmp(msg) => write!(f, "SNMP failure: {msg}"),
            MonitorError::MissingObject(oid) => write!(f, "response missing object {oid}"),
            MonitorError::WrongType { oid, got } => {
                write!(f, "object {oid} has unexpected type {got}")
            }
            MonitorError::UnknownInterface { node, descr } => {
                write!(f, "agent `{node}` reported unknown interface `{descr}`")
            }
            MonitorError::Topology(msg) => write!(f, "topology failure: {msg}"),
            MonitorError::Sim(msg) => write!(f, "simulator failure: {msg}"),
            MonitorError::Timeout { node } => write!(f, "poll of `{node}` timed out"),
            MonitorError::NotPollable(node) => {
                write!(f, "node `{node}` has no SNMP agent to poll")
            }
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<netqos_snmp::SnmpError> for MonitorError {
    fn from(e: netqos_snmp::SnmpError) -> Self {
        MonitorError::Snmp(e.to_string())
    }
}

impl From<netqos_topology::TopologyError> for MonitorError {
    fn from(e: netqos_topology::TopologyError) -> Self {
        MonitorError::Topology(e.to_string())
    }
}

impl From<netqos_sim::SimError> for MonitorError {
    fn from(e: netqos_sim::SimError) -> Self {
        MonitorError::Sim(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: MonitorError = netqos_snmp::SnmpError::NotAResponse.into();
        assert!(e.to_string().contains("SNMP"));
        let e: MonitorError = netqos_topology::TopologyError::NoSuchNodeName("X".into()).into();
        assert!(e.to_string().contains("X"));
    }
}
