//! QoS violation detection — the paper's motivating use case and listed
//! future work ("network QoS violation detection"), implemented here.
//!
//! The resource manager declares `qospath` requirements in the
//! specification file; [`QosMonitor`] evaluates each monitored path
//! against them on every rate update and emits [`QosEvent`]s on state
//! changes (violation entered / cleared), including the diagnosed
//! bottleneck connection so the RM can act.

use crate::error::MonitorError;
use crate::monitor::NetworkMonitor;
use netqos_snmp::message::SnmpMessage;
use netqos_snmp::oid::Oid;
use netqos_snmp::pdu::{generic_trap, TrapPdu, VarBind};
use netqos_snmp::value::SnmpValue;
use netqos_spec::QosPathSpec;
use netqos_topology::bandwidth::PathBandwidth;
use netqos_topology::path::CommPath;
use netqos_topology::ConnId;
use std::collections::HashMap;

/// Why a path is in violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// Available bandwidth fell below `min_available`.
    InsufficientBandwidth {
        /// Measured available bandwidth (bits/s).
        available_bps: u64,
        /// Required minimum (bits/s).
        required_bps: u64,
    },
    /// A connection exceeded `max_utilization`.
    OverUtilized {
        /// Measured utilisation fraction.
        utilization: f64,
        /// Allowed maximum fraction.
        limit: f64,
    },
}

/// A QoS state-change event for the resource manager.
#[derive(Debug, Clone, PartialEq)]
pub enum QosEvent {
    /// The path entered violation.
    Violated {
        /// The qospath name from the specification.
        path_name: String,
        /// What was violated.
        kind: ViolationKind,
        /// The diagnosed bottleneck connection.
        bottleneck: ConnId,
    },
    /// The path recovered.
    Cleared {
        /// The qospath name.
        path_name: String,
    },
}

struct Tracked {
    spec: QosPathSpec,
    path: CommPath,
    in_violation: bool,
}

/// Evaluates qospath requirements against live monitor state.
pub struct QosMonitor {
    tracked: Vec<Tracked>,
    /// Most recent bandwidth evaluation per path name.
    last: HashMap<String, PathBandwidth>,
}

impl QosMonitor {
    /// Builds a QoS monitor from qospath specs, resolving each path in the
    /// topology once up front.
    pub fn new(monitor: &NetworkMonitor, specs: &[QosPathSpec]) -> Result<Self, MonitorError> {
        let mut tracked = Vec::with_capacity(specs.len());
        for spec in specs {
            let path = monitor.path(spec.from, spec.to)?;
            tracked.push(Tracked {
                spec: spec.clone(),
                path,
                in_violation: false,
            });
        }
        Ok(QosMonitor {
            tracked,
            last: HashMap::new(),
        })
    }

    /// Re-evaluates all paths against the monitor's current rates,
    /// emitting events for state changes. Paths whose rates are not yet
    /// complete are skipped.
    pub fn evaluate(&mut self, monitor: &NetworkMonitor) -> Vec<QosEvent> {
        let mut events = Vec::new();
        for t in &mut self.tracked {
            let Ok(bw) = monitor.path_bandwidth_of(&t.path) else {
                continue; // not enough data yet
            };

            let mut violation = None;
            if let Some(required) = t.spec.min_available_bps {
                if bw.available_bps < required {
                    violation = Some(ViolationKind::InsufficientBandwidth {
                        available_bps: bw.available_bps,
                        required_bps: required,
                    });
                }
            }
            if violation.is_none() {
                if let Some(limit) = t.spec.max_utilization {
                    if let Some(worst) = bw
                        .connections
                        .iter()
                        .map(|c| c.utilization())
                        .max_by(|a, b| a.total_cmp(b))
                    {
                        if worst > limit {
                            violation = Some(ViolationKind::OverUtilized {
                                utilization: worst,
                                limit,
                            });
                        }
                    }
                }
            }

            match (violation, t.in_violation) {
                (Some(kind), false) => {
                    t.in_violation = true;
                    events.push(QosEvent::Violated {
                        path_name: t.spec.name.clone(),
                        kind,
                        bottleneck: bw.bottleneck,
                    });
                }
                (None, true) => {
                    t.in_violation = false;
                    events.push(QosEvent::Cleared {
                        path_name: t.spec.name.clone(),
                    });
                }
                _ => {}
            }
            self.last.insert(t.spec.name.clone(), bw);
        }
        events
    }

    /// The most recent bandwidth evaluation of a named path.
    pub fn last_bandwidth(&self, path_name: &str) -> Option<&PathBandwidth> {
        self.last.get(path_name)
    }

    /// Names of paths currently in violation.
    pub fn violated_paths(&self) -> Vec<&str> {
        self.tracked
            .iter()
            .filter(|t| t.in_violation)
            .map(|t| t.spec.name.as_str())
            .collect()
    }
}

/// netqos enterprise OID for traps (under the demo private-enterprise
/// arc used throughout this reproduction).
pub fn netqos_enterprise() -> Oid {
    Oid::from([1, 3, 6, 1, 4, 1, 99999])
}

/// Specific-trap code: a path QoS violation began.
pub const TRAP_QOS_VIOLATED: i32 = 1;
/// Specific-trap code: a path recovered.
pub const TRAP_QOS_CLEARED: i32 = 2;

/// Encodes a [`QosEvent`] as an SNMPv1 enterprise-specific trap message,
/// so the monitor can notify SNMP-speaking management stations (the
/// resource manager, or any off-the-shelf NMS) in-band.
///
/// Variable bindings carry the path name (OCTET STRING under
/// `enterprise.1`) and, for violations, the measured available bandwidth
/// (Gauge32 under `enterprise.2`).
pub fn encode_trap(
    event: &QosEvent,
    community: &str,
    agent_addr: [u8; 4],
    uptime_ticks: u32,
) -> Result<Vec<u8>, MonitorError> {
    let enterprise = netqos_enterprise();
    let (specific, name, extra) = match event {
        QosEvent::Violated {
            path_name, kind, ..
        } => {
            let available = match kind {
                ViolationKind::InsufficientBandwidth { available_bps, .. } => {
                    // Gauge32 saturates; clamp wide rates.
                    (*available_bps).min(u32::MAX as u64) as u32
                }
                ViolationKind::OverUtilized { utilization, .. } => {
                    (utilization * 100.0).round() as u32
                }
            };
            (TRAP_QOS_VIOLATED, path_name, Some(available))
        }
        QosEvent::Cleared { path_name } => (TRAP_QOS_CLEARED, path_name, None),
    };
    let mut bindings = vec![VarBind::new(
        enterprise.extend(&[1, 0]),
        SnmpValue::text(name),
    )];
    if let Some(v) = extra {
        bindings.push(VarBind::new(
            enterprise.extend(&[2, 0]),
            SnmpValue::Gauge32(v),
        ));
    }
    let trap = TrapPdu {
        enterprise,
        agent_addr,
        generic_trap: generic_trap::ENTERPRISE_SPECIFIC,
        specific_trap: specific,
        time_stamp: uptime_ticks,
        bindings,
    };
    SnmpMessage::v1_trap(community, trap)
        .encode()
        .map_err(|e| MonitorError::Snmp(e.to_string()))
}

/// Decodes a trap message back into `(specific_trap, path_name)` — the
/// receiving side of the notification channel.
pub fn decode_trap(bytes: &[u8]) -> Result<(i32, String), MonitorError> {
    let msg = SnmpMessage::decode(bytes).map_err(|e| MonitorError::Snmp(e.to_string()))?;
    match msg.body {
        netqos_snmp::message::MessageBody::Trap(t) => {
            let name = t
                .bindings
                .first()
                .and_then(|vb| vb.value.as_text())
                .unwrap_or("")
                .to_owned();
            Ok((t.specific_trap, name))
        }
        _ => Err(MonitorError::Snmp("not a trap message".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{DeviceSnapshot, IfSample};
    use netqos_topology::{IfIx, NetworkTopology, NodeId, NodeKind};

    fn setup() -> (NetworkMonitor, Vec<QosPathSpec>, NodeId, NodeId) {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 10_000_000).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        t.add_interface(b, "eth0", 10_000_000).unwrap();
        t.connect((a, IfIx(0)), (b, IfIx(0))).unwrap();
        let m = NetworkMonitor::new(t);
        let specs = vec![QosPathSpec {
            name: "ab".into(),
            from: a,
            to: b,
            min_available_bps: Some(5_000_000),
            max_utilization: Some(0.8),
            application: None,
        }];
        (m, specs, a, b)
    }

    fn feed(m: &mut NetworkMonitor, node: NodeId, uptime: u32, octets: u32) {
        m.ingest(
            node,
            DeviceSnapshot {
                uptime_ticks: uptime,
                interfaces: vec![IfSample {
                    if_index: 1,
                    descr: "eth0".into(),
                    speed_bps: 10_000_000,
                    in_octets: octets,
                    out_octets: 0,
                    in_ucast_pkts: 0,
                    out_nucast_pkts: 0,
                }],
            },
        )
        .unwrap();
    }

    #[test]
    fn no_events_without_rates() {
        let (m, specs, _, _) = setup();
        let mut q = QosMonitor::new(&m, &specs).unwrap();
        assert!(q.evaluate(&m).is_empty());
        assert!(q.violated_paths().is_empty());
    }

    #[test]
    fn violation_and_recovery_cycle() {
        let (mut m, specs, a, b) = setup();
        let mut q = QosMonitor::new(&m, &specs).unwrap();

        // Baseline.
        feed(&mut m, a, 0, 0);
        feed(&mut m, b, 0, 0);
        // 1 s later: 750 KB received = 6 Mb/s -> available 4 Mb/s < 5 Mb/s.
        feed(&mut m, a, 100, 0);
        feed(&mut m, b, 100, 750_000);
        let events = q.evaluate(&m);
        assert_eq!(events.len(), 1);
        match &events[0] {
            QosEvent::Violated {
                path_name, kind, ..
            } => {
                assert_eq!(path_name, "ab");
                assert!(matches!(
                    kind,
                    ViolationKind::InsufficientBandwidth {
                        available_bps: 4_000_000,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.violated_paths(), vec!["ab"]);
        // Still violated: no duplicate event.
        assert!(q.evaluate(&m).is_empty());

        // Load stops: next second adds no octets.
        feed(&mut m, a, 200, 0);
        feed(&mut m, b, 200, 750_000);
        let events = q.evaluate(&m);
        assert_eq!(
            events,
            vec![QosEvent::Cleared {
                path_name: "ab".into()
            }]
        );
        assert!(q.violated_paths().is_empty());
    }

    #[test]
    fn utilization_violation() {
        let (mut m, mut specs, a, b) = setup();
        specs[0].min_available_bps = None; // isolate the utilisation check
        let mut q = QosMonitor::new(&m, &specs).unwrap();
        feed(&mut m, a, 0, 0);
        feed(&mut m, b, 0, 0);
        // 9 Mb/s on a 10 Mb/s link = 90% > 80% limit.
        feed(&mut m, a, 100, 0);
        feed(&mut m, b, 100, 1_125_000);
        let events = q.evaluate(&m);
        assert!(matches!(
            &events[0],
            QosEvent::Violated {
                kind: ViolationKind::OverUtilized { .. },
                ..
            }
        ));
    }

    #[test]
    fn trap_round_trip_for_violation_and_clear() {
        let violated = QosEvent::Violated {
            path_name: "s1n1".into(),
            kind: ViolationKind::InsufficientBandwidth {
                available_bps: 123_456,
                required_bps: 800_000,
            },
            bottleneck: netqos_topology::ConnId(2),
        };
        let bytes = encode_trap(&violated, "traps", [10, 0, 0, 1], 5000).unwrap();
        let (specific, name) = decode_trap(&bytes).unwrap();
        assert_eq!(specific, TRAP_QOS_VIOLATED);
        assert_eq!(name, "s1n1");

        let cleared = QosEvent::Cleared {
            path_name: "s1n1".into(),
        };
        let bytes = encode_trap(&cleared, "traps", [10, 0, 0, 1], 6000).unwrap();
        let (specific, name) = decode_trap(&bytes).unwrap();
        assert_eq!(specific, TRAP_QOS_CLEARED);
        assert_eq!(name, "s1n1");
    }

    #[test]
    fn trap_over_real_udp() {
        // Monitor-side trap emission to a listening management station.
        use std::net::UdpSocket;
        let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
        sink.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let event = QosEvent::Violated {
            path_name: "track".into(),
            kind: ViolationKind::OverUtilized {
                utilization: 0.95,
                limit: 0.8,
            },
            bottleneck: netqos_topology::ConnId(0),
        };
        let bytes = encode_trap(&event, "public", [127, 0, 0, 1], 1).unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(&bytes, sink.local_addr().unwrap()).unwrap();
        let mut buf = [0u8; 1500];
        let (n, _) = sink.recv_from(&mut buf).unwrap();
        let (specific, name) = decode_trap(&buf[..n]).unwrap();
        assert_eq!(specific, TRAP_QOS_VIOLATED);
        assert_eq!(name, "track");
    }

    #[test]
    fn decode_trap_rejects_non_trap() {
        use netqos_snmp::pdu::{Pdu, PduType};
        let msg = SnmpMessage::v1("c", Pdu::request(PduType::GetRequest, 1, &[]));
        let bytes = msg.encode().unwrap();
        assert!(decode_trap(&bytes).is_err());
    }

    #[test]
    fn last_bandwidth_is_recorded() {
        let (mut m, specs, a, b) = setup();
        let mut q = QosMonitor::new(&m, &specs).unwrap();
        feed(&mut m, a, 0, 0);
        feed(&mut m, b, 0, 0);
        feed(&mut m, a, 100, 0);
        feed(&mut m, b, 100, 125_000);
        q.evaluate(&m);
        let bw = q.last_bandwidth("ab").unwrap();
        assert_eq!(bw.used_bps, 1_000_000);
    }
}
