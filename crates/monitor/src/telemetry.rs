//! Metric handles for the monitoring pipeline — the monitor's own health,
//! as distinct from the network QoS it measures.
//!
//! One [`MonitorTelemetry`] bundle is resolved per service (each
//! [`MonitoringService`](crate::service::MonitoringService) defaults to a
//! private registry so tests stay deterministic); the CLI passes a shared
//! registry so the SNMP client, poll runtime, and tick loop all land in
//! one Prometheus snapshot.
//!
//! Time units: histograms named `*_us` hold **simulated** microseconds
//! (what the monitor observes on the virtual wire); histograms named
//! `*_ns` hold **wall-clock** nanoseconds (what the monitor itself costs).

use netqos_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Handles for every stage of the monitoring pipeline.
#[derive(Clone)]
pub struct MonitorTelemetry {
    registry: Arc<Registry>,
    /// Successful device polls.
    pub polls: Counter,
    /// Device polls that failed for a non-timeout reason.
    pub poll_failures: Counter,
    /// Device polls that exhausted all retransmissions.
    pub poll_timeouts: Counter,
    /// Poll retransmissions after a per-attempt timeout.
    pub poll_retransmits: Counter,
    /// Per-device poll round-trip time, simulated microseconds.
    pub poll_rtt_us: Histogram,
    /// Service ticks executed.
    pub ticks: Counter,
    /// Wall-clock cost of one service tick, nanoseconds.
    pub tick_ns: Histogram,
    /// QoS violation onsets observed.
    pub qos_violations: Counter,
    /// QoS violations cleared.
    pub qos_cleared: Counter,
    /// Traps encoded into the outbox.
    pub traps_emitted: Counter,
    /// Traps evicted because the outbox was full.
    pub traps_dropped: Counter,
    /// Current trap outbox length.
    pub trap_outbox_depth: Gauge,
    /// Echo-probe path round-trip time, simulated microseconds.
    pub path_rtt_us: Histogram,
    /// Echo probes lost (no reply before timeout).
    pub probes_lost: Counter,
    /// Samples discarded because a device rebooted between polls.
    pub uptime_resets: Counter,
    /// Counter32 rollovers absorbed by the modular delta arithmetic.
    pub counter_wraps: Counter,
    /// "Anomalous vs. baseline" pre-violation warnings emitted.
    pub anomaly_warnings: Counter,
    /// Flight-recorder snapshots written to disk.
    pub flight_snapshots: Counter,
    /// Stale snapshot files deleted by the retention policy.
    pub flight_retention_deleted: Counter,
    /// Files deleted by any retention policy (flight snapshots and
    /// long-term-store segments alike) — the cross-plane total that
    /// pairs with the per-deletion `retention_delete` JSONL events.
    pub retention_deleted: Counter,
    /// Traced cycles kept by the sampler's head rate.
    pub trace_kept_head: Counter,
    /// Traced cycles kept by a sampler tail trigger.
    pub trace_kept_tail: Counter,
    /// Traced cycles dropped by the sampler.
    pub trace_dropped: Counter,
    /// Current head sampling stride (`head_every`); moves when adaptive
    /// sampling reacts to flight-ring pressure.
    pub trace_head_every: Gauge,
    /// Flight snapshots acknowledged by the OTLP push collector.
    pub otlp_pushed: Counter,
    /// OTLP push retry attempts (refused connections or non-2xx).
    pub otlp_push_retries: Counter,
    /// Flight snapshots dropped by the OTLP pusher (queue full or
    /// retries exhausted).
    pub otlp_push_dropped: Counter,
    /// Alert transitions into pending.
    pub alerts_pending_total: Counter,
    /// Alert transitions into firing.
    pub alerts_firing_total: Counter,
    /// Alert transitions into resolved.
    pub alerts_resolved_total: Counter,
    /// Alerts currently pending.
    pub alerts_pending: Gauge,
    /// Alerts currently firing.
    pub alerts_firing: Gauge,
    /// Webhook transition batches acknowledged 2xx.
    pub alert_webhook_delivered: Counter,
    /// Webhook delivery retry attempts.
    pub alert_webhook_retries: Counter,
    /// Webhook transition batches dropped (queue full or retries
    /// exhausted).
    pub alert_webhook_dropped: Counter,
    /// Seconds since the service was constructed (wall clock).
    pub uptime_seconds: Gauge,
    /// Constant-1 gauge carrying build provenance in its labels.
    pub build_info: Gauge,
}

impl MonitorTelemetry {
    /// Resolves all handles against `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        let r = &registry;
        MonitorTelemetry {
            polls: r.counter("netqos_monitor_polls_total"),
            poll_failures: r.counter("netqos_monitor_poll_failures_total"),
            poll_timeouts: r.counter("netqos_monitor_poll_timeouts_total"),
            poll_retransmits: r.counter("netqos_monitor_poll_retransmits_total"),
            poll_rtt_us: r.histogram("netqos_monitor_poll_rtt_us"),
            ticks: r.counter("netqos_monitor_ticks_total"),
            tick_ns: r.histogram("netqos_monitor_tick_duration_ns"),
            qos_violations: r.counter("netqos_monitor_qos_violations_total"),
            qos_cleared: r.counter("netqos_monitor_qos_cleared_total"),
            traps_emitted: r.counter("netqos_monitor_traps_emitted_total"),
            traps_dropped: r.counter("netqos_monitor_traps_dropped_total"),
            trap_outbox_depth: r.gauge("netqos_monitor_trap_outbox_depth"),
            path_rtt_us: r.histogram("netqos_monitor_path_rtt_us"),
            probes_lost: r.counter("netqos_monitor_probes_lost_total"),
            uptime_resets: r.counter("netqos_monitor_uptime_resets_total"),
            counter_wraps: r.counter("netqos_monitor_counter_wraps_total"),
            anomaly_warnings: r.counter("netqos_monitor_anomaly_warnings_total"),
            flight_snapshots: r.counter("netqos_monitor_flight_snapshots_total"),
            flight_retention_deleted: r.counter("netqos_monitor_flight_retention_deleted_total"),
            retention_deleted: r.counter("netqos_retention_deleted_total"),
            trace_kept_head: r.counter("netqos_monitor_trace_kept_head_total"),
            trace_kept_tail: r.counter("netqos_monitor_trace_kept_tail_total"),
            trace_dropped: r.counter("netqos_monitor_trace_dropped_total"),
            trace_head_every: r.gauge("netqos_monitor_trace_head_every"),
            otlp_pushed: r.counter("netqos_monitor_otlp_pushed_total"),
            otlp_push_retries: r.counter("netqos_monitor_otlp_push_retries_total"),
            otlp_push_dropped: r.counter("netqos_monitor_otlp_push_dropped_total"),
            alerts_pending_total: r.counter("netqos_alerts_pending_total"),
            alerts_firing_total: r.counter("netqos_alerts_firing_total"),
            alerts_resolved_total: r.counter("netqos_alerts_resolved_total"),
            alerts_pending: r.gauge("netqos_alerts_pending"),
            alerts_firing: r.gauge("netqos_alerts_firing"),
            alert_webhook_delivered: r.counter("netqos_alert_webhook_delivered_total"),
            alert_webhook_retries: r.counter("netqos_alert_webhook_retries_total"),
            alert_webhook_dropped: r.counter("netqos_alert_webhook_dropped_total"),
            uptime_seconds: r.gauge("netqos_monitor_uptime_seconds"),
            build_info: {
                // Build provenance rides in an embedded label set: the
                // registry key itself is the full series, rendered as
                // `netqos_build_info{...} 1` by the exposition layer.
                let g = r.gauge(&format!(
                    "netqos_build_info{{version=\"{}\",git=\"{}\",profile=\"{}\"}}",
                    env!("CARGO_PKG_VERSION"),
                    option_env!("NETQOS_GIT_SHA").unwrap_or("unknown"),
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                ));
                g.set(1);
                g
            },
            registry,
        }
    }

    /// A bundle over a fresh private registry.
    pub fn private() -> Self {
        Self::new(Registry::new())
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolve_against_registry() {
        let t = MonitorTelemetry::private();
        t.polls.inc();
        t.poll_rtt_us.record(1_500);
        let snap = t.registry().snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "netqos_monitor_polls_total" && *v == 1));
        assert!(snap
            .histograms
            .iter()
            .any(|(n, s)| n == "netqos_monitor_poll_rtt_us" && s.count == 1));
    }

    #[test]
    fn build_info_renders_with_labels() {
        let t = MonitorTelemetry::private();
        let text = t.registry().render_prometheus();
        assert!(text.contains("# TYPE netqos_build_info gauge"), "{text}");
        assert!(
            text.contains(&format!(
                "netqos_build_info{{version=\"{}\",",
                env!("CARGO_PKG_VERSION")
            )),
            "{text}"
        );
        assert_eq!(t.build_info.get(), 1);
    }

    #[test]
    fn clones_share_cells() {
        let t = MonitorTelemetry::private();
        let u = t.clone();
        t.ticks.inc();
        u.ticks.inc();
        assert_eq!(t.ticks.get(), 2);
    }
}
