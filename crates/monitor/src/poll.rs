//! Poll construction and response parsing.
//!
//! A poll of one device requests `sysUpTime.0` plus, for every interface,
//! the Table-1 column set (`ifDescr` is added for interface correlation
//! with the specification file):
//!
//! | object | use |
//! |---|---|
//! | `sysUpTime` | poll interval measurement |
//! | `ifDescr` | match MIB rows to spec interface names |
//! | `ifSpeed` | static bandwidth `m_i` |
//! | `ifInOctets` / `ifOutOctets` | used bandwidth `u_i` |
//! | `ifInUcastPkts` / `ifOutNUcastPkts` | packet-rate statistics |

use crate::error::MonitorError;
use netqos_snmp::mib2::{interfaces as ifc, system};
use netqos_snmp::oid::Oid;
use netqos_snmp::pdu::VarBind;
use netqos_snmp::value::SnmpValue;

/// Counter sample of one interface at one poll.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfSample {
    /// 1-based MIB ifIndex.
    pub if_index: u32,
    /// `ifDescr` text.
    pub descr: String,
    /// `ifSpeed` in bits/s.
    pub speed_bps: u64,
    /// `ifInOctets` cumulative.
    pub in_octets: u32,
    /// `ifOutOctets` cumulative.
    pub out_octets: u32,
    /// `ifInUcastPkts` cumulative.
    pub in_ucast_pkts: u32,
    /// `ifOutNUcastPkts` cumulative.
    pub out_nucast_pkts: u32,
}

/// Everything one poll of one device returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSnapshot {
    /// `sysUpTime.0` in TimeTicks.
    pub uptime_ticks: u32,
    /// Interface samples in ifIndex order.
    pub interfaces: Vec<IfSample>,
}

/// The per-interface columns the monitor polls, in request order.
const COLUMNS: [u32; 6] = [
    ifc::column::IF_DESCR,
    ifc::column::IF_SPEED,
    ifc::column::IF_IN_OCTETS,
    ifc::column::IF_OUT_OCTETS,
    ifc::column::IF_IN_UCAST_PKTS,
    ifc::column::IF_OUT_NUCAST_PKTS,
];

/// Builds the OID list for a poll of a device with `if_count` interfaces.
pub fn poll_oids(if_count: u32) -> Vec<Oid> {
    let mut oids = Vec::with_capacity(1 + COLUMNS.len() * if_count as usize);
    oids.push(system::sys_uptime_instance());
    for ifindex in 1..=if_count {
        for col in COLUMNS {
            oids.push(ifc::instance_oid(col, ifindex));
        }
    }
    oids
}

fn need_u32(v: &SnmpValue, oid: &Oid) -> Result<u32, MonitorError> {
    v.as_u32().ok_or_else(|| MonitorError::WrongType {
        oid: oid.to_string(),
        got: v.type_name(),
    })
}

/// Parses a poll response (in any binding order) into a snapshot.
pub fn parse_snapshot(bindings: &[VarBind], if_count: u32) -> Result<DeviceSnapshot, MonitorError> {
    let uptime_oid = system::sys_uptime_instance();
    let mut uptime_ticks = None;
    let mut samples: Vec<IfSample> = (1..=if_count)
        .map(|i| IfSample {
            if_index: i,
            descr: String::new(),
            speed_bps: 0,
            in_octets: 0,
            out_octets: 0,
            in_ucast_pkts: 0,
            out_nucast_pkts: 0,
        })
        .collect();
    let mut seen = vec![0u32; if_count as usize];

    for vb in bindings {
        if vb.oid == uptime_oid {
            uptime_ticks = Some(need_u32(&vb.value, &vb.oid)?);
            continue;
        }
        let Some((col, ifindex)) = ifc::parse_instance(&vb.oid) else {
            continue; // tolerate extra objects
        };
        if ifindex == 0 || ifindex > if_count {
            continue;
        }
        let s = &mut samples[(ifindex - 1) as usize];
        match col {
            c if c == ifc::column::IF_DESCR => {
                s.descr = vb
                    .value
                    .as_text()
                    .ok_or_else(|| MonitorError::WrongType {
                        oid: vb.oid.to_string(),
                        got: vb.value.type_name(),
                    })?
                    .to_owned();
            }
            c if c == ifc::column::IF_SPEED => {
                s.speed_bps = need_u32(&vb.value, &vb.oid)? as u64;
            }
            c if c == ifc::column::IF_IN_OCTETS => {
                s.in_octets = need_u32(&vb.value, &vb.oid)?;
            }
            c if c == ifc::column::IF_OUT_OCTETS => {
                s.out_octets = need_u32(&vb.value, &vb.oid)?;
            }
            c if c == ifc::column::IF_IN_UCAST_PKTS => {
                s.in_ucast_pkts = need_u32(&vb.value, &vb.oid)?;
            }
            c if c == ifc::column::IF_OUT_NUCAST_PKTS => {
                s.out_nucast_pkts = need_u32(&vb.value, &vb.oid)?;
            }
            _ => continue,
        }
        seen[(ifindex - 1) as usize] += 1;
    }

    let uptime_ticks =
        uptime_ticks.ok_or_else(|| MonitorError::MissingObject(uptime_oid.to_string()))?;
    for (i, &count) in seen.iter().enumerate() {
        if count < COLUMNS.len() as u32 {
            return Err(MonitorError::MissingObject(format!(
                "ifTable row {} incomplete ({count}/{} columns)",
                i + 1,
                COLUMNS.len()
            )));
        }
    }
    Ok(DeviceSnapshot {
        uptime_ticks,
        interfaces: samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_snmp::agent::SnmpAgent;
    use netqos_snmp::client;
    use netqos_snmp::mib::ScalarMib;
    use netqos_snmp::mib2::{self, IfEntry, SystemInfo};

    fn agent_mib() -> ScalarMib {
        let mut mib = ScalarMib::new();
        mib2::system::install(&mut mib, &SystemInfo::new("L"), 12_345);
        let mut e1 = IfEntry::ethernet(1, "eth0", 100_000_000, [2, 0, 0, 0, 0, 1]);
        e1.in_octets = 1000;
        e1.out_octets = 2000;
        e1.in_ucast_pkts = 10;
        e1.out_nucast_pkts = 3;
        let mut e2 = IfEntry::ethernet(2, "eth1", 10_000_000, [2, 0, 0, 0, 0, 2]);
        e2.in_octets = 500;
        mib2::interfaces::install(&mut mib, &[e1, e2]);
        mib
    }

    #[test]
    fn poll_oids_cover_table1() {
        let oids = poll_oids(2);
        assert_eq!(oids.len(), 1 + 6 * 2);
        assert_eq!(oids[0].to_string(), "1.3.6.1.2.1.1.3.0");
        // Row-major: all columns of if 1 before if 2.
        assert_eq!(oids[1].to_string(), "1.3.6.1.2.1.2.2.1.2.1"); // ifDescr.1
        assert_eq!(oids[7].to_string(), "1.3.6.1.2.1.2.2.1.2.2"); // ifDescr.2
    }

    #[test]
    fn end_to_end_against_agent() {
        let mib = agent_mib();
        let mut agent = SnmpAgent::new("public");
        let req = client::build_get("public", 1, &poll_oids(2)).unwrap();
        let resp = agent.handle(&req, &mib).unwrap();
        let parsed = client::parse_response(&resp).unwrap();
        let snap = parse_snapshot(&parsed.bindings, 2).unwrap();
        assert_eq!(snap.uptime_ticks, 12_345);
        assert_eq!(snap.interfaces.len(), 2);
        let s1 = &snap.interfaces[0];
        assert_eq!(s1.descr, "eth0");
        assert_eq!(s1.speed_bps, 100_000_000);
        assert_eq!(s1.in_octets, 1000);
        assert_eq!(s1.out_octets, 2000);
        assert_eq!(s1.in_ucast_pkts, 10);
        assert_eq!(s1.out_nucast_pkts, 3);
        assert_eq!(snap.interfaces[1].in_octets, 500);
    }

    #[test]
    fn missing_uptime_rejected() {
        let bindings = vec![];
        assert!(matches!(
            parse_snapshot(&bindings, 0),
            Err(MonitorError::MissingObject(_))
        ));
    }

    #[test]
    fn incomplete_row_rejected() {
        let mut bindings = vec![VarBind::new(
            system::sys_uptime_instance(),
            SnmpValue::TimeTicks(1),
        )];
        bindings.push(VarBind::new(
            ifc::instance_oid(ifc::column::IF_DESCR, 1),
            SnmpValue::text("eth0"),
        ));
        assert!(matches!(
            parse_snapshot(&bindings, 1),
            Err(MonitorError::MissingObject(_))
        ));
    }

    #[test]
    fn wrong_type_rejected() {
        let bindings = vec![VarBind::new(
            system::sys_uptime_instance(),
            SnmpValue::text("not a time"),
        )];
        assert!(matches!(
            parse_snapshot(&bindings, 0),
            Err(MonitorError::WrongType { .. })
        ));
    }

    #[test]
    fn extra_objects_tolerated() {
        let mut bindings = vec![VarBind::new(
            system::sys_uptime_instance(),
            SnmpValue::TimeTicks(5),
        )];
        bindings.push(VarBind::new(
            "1.3.6.1.2.1.1.5.0".parse().unwrap(),
            SnmpValue::text("sysName sneaks in"),
        ));
        let snap = parse_snapshot(&bindings, 0).unwrap();
        assert_eq!(snap.uptime_ticks, 5);
    }
}
