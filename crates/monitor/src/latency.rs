//! Path latency measurement — the paper's first future-work item
//! ("measurement of network latency"), implemented as UDP echo probes
//! through the simulated network.
//!
//! A probe is a timestamp-tagged datagram to the target host's ECHO port
//! (RFC 862); the round-trip time is the simulated time between send and
//! the echoed copy arriving back at the monitor's mailbox.

use netqos_sim::time::SimDuration;

/// Summary statistics over a set of RTT probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of successful probes.
    pub samples: usize,
    /// Probes lost (no echo before timeout).
    pub lost: usize,
    /// Minimum RTT.
    pub min: SimDuration,
    /// Mean RTT.
    pub mean: SimDuration,
    /// Maximum RTT.
    pub max: SimDuration,
}

impl LatencyStats {
    /// Aggregates raw RTT samples; `lost` counts timed-out probes.
    pub fn from_samples(rtts: &[SimDuration], lost: usize) -> Option<LatencyStats> {
        if rtts.is_empty() {
            return None;
        }
        let min = *rtts.iter().min().expect("non-empty");
        let max = *rtts.iter().max().expect("non-empty");
        let total: u64 = rtts.iter().map(|d| d.as_micros()).sum();
        let mean = SimDuration::from_micros(total / rtts.len() as u64);
        Some(LatencyStats {
            samples: rtts.len(),
            lost,
            min,
            mean,
            max,
        })
    }

    /// Mean RTT in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let rtts = [
            SimDuration::from_micros(100),
            SimDuration::from_micros(300),
            SimDuration::from_micros(200),
        ];
        let s = LatencyStats::from_samples(&rtts, 1).unwrap();
        assert_eq!(s.samples, 3);
        assert_eq!(s.lost, 1);
        assert_eq!(s.min, SimDuration::from_micros(100));
        assert_eq!(s.mean, SimDuration::from_micros(200));
        assert_eq!(s.max, SimDuration::from_micros(300));
        assert!((s.mean_ms() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_yields_none() {
        assert!(LatencyStats::from_samples(&[], 5).is_none());
    }
}
