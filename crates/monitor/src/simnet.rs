//! Running the whole monitored system inside the simulator.
//!
//! [`SimNetwork`] lowers a validated [`SpecModel`] into a `netqos-sim`
//! LAN: every host gets DISCARD and ECHO services, every SNMP-capable
//! node gets an in-simulation SNMP agent ([`SimSnmpAgent`]) answering on
//! port 161, and the designated monitor host gets a manager mailbox. The
//! poll runtime then sends *real encoded SNMP messages through the
//! simulated network* — so, exactly as in the paper's testbed, the
//! monitoring traffic itself consumes bandwidth and contributes to the
//! measurement bias (the paper attributes ~2 % of its error to "traffic
//! caused by SNMP queries and acknowledgements").

use crate::error::MonitorError;
use crate::poll::{self, DeviceSnapshot};
use bytes::Bytes;
use netqos_sim::app::{AppCtx, DiscardSink, EchoResponder, Mailbox, UdpApp};
use netqos_sim::builder::LanBuilder;
use netqos_sim::packet::{DISCARD_PORT, ECHO_PORT, SNMP_PORT};
use netqos_sim::time::{SimDuration, SimTime};
use netqos_sim::traffic::NoiseSource;
use netqos_sim::{DeviceId, Ipv4Addr, Lan, PortIx, UdpDatagram};
use netqos_snmp::agent::SnmpAgent;
use netqos_snmp::client;
use netqos_snmp::mib::ScalarMib;
use netqos_snmp::mib2::{self, IfEntry, SystemInfo};
use netqos_spec::SpecModel;
use netqos_telemetry::{QuantileBaseline, Tracer};
use netqos_topology::{NodeId, NodeKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

/// An SNMP agent living inside the simulation as a UDP app.
///
/// On each request it builds a fresh MIB view from the device's live NIC
/// counters and `sysUpTime`, exactly like a real agent reading kernel
/// statistics. An optional response-delay distribution models agent
/// scheduling jitter — the cause of the paper's occasional large
/// one-sample errors ("some data bytes are counted in a later SNMP message
/// instead of an earlier one").
pub struct SimSnmpAgent {
    agent: SnmpAgent,
    sysinfo: SystemInfo,
    jitter: Option<(StdRng, SimDuration)>,
    pending: VecDeque<(Ipv4Addr, u16, Bytes)>,
}

impl SimSnmpAgent {
    /// Creates an agent with the given community.
    pub fn new(node_name: &str, community: &str) -> Self {
        SimSnmpAgent {
            agent: SnmpAgent::new(community),
            sysinfo: SystemInfo::new(node_name),
            jitter: None,
            pending: VecDeque::new(),
        }
    }

    /// Adds exponential response-delay jitter with the given mean.
    pub fn with_jitter(mut self, seed: u64, mean: SimDuration) -> Self {
        self.jitter = Some((StdRng::seed_from_u64(seed), mean));
        self
    }

    fn build_mib(&self, ctx: &AppCtx<'_>) -> ScalarMib {
        let mut mib = ScalarMib::new();
        mib2::system::install(&mut mib, &self.sysinfo, ctx.uptime_ticks());
        // Switches additionally export their forwarding database
        // (BRIDGE-MIB), feeding the topology-verification extension.
        if let Some(fdb) = ctx.fdb_snapshot() {
            let entries: Vec<mib2::bridge::FdbEntry> = fdb
                .into_iter()
                .map(|(mac, port)| mib2::bridge::FdbEntry {
                    mac: mac.octets(),
                    port,
                })
                .collect();
            mib2::bridge::install(&mut mib, ctx.nic_snapshots().len() as u32, &entries);
        }
        let entries: Vec<IfEntry> = ctx
            .nic_snapshots()
            .into_iter()
            .map(|n| {
                let mut e = IfEntry::ethernet(
                    n.if_index,
                    &n.descr,
                    n.speed_bps.min(u32::MAX as u64) as u32,
                    n.mac.octets(),
                );
                e.in_octets = n.counters.in_octets.value();
                e.in_ucast_pkts = n.counters.in_ucast_pkts.value();
                e.in_nucast_pkts = n.counters.in_nucast_pkts.value();
                e.in_discards = n.counters.in_discards.value();
                e.in_errors = n.counters.in_errors.value();
                e.out_octets = n.counters.out_octets.value();
                e.out_ucast_pkts = n.counters.out_ucast_pkts.value();
                e.out_nucast_pkts = n.counters.out_nucast_pkts.value();
                e.out_discards = n.counters.out_discards.value();
                e.out_errors = n.counters.out_errors.value();
                e
            })
            .collect();
        mib2::interfaces::install(&mut mib, &entries);
        mib
    }
}

impl UdpApp for SimSnmpAgent {
    fn on_datagram(&mut self, ctx: &mut AppCtx<'_>, dgram: &UdpDatagram) {
        let mib = self.build_mib(ctx);
        if let Some(resp) = self.agent.handle(&dgram.payload, &mib) {
            match &mut self.jitter {
                Some((rng, mean)) => {
                    let u: f64 = rng.gen_range(1e-6..1.0);
                    let d = SimDuration::from_secs_f64((-u.ln()) * mean.as_secs_f64());
                    self.pending
                        .push_back((dgram.src_ip, dgram.src_port, Bytes::from(resp)));
                    ctx.schedule(d, 0);
                }
                None => {
                    ctx.send_udp(SNMP_PORT, dgram.src_ip, dgram.src_port, Bytes::from(resp));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx<'_>, _token: u64) {
        if let Some((ip, port, bytes)) = self.pending.pop_front() {
            ctx.send_udp(SNMP_PORT, ip, port, bytes);
        }
    }
}

/// Options controlling how the LAN is materialized.
pub struct SimNetworkOptions {
    /// Name of the node the monitoring program runs on (paper: `L`).
    pub monitor_host: String,
    /// Background-noise mean interval per host (None = silent network).
    pub noise_mean: Option<SimDuration>,
    /// Seed for all stochastic elements.
    pub seed: u64,
    /// Mean SNMP agent response jitter (None = immediate responses).
    pub agent_jitter_mean: Option<SimDuration>,
    /// Per-poll response timeout.
    pub poll_timeout: SimDuration,
    /// Registry the poll runtime records its telemetry into (None = a
    /// fresh private registry, keeping tests deterministic).
    pub registry: Option<std::sync::Arc<netqos_telemetry::Registry>>,
}

impl Default for SimNetworkOptions {
    fn default() -> Self {
        SimNetworkOptions {
            monitor_host: "L".to_owned(),
            noise_mean: None,
            seed: 1,
            agent_jitter_mean: None,
            poll_timeout: SimDuration::from_millis(500),
            registry: None,
        }
    }
}

/// The specified system, materialized in the simulator, with an SNMP poll
/// runtime.
pub struct SimNetwork {
    /// The simulated LAN (public so experiments can install extra apps
    /// via [`SimNetwork::from_model_with`] and read ground truth).
    pub lan: Lan,
    model: SpecModel,
    node_to_dev: HashMap<NodeId, DeviceId>,
    agent_addr: HashMap<NodeId, (Ipv4Addr, String)>,
    monitor_dev: DeviceId,
    monitor_node: NodeId,
    inbox: Rc<RefCell<Vec<(SimTime, UdpDatagram)>>>,
    next_request_id: i32,
    poll_timeout: SimDuration,
    /// Polls that timed out (for diagnostics).
    pub timeouts: u64,
    telemetry: crate::telemetry::MonitorTelemetry,
    tracer: Tracer,
    /// Per-device poll-RTT baseline (simulated microseconds), so traces
    /// can rank each RTT against the device's recent history.
    rtt_baselines: HashMap<NodeId, QuantileBaseline>,
}

/// UDP port the manager mailbox listens on.
const MANAGER_PORT: u16 = 16100;

/// Retransmissions per poll on timeout (matching the UDP transport's
/// default of 2 retries).
const POLL_RETRIES: u32 = 2;

impl SimNetwork {
    /// Materializes a spec model with default options.
    pub fn from_model(model: SpecModel, options: SimNetworkOptions) -> Result<Self, MonitorError> {
        Self::from_model_with(model, options, |_, _, _| {})
    }

    /// Materializes a spec model, giving the caller a hook to install
    /// extra apps (e.g. load generators) before the LAN is finalized.
    /// The hook receives the builder, the node→device map, and the model.
    pub fn from_model_with<F>(
        model: SpecModel,
        options: SimNetworkOptions,
        extra: F,
    ) -> Result<Self, MonitorError>
    where
        F: FnOnce(&mut LanBuilder, &HashMap<NodeId, DeviceId>, &SpecModel),
    {
        let mut b = LanBuilder::new();
        let mut node_to_dev = HashMap::new();
        let mut agent_addr = HashMap::new();
        let mut auto_ip = 1u8;

        for (node_id, node) in model.topology.nodes() {
            let addr = model.addresses.get(&node_id).cloned().unwrap_or_else(|| {
                let ip = format!("10.250.0.{auto_ip}");
                auto_ip = auto_ip.wrapping_add(1);
                ip
            });
            let dev = match node.kind {
                NodeKind::Host => b.add_host(&node.name, &addr).map_err(MonitorError::from)?,
                NodeKind::Switch | NodeKind::Router => {
                    let mgmt = if node.snmp_capable {
                        Some(addr.as_str())
                    } else {
                        None
                    };
                    b.add_switch(&node.name, mgmt).map_err(MonitorError::from)?
                }
                NodeKind::Hub => {
                    let medium = node
                        .interfaces
                        .iter()
                        .map(|i| i.speed_bps)
                        .min()
                        .unwrap_or(10_000_000);
                    b.add_hub(&node.name, medium).map_err(MonitorError::from)?
                }
            };
            node_to_dev.insert(node_id, dev);
            for iface in &node.interfaces {
                b.add_nic(dev, &iface.local_name, iface.speed_bps)
                    .map_err(MonitorError::from)?;
            }
            if node.snmp_capable && !node.kind.is_shared_medium() {
                agent_addr.insert(
                    node_id,
                    (
                        addr.parse::<Ipv4Addr>()
                            .map_err(|e| MonitorError::Sim(e.to_string()))?,
                        node.snmp_community.clone(),
                    ),
                );
            }
        }

        for (_, conn) in model.topology.connections() {
            let a = (node_to_dev[&conn.a.node], PortIx(conn.a.ifix.0));
            let bb = (node_to_dev[&conn.b.node], PortIx(conn.b.ifix.0));
            b.connect(a, bb).map_err(MonitorError::from)?;
        }

        // Standard services + agents.
        let mut noise_seed = options.seed;
        for (node_id, node) in model.topology.nodes() {
            let dev = node_to_dev[&node_id];
            if node.kind.is_host() {
                b.install_app(dev, Box::new(DiscardSink::default()), Some(DISCARD_PORT))
                    .map_err(MonitorError::from)?;
                b.install_app(dev, Box::new(EchoResponder), Some(ECHO_PORT))
                    .map_err(MonitorError::from)?;
                if let Some(mean) = options.noise_mean {
                    noise_seed = noise_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    b.install_app(dev, Box::new(NoiseSource::new(noise_seed, mean)), None)
                        .map_err(MonitorError::from)?;
                }
            }
            if agent_addr.contains_key(&node_id) {
                let mut agent = SimSnmpAgent::new(&node.name, &node.snmp_community);
                if let Some(mean) = options.agent_jitter_mean {
                    agent = agent.with_jitter(options.seed ^ node_id.0 as u64, mean);
                }
                b.install_app(dev, Box::new(agent), Some(SNMP_PORT))
                    .map_err(MonitorError::from)?;
            }
        }

        // The manager mailbox on the monitor host.
        let monitor_node = model
            .topology
            .node_by_name(&options.monitor_host)
            .map_err(MonitorError::from)?;
        let monitor_dev = node_to_dev[&monitor_node];
        let (mailbox, inbox) = Mailbox::with_handle();
        b.install_app(monitor_dev, Box::new(mailbox), Some(MANAGER_PORT))
            .map_err(MonitorError::from)?;

        extra(&mut b, &node_to_dev, &model);

        let telemetry = match options.registry {
            Some(registry) => crate::telemetry::MonitorTelemetry::new(registry),
            None => crate::telemetry::MonitorTelemetry::private(),
        };
        Ok(SimNetwork {
            lan: b.build(),
            model,
            node_to_dev,
            agent_addr,
            monitor_dev,
            monitor_node,
            inbox,
            next_request_id: 1,
            poll_timeout: options.poll_timeout,
            timeouts: 0,
            telemetry,
            tracer: Tracer::disabled(),
            rtt_baselines: HashMap::new(),
        })
    }

    /// Routes this network's poll-pipeline spans into `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer the poll pipeline records into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The poll-RTT baseline of a device, if it has been polled.
    pub fn rtt_baseline(&self, node: NodeId) -> Option<&QuantileBaseline> {
        self.rtt_baselines.get(&node)
    }

    /// The poll runtime's telemetry handles (and through them, the
    /// registry everything on this network records into).
    pub fn telemetry(&self) -> &crate::telemetry::MonitorTelemetry {
        &self.telemetry
    }

    /// The spec model this network was built from.
    pub fn model(&self) -> &SpecModel {
        &self.model
    }

    /// The node the monitor runs on.
    pub fn monitor_node(&self) -> NodeId {
        self.monitor_node
    }

    /// Device id of a topology node.
    pub fn device_of(&self, node: NodeId) -> Option<DeviceId> {
        self.node_to_dev.get(&node).copied()
    }

    /// All SNMP-pollable nodes.
    pub fn pollable_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.agent_addr.keys().copied().collect();
        v.sort();
        v
    }

    /// Polls one device through the simulated network, advancing simulated
    /// time until its response arrives (or the poll timeout elapses).
    pub fn poll_device(&mut self, node: NodeId) -> Result<DeviceSnapshot, MonitorError> {
        let community = self
            .agent_addr
            .get(&node)
            .map(|(_, c)| c.clone())
            .ok_or_else(|| {
                let name = self
                    .model
                    .topology
                    .node(node)
                    .map(|n| n.name.clone())
                    .unwrap_or_else(|_| node.to_string());
                MonitorError::NotPollable(name)
            })?;
        let node_name = self.model.topology.node(node)?.name.clone();
        let mut poll_span = self.tracer.span("monitor.poll", "device");
        poll_span.set_attr("device", node_name.as_str());
        let if_count = self.model.topology.node(node)?.interfaces.len() as u32;
        let oids = poll::poll_oids(if_count);
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let req = {
            let mut encode_span = self.tracer.span("snmp.codec", "encode");
            let req = client::build_get(&community, request_id, &oids)
                .map_err(|e| MonitorError::Snmp(e.to_string()))?;
            encode_span.set_attr("bytes", req.len());
            encode_span.set_attr("oids", oids.len());
            req
        };
        let sent_at = self.lan.now();
        let resp = {
            let _exchange_span = self.tracer.span("snmp.client", "exchange");
            self.exchange(node, req, request_id)?
        };
        let rtt_us = self.lan.now().duration_since(sent_at).as_micros();
        self.telemetry.poll_rtt_us.record(rtt_us);
        // Rank this RTT against the device's own history before folding
        // it into the baseline.
        let baseline = self.rtt_baselines.entry(node).or_default();
        if poll_span.is_recording() {
            poll_span.set_attr("rtt_us", rtt_us);
            poll_span.set_attr("rtt_rank", baseline.rank(rtt_us));
        }
        baseline.record(rtt_us);
        // Drop stale datagrams (late duplicates from retransmitted polls)
        // so the inbox cannot grow without bound across long experiments.
        {
            let now = self.lan.now();
            self.inbox
                .borrow_mut()
                .retain(|(t, _)| now.duration_since(*t) < SimDuration::from_secs(10));
        }
        let mut decode_span = self.tracer.span("snmp.codec", "decode");
        let bindings = resp.into_result().map_err(|e| {
            self.telemetry.poll_failures.inc();
            MonitorError::Snmp(e.to_string())
        })?;
        decode_span.set_attr("bindings", bindings.len());
        let snapshot = poll::parse_snapshot(&bindings, if_count);
        drop(decode_span);
        match &snapshot {
            Ok(_) => self.telemetry.polls.inc(),
            Err(_) => self.telemetry.poll_failures.inc(),
        }
        snapshot
    }

    /// Polls every SNMP-capable device once, in node order, feeding the
    /// snapshots into `monitor`. Returns the number of successful polls.
    pub fn poll_round(
        &mut self,
        monitor: &mut crate::monitor::NetworkMonitor,
    ) -> Result<usize, MonitorError> {
        let mut round_span = self.tracer.span("monitor.poll", "round");
        let nodes = self.pollable_nodes();
        round_span.set_attr("devices", nodes.len());
        let mut ok = 0;
        for node in nodes {
            match self.poll_device(node) {
                Ok(snap) => {
                    monitor.ingest(node, snap)?;
                    ok += 1;
                }
                Err(MonitorError::Timeout { .. }) => continue, // retry next round
                Err(e) => return Err(e),
            }
        }
        round_span.set_attr("ok", ok);
        Ok(ok)
    }

    /// Advances simulated time to `t` (background traffic keeps flowing).
    pub fn run_until(&mut self, t: SimTime) {
        self.lan.run_until(t);
    }

    /// One SNMP exchange through the simulated network: sends `request`
    /// to `node`'s agent and waits for the matching response,
    /// retransmitting up to [`POLL_RETRIES`] times on timeout — the same
    /// recovery a real manager performs over lossy UDP.
    fn exchange(
        &mut self,
        node: NodeId,
        request: Vec<u8>,
        request_id: i32,
    ) -> Result<client::Response, MonitorError> {
        let (agent_ip, _) = self.agent_addr.get(&node).cloned().ok_or_else(|| {
            let name = self
                .model
                .topology
                .node(node)
                .map(|n| n.name.clone())
                .unwrap_or_else(|_| node.to_string());
            MonitorError::NotPollable(name)
        })?;
        for attempt in 0..=POLL_RETRIES {
            if attempt > 0 {
                self.telemetry.poll_retransmits.inc();
            }
            self.lan.post_udp(
                self.monitor_dev,
                MANAGER_PORT,
                agent_ip,
                SNMP_PORT,
                Bytes::from(request.clone()),
            )?;
            let deadline = self.lan.now() + self.poll_timeout;
            loop {
                {
                    let mut inbox = self.inbox.borrow_mut();
                    let mut found = None;
                    for (i, (_, dgram)) in inbox.iter().enumerate() {
                        if let Ok(resp) = client::parse_response(&dgram.payload) {
                            if resp.request_id == request_id {
                                found = Some((i, resp));
                                break;
                            }
                        }
                    }
                    if let Some((i, resp)) = found {
                        inbox.remove(i);
                        return Ok(resp);
                    }
                }
                if self.lan.now() >= deadline {
                    break; // this attempt timed out; maybe retransmit
                }
                self.lan.step_before(deadline);
            }
        }
        self.timeouts += 1;
        self.telemetry.poll_timeouts.inc();
        let name = self.model.topology.node(node)?.name.clone();
        Err(MonitorError::Timeout { node: name })
    }

    /// Walks a MIB subtree of `node`'s agent with repeated GetNext
    /// requests through the simulated network.
    pub fn walk_subtree(
        &mut self,
        node: NodeId,
        prefix: &netqos_snmp::Oid,
    ) -> Result<Vec<netqos_snmp::pdu::VarBind>, MonitorError> {
        let community = self
            .agent_addr
            .get(&node)
            .map(|(_, c)| c.clone())
            .ok_or_else(|| {
                MonitorError::NotPollable(
                    self.model
                        .topology
                        .node(node)
                        .map(|n| n.name.clone())
                        .unwrap_or_default(),
                )
            })?;
        let mut out = Vec::new();
        let mut cur = prefix.clone();
        loop {
            let request_id = self.next_request_id;
            self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
            let req = client::build_get_next(&community, request_id, std::slice::from_ref(&cur))
                .map_err(|e| MonitorError::Snmp(e.to_string()))?;
            let resp = self.exchange(node, req, request_id)?;
            if !resp.error_status.is_ok() {
                break; // noSuchName = end of MIB in v1
            }
            let Some(vb) = resp.bindings.into_iter().next() else {
                break;
            };
            if !vb.oid.starts_with(prefix) || vb.oid == cur {
                break;
            }
            cur = vb.oid.clone();
            out.push(vb);
        }
        Ok(out)
    }

    /// Walks a MIB subtree with SNMPv2c GetBulk requests through the
    /// simulated network — far fewer round trips than
    /// [`SimNetwork::walk_subtree`] on large tables.
    pub fn walk_subtree_bulk(
        &mut self,
        node: NodeId,
        prefix: &netqos_snmp::Oid,
        max_repetitions: u32,
    ) -> Result<Vec<netqos_snmp::pdu::VarBind>, MonitorError> {
        let community = self
            .agent_addr
            .get(&node)
            .map(|(_, c)| c.clone())
            .ok_or_else(|| {
                MonitorError::NotPollable(
                    self.model
                        .topology
                        .node(node)
                        .map(|n| n.name.clone())
                        .unwrap_or_default(),
                )
            })?;
        let mut out = Vec::new();
        let mut cur = prefix.clone();
        'outer: loop {
            let request_id = self.next_request_id;
            self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
            let req = client::build_get_bulk(
                &community,
                request_id,
                0,
                max_repetitions.max(1),
                std::slice::from_ref(&cur),
            )
            .map_err(|e| MonitorError::Snmp(e.to_string()))?;
            let resp = self.exchange(node, req, request_id)?;
            if !resp.error_status.is_ok() || resp.bindings.is_empty() {
                break;
            }
            for vb in resp.bindings {
                if vb.value.is_exception() || !vb.oid.starts_with(prefix) || vb.oid == cur {
                    break 'outer;
                }
                cur = vb.oid.clone();
                out.push(vb);
            }
        }
        Ok(out)
    }

    /// Reads the forwarding database of a managed switch (BRIDGE-MIB
    /// `dot1dTpFdbPort` walk, fetched with SNMPv2c GetBulk).
    pub fn poll_fdb(
        &mut self,
        node: NodeId,
    ) -> Result<Vec<netqos_snmp::mib2::bridge::FdbEntry>, MonitorError> {
        let col = netqos_snmp::mib2::bridge::fdb_entry_base()
            .child(netqos_snmp::mib2::bridge::column::PORT);
        let bindings = self.walk_subtree_bulk(node, &col, 16)?;
        Ok(netqos_snmp::mib2::bridge::entries_from_port_walk(&bindings))
    }

    /// Reads the `ifPhysAddress` column of a node's agent: `(ifIndex,
    /// MAC)` pairs — the identity evidence the topology verifier matches
    /// against switch FDBs.
    pub fn poll_phys_addresses(
        &mut self,
        node: NodeId,
    ) -> Result<Vec<(u32, [u8; 6])>, MonitorError> {
        let col = mib2::interfaces::column_oid(mib2::interfaces::column::IF_PHYS_ADDRESS);
        let bindings = self.walk_subtree(node, &col)?;
        Ok(bindings
            .iter()
            .filter_map(|vb| {
                let (c, ifindex) = mib2::interfaces::parse_instance(&vb.oid)?;
                if c != mib2::interfaces::column::IF_PHYS_ADDRESS {
                    return None;
                }
                match &vb.value {
                    netqos_snmp::SnmpValue::OctetString(b) if b.len() == 6 => {
                        let mut mac = [0u8; 6];
                        mac.copy_from_slice(b);
                        Some((ifindex, mac))
                    }
                    _ => None,
                }
            })
            .collect())
    }

    /// Measures the round-trip time from the monitor host to `to`'s ECHO
    /// service with `probes` sequential UDP probes of `payload_len` bytes
    /// (latency future-work extension). Lost probes time out after
    /// `timeout` each.
    pub fn measure_rtt(
        &mut self,
        to: NodeId,
        probes: usize,
        payload_len: usize,
        timeout: SimDuration,
    ) -> Result<crate::latency::LatencyStats, MonitorError> {
        let target_ip: Ipv4Addr = self
            .model
            .addresses
            .get(&to)
            .ok_or_else(|| MonitorError::Topology(format!("{to} has no address")))?
            .parse()
            .map_err(|e: netqos_sim::addr::ParseIpError| MonitorError::Sim(e.to_string()))?;
        let mut rtts = Vec::with_capacity(probes);
        let mut lost = 0usize;
        for k in 0..probes {
            // Tag the probe so echoes match up even with stale traffic.
            let mut payload = vec![0u8; payload_len.max(8)];
            payload[..8].copy_from_slice(&(k as u64).to_be_bytes());
            let tag = payload[..8].to_vec();
            let sent_at = self.lan.now();
            self.lan.post_udp(
                self.monitor_dev,
                MANAGER_PORT,
                target_ip,
                ECHO_PORT,
                Bytes::from(payload),
            )?;
            let deadline = sent_at + timeout;
            let mut got = None;
            loop {
                {
                    let mut inbox = self.inbox.borrow_mut();
                    if let Some(i) = inbox.iter().position(|(_, d)| {
                        d.src_ip == target_ip && d.payload.len() >= 8 && d.payload[..8] == tag[..]
                    }) {
                        let (at, _) = inbox.remove(i);
                        got = Some(at.duration_since(sent_at));
                    }
                }
                if got.is_some() || self.lan.now() >= deadline {
                    break;
                }
                self.lan.step_before(deadline);
            }
            match got {
                Some(rtt) => {
                    self.telemetry.path_rtt_us.record(rtt.as_micros());
                    rtts.push(rtt);
                }
                None => {
                    self.telemetry.probes_lost.inc();
                    lost += 1;
                }
            }
        }
        crate::latency::LatencyStats::from_samples(&rtts, lost).ok_or_else(|| {
            MonitorError::Timeout {
                node: self
                    .model
                    .topology
                    .node(to)
                    .map(|n| n.name.clone())
                    .unwrap_or_default(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NetworkMonitor;

    const SMALL: &str = r#"
        host L  { address 10.0.0.1;  snmp community "public"; interface eth0 { speed 100Mbps; } }
        host S1 { address 10.0.0.11; snmp community "public"; interface hme0 { speed 100Mbps; } }
        device sw switch { address 10.0.0.100; snmp community "public"; speed 100Mbps;
                           interface p1; interface p2; }
        connection L.eth0 <-> sw.p1;
        connection S1.hme0 <-> sw.p2;
    "#;

    fn build() -> SimNetwork {
        let model = netqos_spec::parse_and_validate(SMALL).unwrap();
        SimNetwork::from_model(model, SimNetworkOptions::default()).unwrap()
    }

    #[test]
    fn pollable_nodes_cover_hosts_and_switch() {
        let net = build();
        assert_eq!(net.pollable_nodes().len(), 3);
    }

    #[test]
    fn poll_returns_interface_table() {
        let mut net = build();
        let s1 = net.model().topology.node_by_name("S1").unwrap();
        let snap = net.poll_device(s1).unwrap();
        assert_eq!(snap.interfaces.len(), 1);
        assert_eq!(snap.interfaces[0].descr, "hme0");
        assert_eq!(snap.interfaces[0].speed_bps, 100_000_000);
    }

    #[test]
    fn poll_switch_covers_all_ports() {
        let mut net = build();
        let sw = net.model().topology.node_by_name("sw").unwrap();
        let snap = net.poll_device(sw).unwrap();
        assert_eq!(snap.interfaces.len(), 2);
        assert_eq!(snap.interfaces[0].descr, "p1");
    }

    #[test]
    fn poll_consumes_simulated_time() {
        let mut net = build();
        let s1 = net.model().topology.node_by_name("S1").unwrap();
        let t0 = net.lan.now();
        net.poll_device(s1).unwrap();
        assert!(net.lan.now() > t0, "polling must advance the clock");
    }

    #[test]
    fn snmp_traffic_is_visible_on_counters() {
        // The poll itself loads the network — the paper's ~2% SNMP
        // overhead term.
        let mut net = build();
        let l = net.model().topology.node_by_name("L").unwrap();
        let ldev = net.device_of(l).unwrap();
        let s1 = net.model().topology.node_by_name("S1").unwrap();
        net.poll_device(s1).unwrap();
        let c = net.lan.nic_counters(ldev, PortIx(0)).unwrap();
        assert!(c.out_octets.value() > 0, "request bytes must hit the wire");
        assert!(c.in_octets.value() > 0, "response bytes must come back");
    }

    #[test]
    fn poll_round_feeds_monitor() {
        let mut net = build();
        let mut monitor = NetworkMonitor::new(net.model().topology.clone());
        assert_eq!(net.poll_round(&mut monitor).unwrap(), 3);
        // Second round 1 s later produces rates.
        let next = net.lan.now() + SimDuration::from_secs(1);
        net.run_until(next);
        assert_eq!(net.poll_round(&mut monitor).unwrap(), 3);
        let l = net.model().topology.node_by_name("L").unwrap();
        let s1 = net.model().topology.node_by_name("S1").unwrap();
        let bw = monitor.path_bandwidth(l, s1).unwrap();
        // Only SNMP chatter on the wire: tiny but measured usage.
        assert!(bw.available_bps <= 100_000_000);
        assert!(bw.available_bps > 99_000_000);
    }

    #[test]
    fn agent_jitter_delays_but_still_answers() {
        let model = netqos_spec::parse_and_validate(SMALL).unwrap();
        let options = SimNetworkOptions {
            agent_jitter_mean: Some(SimDuration::from_millis(50)),
            poll_timeout: SimDuration::from_secs(2),
            ..SimNetworkOptions::default()
        };
        let mut net = SimNetwork::from_model(model, options).unwrap();
        let s1 = net.model().topology.node_by_name("S1").unwrap();
        let t0 = net.lan.now();
        net.poll_device(s1).unwrap();
        let elapsed = net.lan.now().duration_since(t0);
        assert!(elapsed >= SimDuration::from_micros(100));
    }

    #[test]
    fn unpollable_node_reports_error() {
        let mut net = build();
        // Build a node id that exists but has no agent: none here, so use
        // an out-of-range id to hit the NotPollable path via lookup.
        let bogus = NodeId(99);
        assert!(net.poll_device(bogus).is_err());
    }

    #[test]
    fn noise_option_generates_background() {
        let model = netqos_spec::parse_and_validate(SMALL).unwrap();
        let options = SimNetworkOptions {
            noise_mean: Some(SimDuration::from_millis(20)),
            ..SimNetworkOptions::default()
        };
        let mut net = SimNetwork::from_model(model, options).unwrap();
        net.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let l = net.model().topology.node_by_name("L").unwrap();
        let ldev = net.device_of(l).unwrap();
        let c = net.lan.nic_counters(ldev, PortIx(0)).unwrap();
        assert!(c.in_nucast_pkts.value() > 0, "no background noise seen");
    }
}
