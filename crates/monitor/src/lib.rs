//! # netqos-monitor
//!
//! The network QoS monitor — the primary contribution of *Monitoring
//! Network QoS in a Dynamic Real-Time System* (IPPS 2002).
//!
//! The monitor periodically polls SNMP agents on the hosts and network
//! devices named in a DeSiDeRaTa specification file, converts cumulative
//! MIB-II counters into per-interval traffic rates, and combines them with
//! the specified network topology to compute the **used and available
//! bandwidth of every real-time communication path**, which it reports to
//! the resource-management middleware.
//!
//! ## Pipeline
//!
//! ```text
//!  spec file ──► topology ─────────────┐
//!                                      ▼
//!  SNMP agents ──► [poll::DeviceSnapshot] ──► [delta] ──► rates (bits/s)
//!                                                            │
//!                       topology::bandwidth (hub/switch) ◄───┘
//!                                      │
//!                          [report::PathSample] ──► RM middleware / CSV
//! ```
//!
//! * [`poll`] — building the Table-1 OID set, parsing responses into
//!   snapshots.
//! * [`delta`] — wrap-safe Counter32 deltas over the `sysUpTime` interval
//!   (paper §3.1: "The old value is subtracted from the new one […] the
//!   time interval between two polling processes can be found using the
//!   system uptime data").
//! * [`monitor`] — [`monitor::NetworkMonitor`], the core state machine
//!   mapping snapshots to per-interface rates and path bandwidth.
//! * [`simnet`] — runs the whole system inside the `netqos-sim` LAN:
//!   agents as simulated apps, polls as simulated SNMP/UDP traffic (so
//!   monitoring overhead perturbs the measurement, as in the paper).
//! * [`threaded`] — distributed monitoring over real UDP sockets (the
//!   paper's future-work item), one poller thread per agent.
//! * [`qos`] — violation detection against `qospath` requirements.
//! * [`latency`] — path RTT probes (future-work item: "measurement of
//!   network latency").
//! * [`report`] — time-series collection and CSV rendering for the
//!   experiment harness.

pub mod delta;
pub mod discovery;
pub mod error;
pub mod latency;
pub mod live;
pub mod monitor;
pub mod poll;
pub mod qos;
pub mod report;
pub mod selfagent;
pub mod service;
pub mod simnet;
pub mod telemetry;
pub mod threaded;

pub use error::MonitorError;
pub use monitor::NetworkMonitor;
pub use poll::DeviceSnapshot;
pub use qos::{QosEvent, QosMonitor};
pub use report::{PathSample, SeriesRecorder};
pub use service::{MonitoringService, ServiceConfig};
pub use simnet::SimNetwork;
