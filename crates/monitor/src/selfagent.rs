//! Self-monitoring SNMP sub-agent: the monitor's own telemetry, served
//! over the same protocol the monitor uses to watch everything else.
//!
//! The paper's monitor is itself a resource-consuming program in the
//! real-time system; this module closes the loop by exposing the
//! [`Registry`] of pipeline metrics as a private-enterprise MIB subtree,
//! so a management station (or the monitor's own test harness) can poll
//! the monitor exactly like any other agent.
//!
//! ## MIB layout
//!
//! Everything lives under `netqosTelemetry` =
//! [`qos::netqos_enterprise`]`.3` (arcs `1.3.6.1.4.1.99999.3`), three
//! conceptual tables indexed by the metric's 1-based position in the
//! name-sorted registry snapshot:
//!
//! ```text
//! .1.1.<i>  counterName   OctetString
//! .1.2.<i>  counterValue  Counter32 (wraps modulo 2^32)
//! .2.1.<i>  gaugeName     OctetString
//! .2.2.<i>  gaugeValue    Integer
//! .3.1.<i>  histoName     OctetString
//! .3.2.<i>  histoCount    Counter32
//! .3.3.<i>  histoSum      Counter32 (wraps modulo 2^32)
//! .3.4.<i>  histoMin      Gauge32 (clamped)
//! .3.5.<i>  histoMax      Gauge32 (clamped)
//! .3.6.<i>  histoP50      Gauge32 (clamped)
//! .3.7.<i>  histoP90      Gauge32 (clamped)
//! .3.8.<i>  histoP99      Gauge32 (clamped)
//! ```
//!
//! Indices are rebuilt on every [`SelfAgent::refresh`]; they are stable
//! for a fixed set of metric names (snapshots iterate in sorted order)
//! but shift if new metrics register, so walkers should pair each value
//! with the name column rather than hard-coding indices.

use crate::qos;
use netqos_snmp::agent::{AgentStats, SnmpAgent};
use netqos_snmp::mib::ScalarMib;
use netqos_snmp::oid::Oid;
use netqos_snmp::value::SnmpValue;
use netqos_telemetry::Registry;
use std::sync::Arc;

/// Arc appended to the enterprise OID for the telemetry subtree.
pub const TELEMETRY_ARC: u32 = 3;

/// Root of the self-telemetry MIB: `1.3.6.1.4.1.99999.3`.
pub fn telemetry_base() -> Oid {
    qos::netqos_enterprise().child(TELEMETRY_ARC)
}

fn clamp_gauge(v: u64) -> SnmpValue {
    SnmpValue::Gauge32(v.min(u32::MAX as u64) as u32)
}

fn wrap_counter(v: u64) -> SnmpValue {
    SnmpValue::Counter32((v & u64::from(u32::MAX)) as u32)
}

/// An SNMPv1 agent view over a telemetry [`Registry`].
///
/// Transport-free like [`SnmpAgent`]: [`SelfAgent::handle`] maps request
/// bytes to optional response bytes, regenerating the MIB from a fresh
/// registry snapshot first, so every response reflects live values.
pub struct SelfAgent {
    registry: Arc<Registry>,
    agent: SnmpAgent,
    mib: ScalarMib,
}

impl SelfAgent {
    /// Creates a sub-agent serving `registry` to the given community.
    pub fn new(registry: Arc<Registry>, community: &str) -> Self {
        let mut this = SelfAgent {
            registry,
            agent: SnmpAgent::new(community),
            mib: ScalarMib::new(),
        };
        this.refresh();
        this
    }

    /// Rebuilds the MIB from the current registry snapshot.
    pub fn refresh(&mut self) {
        let snap = self.registry.snapshot();
        let base = telemetry_base();
        let mut mib = ScalarMib::new();
        for (i, (name, value)) in snap.counters.iter().enumerate() {
            let idx = i as u32 + 1;
            mib.insert(base.extend(&[1, 1, idx]), SnmpValue::text(name));
            mib.insert(base.extend(&[1, 2, idx]), wrap_counter(*value));
        }
        for (i, (name, value)) in snap.gauges.iter().enumerate() {
            let idx = i as u32 + 1;
            mib.insert(base.extend(&[2, 1, idx]), SnmpValue::text(name));
            mib.insert(base.extend(&[2, 2, idx]), SnmpValue::Integer(*value));
        }
        for (i, (name, s)) in snap.histograms.iter().enumerate() {
            let idx = i as u32 + 1;
            mib.insert(base.extend(&[3, 1, idx]), SnmpValue::text(name));
            mib.insert(base.extend(&[3, 2, idx]), wrap_counter(s.count));
            mib.insert(base.extend(&[3, 3, idx]), wrap_counter(s.sum));
            mib.insert(base.extend(&[3, 4, idx]), clamp_gauge(s.min));
            mib.insert(base.extend(&[3, 5, idx]), clamp_gauge(s.max));
            mib.insert(base.extend(&[3, 6, idx]), clamp_gauge(s.p50));
            mib.insert(base.extend(&[3, 7, idx]), clamp_gauge(s.p90));
            mib.insert(base.extend(&[3, 8, idx]), clamp_gauge(s.p99));
        }
        self.mib = mib;
    }

    /// Handles one request datagram, refreshing the MIB first. Returns
    /// the response datagram, or `None` where SNMPv1 prescribes silence.
    pub fn handle(&mut self, request: &[u8]) -> Option<Vec<u8>> {
        self.refresh();
        self.agent.handle(request, &self.mib)
    }

    /// The instance OID holding the value of the named counter, as of the
    /// last refresh.
    pub fn counter_value_oid(&self, name: &str) -> Option<Oid> {
        self.name_to_value_oid(1, name)
    }

    /// The instance OID holding the value of the named gauge.
    pub fn gauge_value_oid(&self, name: &str) -> Option<Oid> {
        self.name_to_value_oid(2, name)
    }

    /// The instance OID holding the sample count of the named histogram.
    pub fn histogram_count_oid(&self, name: &str) -> Option<Oid> {
        self.name_to_value_oid(3, name)
    }

    fn name_to_value_oid(&self, table: u32, name: &str) -> Option<Oid> {
        let name_col = telemetry_base().extend(&[table, 1]);
        for (oid, value) in self.mib.subtree(&name_col) {
            if let SnmpValue::OctetString(bytes) = value {
                if bytes == name.as_bytes() {
                    let idx = *oid.arcs().last()?;
                    return Some(telemetry_base().extend(&[table, 2, idx]));
                }
            }
        }
        None
    }

    /// The current MIB (as of the last refresh).
    pub fn mib(&self) -> &ScalarMib {
        &self.mib
    }

    /// Underlying agent statistics.
    pub fn stats(&self) -> AgentStats {
        self.agent.stats()
    }

    /// The registry this agent serves.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_snmp::message::{MessageBody, SnmpMessage, SnmpVersion};
    use netqos_snmp::pdu::{ErrorStatus, Pdu, PduType, VarBind};

    fn get_request(oid: Oid) -> Vec<u8> {
        SnmpMessage {
            version: SnmpVersion::V1,
            community: b"public".to_vec(),
            body: MessageBody::Pdu(Pdu {
                pdu_type: PduType::GetRequest,
                request_id: 7,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                bindings: vec![VarBind {
                    oid,
                    value: SnmpValue::Null,
                }],
            }),
        }
        .encode()
        .unwrap()
    }

    fn decode_single(resp: &[u8]) -> SnmpValue {
        let msg = SnmpMessage::decode(resp).unwrap();
        match msg.body {
            MessageBody::Pdu(pdu) => {
                assert_eq!(pdu.error_status, ErrorStatus::NoError);
                pdu.bindings.into_iter().next().unwrap().value
            }
            other => panic!("unexpected body: {other:?}"),
        }
    }

    #[test]
    fn serves_live_counter_values() {
        let registry = Registry::new();
        let c = registry.counter("netqos_monitor_ticks_total");
        c.add(5);
        let mut agent = SelfAgent::new(registry, "public");
        let oid = agent
            .counter_value_oid("netqos_monitor_ticks_total")
            .unwrap();
        let resp = agent.handle(&get_request(oid.clone())).unwrap();
        assert_eq!(decode_single(&resp), SnmpValue::Counter32(5));

        // Values are re-snapshotted per request, not frozen at creation.
        c.add(2);
        let resp = agent.handle(&get_request(oid)).unwrap();
        assert_eq!(decode_single(&resp), SnmpValue::Counter32(7));
    }

    #[test]
    fn walk_visits_whole_subtree_in_order() {
        let registry = Registry::new();
        registry.counter("a_total").inc();
        registry.gauge("depth").set(-3);
        registry.histogram("rtt_us").record(1000);
        let mut agent = SelfAgent::new(registry, "public");
        agent.refresh();

        let base = telemetry_base();
        let mut cur = base.clone();
        let mut seen = Vec::new();
        while let Some((next, _)) = {
            use netqos_snmp::mib::MibView;
            agent.mib().next_after(&cur)
        } {
            if !next.starts_with(&base) {
                break;
            }
            seen.push(next.clone());
            cur = next;
        }
        // 1 counter (name+value) + 1 gauge (name+value) + 1 histogram
        // (name + 7 stats) = 12 instances.
        assert_eq!(seen.len(), 12);
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
    }

    #[test]
    fn gauge_roundtrips_negative_values() {
        let registry = Registry::new();
        registry.gauge("netqos_monitor_trap_outbox_depth").set(-9);
        let mut agent = SelfAgent::new(registry, "public");
        let oid = agent
            .gauge_value_oid("netqos_monitor_trap_outbox_depth")
            .unwrap();
        let resp = agent.handle(&get_request(oid)).unwrap();
        assert_eq!(decode_single(&resp), SnmpValue::Integer(-9));
    }
}
