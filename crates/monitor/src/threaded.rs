//! Distributed monitoring over real UDP — the paper's future-work item
//! "distributed network monitoring", built on the sans-IO SNMP client.
//!
//! One poller thread per agent sends the Table-1 GetRequest every
//! `period`, pushing parsed snapshots into a crossbeam channel; the
//! consumer (usually the RM process) drains the channel into a
//! [`NetworkMonitor`](crate::monitor::NetworkMonitor). Agent failures are reported in-band so the RM can
//! treat an unresponsive host as a failure-detection signal.

use crate::error::MonitorError;
use crate::live::unix_now_ns;
use crate::poll::{self, DeviceSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender};
use netqos_snmp::client::SnmpClient;
use netqos_snmp::transport::UdpTransport;
use netqos_telemetry::{
    Counter, CycleTrace, FlightRecorder, Gauge, Histogram, Registry, SpanRecord, Tracer,
};
use netqos_topology::NodeId;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One agent to poll.
#[derive(Debug, Clone)]
pub struct AgentTarget {
    /// The topology node this agent represents.
    pub node: NodeId,
    /// UDP address of the agent.
    pub addr: SocketAddr,
    /// Community string.
    pub community: String,
    /// Number of interfaces to poll.
    pub if_count: u32,
}

/// A message from a poller thread.
#[derive(Debug)]
pub enum PollMessage {
    /// A successful poll.
    Snapshot {
        /// Which node.
        node: NodeId,
        /// The snapshot.
        snapshot: DeviceSnapshot,
    },
    /// A failed poll (timeout or protocol error).
    Failure {
        /// Which node.
        node: NodeId,
        /// Why.
        error: MonitorError,
    },
}

/// Handle to a running distributed poller.
pub struct DistributedPoller {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    rx: Receiver<PollMessage>,
    stats: Arc<Mutex<PollerStats>>,
    queue_depth: Gauge,
    worker_spans: Arc<Mutex<Vec<SpanRecord>>>,
}

/// Upper bound on buffered worker spans awaiting collection; beyond
/// this, the oldest spans are dropped (forensics favours recency).
const WORKER_SPAN_CAP: usize = 4096;

/// Aggregate poller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollerStats {
    /// Successful polls across all agents.
    pub successes: u64,
    /// Failed polls across all agents.
    pub failures: u64,
}

/// Telemetry handles shared by one poller's worker threads.
#[derive(Clone)]
struct WorkerTelemetry {
    successes: Counter,
    failures: Counter,
    queue_depth: Gauge,
    poll_ns: Histogram,
    /// This worker's own poll-latency histogram
    /// (`netqos_threaded_worker_<i>_poll_ns`).
    worker_poll_ns: Histogram,
}

impl DistributedPoller {
    /// Spawns one polling thread per target, with metrics in the
    /// process-global registry.
    pub fn spawn(targets: Vec<AgentTarget>, period: Duration) -> Self {
        Self::spawn_with_registry(targets, period, netqos_telemetry::global())
    }

    /// Spawns one polling thread per target, resolving metrics against
    /// `registry`: aggregate success/failure counters, a wall-clock poll
    /// latency histogram (plus one per worker), and a queue-depth gauge
    /// tracking undrained [`PollMessage`]s.
    pub fn spawn_with_registry(
        targets: Vec<AgentTarget>,
        period: Duration,
        registry: &Registry,
    ) -> Self {
        Self::spawn_inner(targets, period, registry, &Tracer::disabled(), None)
    }

    /// Like [`DistributedPoller::spawn_with_registry`], but each worker
    /// thread records causal spans into a fork of `tracer` (sharing its
    /// enable switch, not its cycle buffer — workers are concurrent, so
    /// each poll becomes its own trace). Drained spans accumulate up to
    /// [`WORKER_SPAN_CAP`]; collect them with
    /// [`DistributedPoller::take_spans`].
    pub fn spawn_traced(
        targets: Vec<AgentTarget>,
        period: Duration,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Self {
        Self::spawn_inner(targets, period, registry, tracer, None)
    }

    /// Like [`DistributedPoller::spawn_traced`], additionally pushing
    /// each worker poll as its own [`CycleTrace`] into `flight`, so
    /// real-UDP polls land in the same forensic ring (and OTLP/Chrome
    /// snapshots) as the simulated pipeline's cycles.
    pub fn spawn_traced_with_flight(
        targets: Vec<AgentTarget>,
        period: Duration,
        registry: &Registry,
        tracer: &Tracer,
        flight: Arc<FlightRecorder>,
    ) -> Self {
        Self::spawn_inner(targets, period, registry, tracer, Some(flight))
    }

    fn spawn_inner(
        targets: Vec<AgentTarget>,
        period: Duration,
        registry: &Registry,
        tracer: &Tracer,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(Mutex::new(PollerStats::default()));
        let worker_spans = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx): (Sender<PollMessage>, Receiver<PollMessage>) = unbounded();
        let mut threads = Vec::with_capacity(targets.len());
        for (i, target) in targets.into_iter().enumerate() {
            let stop = stop.clone();
            let tx = tx.clone();
            let stats = stats.clone();
            let tracer = tracer.fork();
            let spans = worker_spans.clone();
            let flight = flight.clone();
            let telemetry = WorkerTelemetry {
                successes: registry.counter("netqos_threaded_polls_total"),
                failures: registry.counter("netqos_threaded_poll_failures_total"),
                queue_depth: registry.gauge("netqos_threaded_queue_depth"),
                poll_ns: registry.histogram("netqos_threaded_poll_ns"),
                worker_poll_ns: registry.histogram(&format!("netqos_threaded_worker_{i}_poll_ns")),
            };
            threads.push(std::thread::spawn(move || {
                poll_loop(
                    target, period, stop, tx, stats, telemetry, tracer, spans, flight,
                )
            }));
        }
        DistributedPoller {
            stop,
            threads,
            rx,
            stats,
            queue_depth: registry.gauge("netqos_threaded_queue_depth"),
            worker_spans,
        }
    }

    /// Takes every span the worker threads have recorded since the last
    /// call (empty unless spawned via [`DistributedPoller::spawn_traced`]
    /// with tracing enabled).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.worker_spans.lock())
    }

    /// The message channel to drain.
    pub fn messages(&self) -> &Receiver<PollMessage> {
        &self.rx
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> PollerStats {
        *self.stats.lock()
    }

    /// Stops all threads and joins them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Drains pending messages into a monitor; failures are returned.
    pub fn drain_into(
        &self,
        monitor: &mut crate::monitor::NetworkMonitor,
    ) -> Vec<(NodeId, MonitorError)> {
        let mut failures = Vec::new();
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                PollMessage::Snapshot { node, snapshot } => {
                    if let Err(e) = monitor.ingest(node, snapshot) {
                        failures.push((node, e));
                    }
                }
                PollMessage::Failure { node, error } => failures.push((node, error)),
            }
        }
        self.queue_depth.set(self.rx.len() as i64);
        failures
    }
}

impl Drop for DistributedPoller {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn poll_loop(
    target: AgentTarget,
    period: Duration,
    stop: Arc<AtomicBool>,
    tx: Sender<PollMessage>,
    stats: Arc<Mutex<PollerStats>>,
    telemetry: WorkerTelemetry,
    tracer: Tracer,
    spans: Arc<Mutex<Vec<SpanRecord>>>,
    flight: Option<Arc<FlightRecorder>>,
) {
    // Each fork has its own monotonic origin; anchor it on the Unix
    // timeline once so this worker's flight cycles export as OTLP with
    // absolute timestamps.
    let epoch_unix_ns = unix_now_ns().saturating_sub(tracer.now_ns());
    let oids = poll::poll_oids(target.if_count);
    let transport = match UdpTransport::connect(target.addr) {
        Ok(mut t) => {
            t.set_timeout(period.min(Duration::from_millis(500)));
            t.set_retries(1);
            t
        }
        Err(e) => {
            let _ = tx.send(PollMessage::Failure {
                node: target.node,
                error: MonitorError::Snmp(e.to_string()),
            });
            return;
        }
    };
    let mut client = SnmpClient::new(transport, &target.community);
    client.set_tracer(tracer.clone());
    while !stop.load(Ordering::Relaxed) {
        // Each poll is its own trace: workers are concurrent, so their
        // spans cannot share the service's per-tick cycle buffer.
        let trace_id = tracer.begin_cycle();
        let cycle_start_ns = tracer.now_ns();
        let mut poll_span = tracer.span("monitor.poll", "device");
        if poll_span.is_recording() {
            poll_span.set_attr("device", target.node.to_string());
            poll_span.set_attr("addr", target.addr.to_string());
        }
        let poll_start = Instant::now();
        let result = client
            .get_many(&oids)
            .map_err(MonitorError::from)
            .and_then(|bindings| poll::parse_snapshot(&bindings, target.if_count));
        let elapsed = poll_start.elapsed();
        poll_span.set_attr("ok", result.is_ok());
        drop(poll_span);
        let drained = tracer.end_cycle();
        if !drained.is_empty() {
            if let Some(flight) = &flight {
                flight.push(CycleTrace {
                    seq: 0, // assigned by the recorder
                    trace_id,
                    start_ns: cycle_start_ns,
                    end_ns: tracer.now_ns(),
                    epoch_unix_ns,
                    spans: drained.clone(),
                    samples: Vec::new(),
                    events: Vec::new(),
                });
            }
            let mut buf = spans.lock();
            buf.extend(drained);
            let len = buf.len();
            if len > WORKER_SPAN_CAP {
                buf.drain(..len - WORKER_SPAN_CAP);
            }
        }
        telemetry.poll_ns.record_duration(elapsed);
        telemetry.worker_poll_ns.record_duration(elapsed);
        let msg = match result {
            Ok(snapshot) => {
                stats.lock().successes += 1;
                telemetry.successes.inc();
                PollMessage::Snapshot {
                    node: target.node,
                    snapshot,
                }
            }
            Err(error) => {
                stats.lock().failures += 1;
                telemetry.failures.inc();
                PollMessage::Failure {
                    node: target.node,
                    error,
                }
            }
        };
        if tx.send(msg).is_err() {
            return; // consumer gone
        }
        telemetry.queue_depth.set(tx.len() as i64);
        // Sleep in small slices so stop is responsive.
        let mut remaining = period;
        while !stop.load(Ordering::Relaxed) && remaining > Duration::ZERO {
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NetworkMonitor;
    use netqos_snmp::mib::ScalarMib;
    use netqos_snmp::mib2::{self, IfEntry, SystemInfo};
    use netqos_snmp::transport::UdpAgentServer;
    use netqos_topology::{IfIx, NetworkTopology, NodeKind};
    use std::sync::atomic::AtomicU32;

    /// An agent whose counters advance by a fixed amount per request —
    /// easy to predict rates from.
    fn spawn_growing_agent(
        octets_per_poll: u32,
        ticks_per_poll: u32,
    ) -> netqos_snmp::transport::UdpAgentHandle {
        let polls = Arc::new(AtomicU32::new(0));
        UdpAgentServer::spawn("127.0.0.1:0", "public", move || {
            let k = polls.fetch_add(1, Ordering::Relaxed) + 1;
            let mut mib = ScalarMib::new();
            mib2::system::install(&mut mib, &SystemInfo::new("T"), k * ticks_per_poll);
            let mut e = IfEntry::ethernet(1, "eth0", 100_000_000, [2, 0, 0, 0, 0, 9]);
            e.in_octets = k.wrapping_mul(octets_per_poll);
            mib2::interfaces::install(&mut mib, &[e]);
            mib
        })
        .expect("spawn agent")
    }

    fn one_node_topology() -> (NetworkTopology, NodeId) {
        let mut t = NetworkTopology::new();
        let a = t.add_node("T", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 100_000_000).unwrap();
        t.set_snmp(a, "public").unwrap();
        // A peer so paths exist if needed.
        let b = t.add_node("B", NodeKind::Host).unwrap();
        t.add_interface(b, "eth0", 100_000_000).unwrap();
        t.connect((a, IfIx(0)), (b, IfIx(0))).unwrap();
        (t, a)
    }

    #[test]
    fn distributed_poller_produces_rates() {
        // 125000 octets per poll, 100 ticks (1 s of agent uptime) per
        // poll -> exactly 1 Mb/s regardless of wall-clock pacing.
        let server = spawn_growing_agent(125_000, 100);
        let (topo, node) = one_node_topology();
        let poller = DistributedPoller::spawn(
            vec![AgentTarget {
                node,
                addr: server.local_addr(),
                community: "public".into(),
                if_count: 1,
            }],
            Duration::from_millis(50),
        );
        let mut monitor = NetworkMonitor::new(topo);
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while monitor.if_rates(node, IfIx(0)).is_none() {
            assert!(std::time::Instant::now() < deadline, "no rates in time");
            poller.drain_into(&mut monitor);
            std::thread::sleep(Duration::from_millis(20));
        }
        let r = monitor.if_rates(node, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_000_000);
        assert!(poller.stats().successes >= 2);
        poller.stop();
        server.stop();
    }

    #[test]
    fn traced_worker_polls_land_in_flight_recorder() {
        let server = spawn_growing_agent(125_000, 100);
        let (topo, node) = one_node_topology();
        let registry = Registry::new();
        let tracer = Tracer::new(); // enabled
        let flight = Arc::new(FlightRecorder::new(16));
        let poller = DistributedPoller::spawn_traced_with_flight(
            vec![AgentTarget {
                node,
                addr: server.local_addr(),
                community: "public".into(),
                if_count: 1,
            }],
            Duration::from_millis(30),
            &registry,
            &tracer,
            flight.clone(),
        );
        let mut monitor = NetworkMonitor::new(topo);
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while flight.len() < 2 {
            assert!(std::time::Instant::now() < deadline, "no flight cycles");
            poller.drain_into(&mut monitor);
            std::thread::sleep(Duration::from_millis(20));
        }
        poller.stop();
        server.stop();
        let cycles = flight.snapshot();
        assert!(cycles.len() >= 2);
        for c in &cycles {
            assert_ne!(c.trace_id, 0);
            // Worker epochs anchor the cycle on the Unix timeline
            // (clearly after 2020-01-01 in nanoseconds).
            assert!(c.epoch_unix_ns > 1_577_836_800_000_000_000);
            let device = c
                .spans
                .iter()
                .find(|s| s.target == "monitor.poll")
                .expect("poll span in flight cycle");
            assert!(device.attrs.iter().any(|(k, _)| k == "device"));
            // The SNMP client's spans nest under the poll span.
            assert!(
                c.spans.iter().any(|s| s.parent == Some(device.span_id)),
                "expected child spans under the poll span"
            );
        }
        // The worker-span buffer API still works alongside the ring.
        // (Spans were drained into both.)
        let exported = netqos_telemetry::to_otlp(&cycles);
        let stats = netqos_telemetry::validate_otlp(&exported).unwrap();
        assert_eq!(stats.traces, cycles.len());
    }

    #[test]
    fn unreachable_agent_reports_failures() {
        let (topo, node) = one_node_topology();
        let poller = DistributedPoller::spawn(
            vec![AgentTarget {
                node,
                addr: "127.0.0.1:1".parse().unwrap(),
                community: "public".into(),
                if_count: 1,
            }],
            Duration::from_millis(50),
        );
        let mut monitor = NetworkMonitor::new(topo);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut failures = Vec::new();
        while failures.is_empty() {
            assert!(std::time::Instant::now() < deadline, "no failure in time");
            failures = poller.drain_into(&mut monitor);
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(matches!(failures[0].1, MonitorError::Snmp(_)));
        poller.stop();
    }
}
