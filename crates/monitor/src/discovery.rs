//! Hybrid topology verification — the paper's "dynamic network topology
//! discovery" future-work item, in the hybrid form its §2.3 suggests:
//!
//! > "Pure network discovery is not feasible in the DeSiDeRaTa
//! > environment because the resource management middleware has to know
//! > exactly what resources are under its control […] A hybrid approach
//! > may be a better solution in the future."
//!
//! The specification stays authoritative; this module *verifies* it
//! against live forwarding evidence: each managed switch's BRIDGE-MIB
//! forwarding database says on which port every MAC address was learned,
//! and each host agent's `ifPhysAddress` says which MAC belongs to which
//! specified interface. A specified connection `host.if <-> switch.pN`
//! is **confirmed** when the host's MAC is learned on port N, flagged as
//! **mismatched** (miscabled or mis-specified) when learned elsewhere,
//! and **unverified** when no evidence exists yet (the host has not
//! transmitted, or runs no agent).

use crate::error::MonitorError;
use crate::simnet::SimNetwork;
use netqos_snmp::mib2::bridge::FdbEntry;
use netqos_topology::{ConnId, NetworkTopology, NodeId};
use std::collections::HashMap;

/// Verification verdict for one specified connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forwarding evidence agrees with the specification.
    Confirmed,
    /// The MAC was learned on a different switch port than specified —
    /// a cabling or specification error the RM must flag.
    Mismatch {
        /// Port the specification implies (ifIndex on the switch).
        specified_port: u32,
        /// Port the switch actually learned the MAC on.
        learned_port: u32,
    },
    /// No evidence either way (host silent so far, or unmonitorable).
    Unverified,
}

/// The verification result for one connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The specified connection.
    pub conn: ConnId,
    /// Human-readable connection description.
    pub description: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// Pure verification logic: given the spec topology, per-switch FDBs, and
/// per-node interface MACs, produce a finding for every host↔switch
/// connection of each audited switch.
pub fn verify_connections(
    topo: &NetworkTopology,
    switch: NodeId,
    fdb: &[FdbEntry],
    macs: &HashMap<(NodeId, u32), [u8; 6]>,
) -> Result<Vec<Finding>, MonitorError> {
    let fdb_by_mac: HashMap<[u8; 6], u32> = fdb.iter().map(|e| (e.mac, e.port)).collect();
    let mut findings = Vec::new();
    for conn_id in topo.connections_of(switch) {
        let conn = topo.connection(conn_id)?;
        let switch_end = conn
            .endpoint_on(switch)
            .expect("connection touches the switch");
        let far = conn.other_end(switch).expect("connection touches switch");
        let far_node = topo.node(far.node)?;
        if !far_node.kind.is_host() {
            continue; // trunks to other devices: not host evidence
        }
        let description = topo.describe_connection(conn_id);
        let specified_port = switch_end.ifix.if_index();
        let verdict = match macs.get(&(far.node, far.ifix.if_index())) {
            Some(mac) => match fdb_by_mac.get(mac) {
                Some(&learned_port) if learned_port == specified_port => Verdict::Confirmed,
                Some(&learned_port) => Verdict::Mismatch {
                    specified_port,
                    learned_port,
                },
                None => Verdict::Unverified,
            },
            None => Verdict::Unverified,
        };
        findings.push(Finding {
            conn: conn_id,
            description,
            verdict,
        });
    }
    Ok(findings)
}

/// Full audit against a live simulated network: walks every managed
/// switch's FDB, collects host MACs from their agents, and verifies every
/// host↔switch connection.
pub fn audit(net: &mut SimNetwork) -> Result<Vec<Finding>, MonitorError> {
    let topo = net.model().topology.clone();

    // Evidence 1: host interface MACs from ifPhysAddress.
    let mut macs: HashMap<(NodeId, u32), [u8; 6]> = HashMap::new();
    for node in net.pollable_nodes() {
        if !topo.node(node)?.kind.is_host() {
            continue;
        }
        for (ifindex, mac) in net.poll_phys_addresses(node)? {
            macs.insert((node, ifindex), mac);
        }
    }

    // Evidence 2: each managed switch's forwarding database.
    let mut findings = Vec::new();
    for node in net.pollable_nodes() {
        if !topo.node(node)?.kind.forwards_selectively() {
            continue;
        }
        let fdb = net.poll_fdb(node)?;
        findings.extend(verify_connections(&topo, node, &fdb, &macs)?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_topology::{IfIx, NodeKind};

    fn topo() -> (NetworkTopology, NodeId, NodeId, NodeId) {
        let mut t = NetworkTopology::new();
        let sw = t.add_node("sw", NodeKind::Switch).unwrap();
        for p in 0..3 {
            t.add_interface(sw, &format!("p{p}"), 100).unwrap();
        }
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 100).unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        t.add_interface(b, "eth0", 100).unwrap();
        t.connect((a, IfIx(0)), (sw, IfIx(0))).unwrap();
        t.connect((b, IfIx(0)), (sw, IfIx(1))).unwrap();
        (t, sw, a, b)
    }

    const MAC_A: [u8; 6] = [2, 0, 0, 0, 0, 1];
    const MAC_B: [u8; 6] = [2, 0, 0, 0, 0, 2];

    #[test]
    fn confirmed_when_fdb_matches_spec() {
        let (t, sw, a, b) = topo();
        let fdb = vec![
            FdbEntry {
                mac: MAC_A,
                port: 1,
            },
            FdbEntry {
                mac: MAC_B,
                port: 2,
            },
        ];
        let mut macs = HashMap::new();
        macs.insert((a, 1), MAC_A);
        macs.insert((b, 1), MAC_B);
        let findings = verify_connections(&t, sw, &fdb, &macs).unwrap();
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.verdict == Verdict::Confirmed));
    }

    #[test]
    fn mismatch_when_learned_on_wrong_port() {
        let (t, sw, a, b) = topo();
        // A's MAC shows up on port 2 — the cables were swapped.
        let fdb = vec![
            FdbEntry {
                mac: MAC_A,
                port: 2,
            },
            FdbEntry {
                mac: MAC_B,
                port: 1,
            },
        ];
        let mut macs = HashMap::new();
        macs.insert((a, 1), MAC_A);
        macs.insert((b, 1), MAC_B);
        let findings = verify_connections(&t, sw, &fdb, &macs).unwrap();
        assert!(findings
            .iter()
            .all(|f| matches!(f.verdict, Verdict::Mismatch { .. })));
        match &findings[0].verdict {
            Verdict::Mismatch {
                specified_port,
                learned_port,
            } => {
                assert_ne!(specified_port, learned_port);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unverified_without_evidence() {
        let (t, sw, a, _) = topo();
        // No FDB entries at all, and only A's MAC known.
        let mut macs = HashMap::new();
        macs.insert((a, 1), MAC_A);
        let findings = verify_connections(&t, sw, &[], &macs).unwrap();
        assert!(findings.iter().all(|f| f.verdict == Verdict::Unverified));
    }

    #[test]
    fn trunk_connections_skipped() {
        let (mut t, sw, _, _) = topo();
        let hub = t.add_node("hub", NodeKind::Hub).unwrap();
        t.add_interface(hub, "h1", 100).unwrap();
        t.connect((sw, IfIx(2)), (hub, IfIx(0))).unwrap();
        let findings = verify_connections(&t, sw, &[], &HashMap::new()).unwrap();
        // Only the two host connections are audited.
        assert_eq!(findings.len(), 2);
    }
}
