//! The core monitor state machine.
//!
//! [`NetworkMonitor`] owns the specified topology and, per SNMP-capable
//! node, the previous [`DeviceSnapshot`]. Each new snapshot yields
//! per-interface rates (bits/s) via the wrap-safe delta arithmetic of
//! [`crate::delta`]; the rates table implements
//! [`netqos_topology::bandwidth::RateProvider`], so path bandwidth is one
//! call away.

use crate::delta;
use crate::error::MonitorError;
use crate::poll::DeviceSnapshot;
use netqos_telemetry::{Counter, Tracer};
use netqos_topology::bandwidth::{self, IfRates, MapRates, PathBandwidth, RateProvider};
use netqos_topology::path::{self, CommPath};
use netqos_topology::{IfIx, NetworkTopology, NodeId};
use std::collections::HashMap;

/// Per-interface rates computed from one poll interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfRateSample {
    /// Receive rate, bits/s.
    pub in_bps: u64,
    /// Transmit rate, bits/s.
    pub out_bps: u64,
    /// Receive unicast packets/s.
    pub in_ucast_pps: u64,
    /// Transmit non-unicast packets/s.
    pub out_nucast_pps: u64,
}

/// How the monitor determines the interval between two polls of a device.
///
/// The paper's §3.1 prescribes `SysUpTime`: "The time interval between two
/// polling processes can be found using the system uptime data" — counter
/// and clock are sampled atomically in one PDU, so agent response delays
/// do not corrupt the rate. `NominalPeriod` is the naive alternative
/// (assume polls land exactly one period apart); it is provided for the
/// ablation study, which quantifies how much accuracy the paper's choice
/// buys under agent jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalStrategy {
    /// Use the delta of the agent's `sysUpTime` (the paper's method).
    SysUpTime,
    /// Assume a fixed poll period, in TimeTicks (hundredths of a second).
    NominalPeriod(u32),
}

/// Exponentially weighted smoothing of per-interface rates.
///
/// `alpha = 1.0` (the default) reproduces the paper exactly — each poll's
/// raw interval rate is reported. Smaller alphas trade responsiveness for
/// stability; the RM can use a smoothed feed to avoid reacting to single
/// polling-delay spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Smoothing {
    /// Weight of the newest sample in `(0, 1]`.
    pub alpha: f64,
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing { alpha: 1.0 }
    }
}

impl Smoothing {
    /// EWMA update.
    fn blend(&self, old: u64, new: u64) -> u64 {
        if self.alpha >= 1.0 {
            return new;
        }
        (old as f64 * (1.0 - self.alpha) + new as f64 * self.alpha).round() as u64
    }
}

/// The monitor.
pub struct NetworkMonitor {
    topology: NetworkTopology,
    previous: HashMap<NodeId, DeviceSnapshot>,
    rates: MapRates,
    detail: HashMap<(NodeId, IfIx), IfRateSample>,
    polls_ingested: u64,
    interval_strategy: IntervalStrategy,
    smoothing: Smoothing,
    tracer: Tracer,
    /// Samples discarded because the device rebooted between polls.
    uptime_resets: Counter,
    /// Counter32 rollovers absorbed by the modular delta arithmetic.
    counter_wraps: Counter,
}

impl NetworkMonitor {
    /// Creates a monitor over a specified topology (paper defaults:
    /// sysUpTime intervals, no smoothing).
    pub fn new(topology: NetworkTopology) -> Self {
        NetworkMonitor {
            topology,
            previous: HashMap::new(),
            rates: MapRates::new(),
            detail: HashMap::new(),
            polls_ingested: 0,
            interval_strategy: IntervalStrategy::SysUpTime,
            smoothing: Smoothing::default(),
            tracer: Tracer::disabled(),
            uptime_resets: Counter::new(),
            counter_wraps: Counter::new(),
        }
    }

    /// Routes this monitor's spans into `tracer` (a clone; spans land in
    /// the same cycle buffer as the caller's).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Binds the health counters to registry-backed handles (the
    /// standalone defaults keep unit tests registry-free).
    pub fn set_health_counters(&mut self, uptime_resets: Counter, counter_wraps: Counter) {
        self.uptime_resets = uptime_resets;
        self.counter_wraps = counter_wraps;
    }

    /// Snapshots discarded because the device rebooted between polls.
    pub fn uptime_resets(&self) -> u64 {
        self.uptime_resets.get()
    }

    /// Counter32 rollovers absorbed by the modular delta arithmetic.
    pub fn counter_wraps(&self) -> u64 {
        self.counter_wraps.get()
    }

    /// Selects how poll intervals are measured (see [`IntervalStrategy`]).
    pub fn set_interval_strategy(&mut self, strategy: IntervalStrategy) {
        self.interval_strategy = strategy;
    }

    /// Enables EWMA smoothing of reported rates.
    pub fn set_smoothing(&mut self, smoothing: Smoothing) {
        assert!(
            smoothing.alpha > 0.0 && smoothing.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        self.smoothing = smoothing;
    }

    /// The topology under monitoring.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// Number of snapshots ingested so far.
    pub fn polls_ingested(&self) -> u64 {
        self.polls_ingested
    }

    /// Maps a reported interface to the topology interface index: first by
    /// `ifDescr` = spec local name, then positionally by ifIndex.
    fn map_interface(
        &self,
        node: NodeId,
        descr: &str,
        if_index: u32,
    ) -> Result<IfIx, MonitorError> {
        if let Ok(ifix) = self.topology.interface_by_name(node, descr) {
            return Ok(ifix);
        }
        let n = self.topology.node(node)?;
        let positional = IfIx::from_if_index(if_index);
        match positional {
            Some(ifix) if ifix.index() < n.interfaces.len() => Ok(ifix),
            _ => Err(MonitorError::UnknownInterface {
                node: n.name.clone(),
                descr: descr.to_owned(),
            }),
        }
    }

    /// Ingests a snapshot of `node`. The first snapshot only establishes a
    /// baseline (returns `false`); subsequent snapshots update the rate
    /// table (returns `true`).
    pub fn ingest(&mut self, node: NodeId, snapshot: DeviceSnapshot) -> Result<bool, MonitorError> {
        self.polls_ingested += 1;
        let mut span = self.tracer.span("monitor.delta", "ingest");
        if span.is_recording() {
            if let Ok(n) = self.topology.node(node) {
                span.set_attr("device", n.name.as_str());
            }
            span.set_attr("interfaces", snapshot.interfaces.len());
        }
        let Some(prev) = self.previous.get(&node) else {
            span.set_attr("baseline", true);
            self.previous.insert(node, snapshot);
            return Ok(false);
        };

        // Device reboot between polls: the counters restarted from zero,
        // so deltas are garbage and the true elapsed time is unknowable.
        // Mark the sample stale (re-baseline) instead of dividing by a
        // bogus interval.
        if delta::uptime_reset(prev.uptime_ticks, snapshot.uptime_ticks) {
            self.uptime_resets.inc();
            span.set_attr("uptime_reset", true);
            self.previous.insert(node, snapshot);
            return Ok(false);
        }

        let interval = match self.interval_strategy {
            IntervalStrategy::SysUpTime => {
                delta::ticks_delta(prev.uptime_ticks, snapshot.uptime_ticks)
            }
            IntervalStrategy::NominalPeriod(ticks) => ticks,
        };
        if interval == 0 {
            // Same-tick re-poll: keep the newer counters as baseline but
            // no rate can be formed.
            self.previous.insert(node, snapshot);
            return Ok(false);
        }
        span.set_attr("interval_ticks", interval);

        for cur in &snapshot.interfaces {
            let Some(old) = prev.interfaces.iter().find(|p| p.if_index == cur.if_index) else {
                continue; // interface appeared between polls
            };
            if delta::counter_wrapped(old.in_octets, cur.in_octets) {
                self.counter_wraps.inc();
            }
            if delta::counter_wrapped(old.out_octets, cur.out_octets) {
                self.counter_wraps.inc();
            }
            let ifix = self.map_interface(node, &cur.descr, cur.if_index)?;
            let in_bps =
                delta::rate_bps(delta::counter_delta(old.in_octets, cur.in_octets), interval)
                    .unwrap_or(0);
            let out_bps = delta::rate_bps(
                delta::counter_delta(old.out_octets, cur.out_octets),
                interval,
            )
            .unwrap_or(0);
            let in_ucast_pps = delta::pps(
                delta::counter_delta(old.in_ucast_pkts, cur.in_ucast_pkts),
                interval,
            )
            .unwrap_or(0);
            let out_nucast_pps = delta::pps(
                delta::counter_delta(old.out_nucast_pkts, cur.out_nucast_pkts),
                interval,
            )
            .unwrap_or(0);
            // EWMA smoothing (alpha = 1.0 keeps the raw paper behaviour).
            let (in_bps, out_bps) = match self.detail.get(&(node, ifix)) {
                Some(prev_rates) => (
                    self.smoothing.blend(prev_rates.in_bps, in_bps),
                    self.smoothing.blend(prev_rates.out_bps, out_bps),
                ),
                None => (in_bps, out_bps),
            };
            self.rates.set(node, ifix, IfRates { in_bps, out_bps });
            self.detail.insert(
                (node, ifix),
                IfRateSample {
                    in_bps,
                    out_bps,
                    in_ucast_pps,
                    out_nucast_pps,
                },
            );
        }
        self.previous.insert(node, snapshot);
        Ok(true)
    }

    /// The current rate table (usable as a
    /// [`RateProvider`]).
    pub fn rates(&self) -> &MapRates {
        &self.rates
    }

    /// Full per-interface rate detail for an interface, if monitored.
    pub fn if_rates(&self, node: NodeId, ifix: IfIx) -> Option<IfRateSample> {
        self.detail.get(&(node, ifix)).copied()
    }

    /// Finds the communication path between two hosts (paper §3.3
    /// traversal).
    pub fn path(&self, from: NodeId, to: NodeId) -> Result<CommPath, MonitorError> {
        let _span = self.tracer.span("topology.path", "traverse");
        Ok(path::find_path(&self.topology, from, to)?)
    }

    /// Computes the bandwidth of the path between two hosts from the
    /// latest rates.
    pub fn path_bandwidth(&self, from: NodeId, to: NodeId) -> Result<PathBandwidth, MonitorError> {
        let p = self.path(from, to)?;
        self.path_bandwidth_of(&p)
    }

    /// Computes the bandwidth of a precomputed path.
    pub fn path_bandwidth_of(&self, p: &CommPath) -> Result<PathBandwidth, MonitorError> {
        let mut span = self.tracer.span("topology.path", "bandwidth");
        let bw = bandwidth::path_bandwidth(&self.topology, p, &self.rates)?;
        if span.is_recording() {
            span.set_attr("connections", bw.connections.len());
            span.set_attr("used_bps", bw.used_bps);
            span.set_attr("available_bps", bw.available_bps);
        }
        Ok(bw)
    }
}

impl RateProvider for NetworkMonitor {
    fn rates(&self, node: NodeId, ifix: IfIx) -> Option<IfRates> {
        self.rates.rates(node, ifix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::IfSample;
    use netqos_topology::NodeKind;

    fn topo() -> (NetworkTopology, NodeId, NodeId) {
        let mut t = NetworkTopology::new();
        let a = t.add_node("A", NodeKind::Host).unwrap();
        t.add_interface(a, "eth0", 100_000_000).unwrap();
        t.set_snmp(a, "public").unwrap();
        let b = t.add_node("B", NodeKind::Host).unwrap();
        t.add_interface(b, "eth0", 100_000_000).unwrap();
        t.set_snmp(b, "public").unwrap();
        t.connect((a, IfIx(0)), (b, IfIx(0))).unwrap();
        (t, a, b)
    }

    fn snap(uptime: u32, in_oct: u32, out_oct: u32) -> DeviceSnapshot {
        DeviceSnapshot {
            uptime_ticks: uptime,
            interfaces: vec![IfSample {
                if_index: 1,
                descr: "eth0".into(),
                speed_bps: 100_000_000,
                in_octets: in_oct,
                out_octets: out_oct,
                in_ucast_pkts: 0,
                out_nucast_pkts: 0,
            }],
        }
    }

    #[test]
    fn first_poll_is_baseline_only() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        assert!(!m.ingest(a, snap(100, 0, 0)).unwrap());
        assert!(m.if_rates(a, IfIx(0)).is_none());
    }

    #[test]
    fn second_poll_produces_rates() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(100, 0, 0)).unwrap();
        // +1 s, +125000 octets in = 1 Mb/s.
        assert!(m.ingest(a, snap(200, 125_000, 12_500)).unwrap());
        let r = m.if_rates(a, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_000_000);
        assert_eq!(r.out_bps, 100_000);
    }

    #[test]
    fn counter_wrap_handled() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(0, u32::MAX - 100, 0)).unwrap();
        m.ingest(a, snap(100, 124_899, 0)).unwrap(); // +125000 across wrap
        let r = m.if_rates(a, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_000_000);
    }

    #[test]
    fn uptime_wrap_handled() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(u32::MAX - 49, 0, 0)).unwrap();
        m.ingest(a, snap(50, 125_000, 0)).unwrap(); // 100-tick interval
        let r = m.if_rates(a, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_000_000);
    }

    #[test]
    fn reboot_marks_sample_stale_and_rebaselines() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(500_000, 9_000_000, 0)).unwrap();
        m.ingest(a, snap(500_100, 9_125_000, 0)).unwrap();
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 1_000_000);
        // The device reboots: uptime restarts near zero, counters reset.
        // No rate is formed from the garbage deltas...
        assert!(!m.ingest(a, snap(10, 2_000, 0)).unwrap());
        assert_eq!(m.uptime_resets(), 1);
        // ...and the stale pre-reboot rate is what remains until fresh
        // post-reboot polls re-establish a baseline.
        assert!(m.ingest(a, snap(110, 252_000, 0)).unwrap());
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 2_000_000);
        assert_eq!(m.uptime_resets(), 1);
    }

    #[test]
    fn counter_wraps_are_counted() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(0, u32::MAX - 100, u32::MAX - 50)).unwrap();
        assert_eq!(m.counter_wraps(), 0);
        // Both octet counters roll over in one interval.
        m.ingest(a, snap(100, 124_899, 12_449)).unwrap();
        assert_eq!(m.counter_wraps(), 2);
        let r = m.if_rates(a, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_000_000);
        assert_eq!(r.out_bps, 100_000);
        // A normal interval adds no wraps.
        m.ingest(a, snap(200, 249_899, 24_949)).unwrap();
        assert_eq!(m.counter_wraps(), 2);
    }

    #[test]
    fn ingest_emits_spans_when_traced() {
        use netqos_telemetry::Tracer;
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        let tracer = Tracer::new();
        m.set_tracer(tracer.clone());
        tracer.begin_cycle();
        m.ingest(a, snap(0, 0, 0)).unwrap();
        m.ingest(a, snap(100, 125_000, 0)).unwrap();
        let spans = tracer.end_cycle();
        let ingests: Vec<_> = spans.iter().filter(|s| s.name == "ingest").collect();
        assert_eq!(ingests.len(), 2);
        assert!(ingests[1]
            .attrs
            .iter()
            .any(|(k, v)| k == "interval_ticks" && *v == 100u64.into()));
    }

    #[test]
    fn same_tick_repoll_no_rate() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(100, 0, 0)).unwrap();
        assert!(!m.ingest(a, snap(100, 99999, 0)).unwrap());
    }

    #[test]
    fn path_bandwidth_from_ingested_rates() {
        let (t, a, b) = topo();
        let mut m = NetworkMonitor::new(t);
        for (node, io) in [(a, (0, 125_000)), (b, (125_000, 0))] {
            m.ingest(node, snap(0, 0, 0)).unwrap();
            m.ingest(node, snap(100, io.0, io.1)).unwrap();
        }
        let bw = m.path_bandwidth(a, b).unwrap();
        // One-directional flow: endpoint total in+out = 1 Mb/s.
        assert_eq!(bw.used_bps, 1_000_000);
        assert_eq!(bw.available_bps, 99_000_000);
    }

    #[test]
    fn interface_matching_by_descr_overrides_position() {
        // The agent reports interfaces in a different order than the spec.
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        let s = DeviceSnapshot {
            uptime_ticks: 0,
            interfaces: vec![IfSample {
                if_index: 7, // mismatched index, but descr says eth0
                descr: "eth0".into(),
                speed_bps: 100_000_000,
                in_octets: 0,
                out_octets: 0,
                in_ucast_pkts: 0,
                out_nucast_pkts: 0,
            }],
        };
        m.ingest(a, s.clone()).unwrap();
        let mut s2 = s;
        s2.uptime_ticks = 100;
        s2.interfaces[0].in_octets = 125_000;
        m.ingest(a, s2).unwrap();
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 1_000_000);
    }

    #[test]
    fn nominal_period_strategy_ignores_uptime() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.set_interval_strategy(IntervalStrategy::NominalPeriod(100));
        m.ingest(a, snap(0, 0, 0)).unwrap();
        // Agent answered 1.5 s late (uptime says 150 ticks), but the
        // nominal strategy divides by the configured 100 anyway — the
        // rate is overestimated by 50%, which is exactly the failure mode
        // the paper's sysUpTime method avoids.
        m.ingest(a, snap(150, 187_500, 0)).unwrap();
        let r = m.if_rates(a, IfIx(0)).unwrap();
        assert_eq!(r.in_bps, 1_500_000);

        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.ingest(a, snap(0, 0, 0)).unwrap();
        m.ingest(a, snap(150, 187_500, 0)).unwrap();
        // SysUpTime strategy recovers the true 1 Mb/s.
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 1_000_000);
    }

    #[test]
    fn ewma_smoothing_damps_spikes() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.set_smoothing(Smoothing { alpha: 0.5 });
        m.ingest(a, snap(0, 0, 0)).unwrap();
        m.ingest(a, snap(100, 125_000, 0)).unwrap(); // raw 1 Mb/s
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 1_000_000);
        // Raw spike to 3 Mb/s; smoothed to 2 Mb/s.
        m.ingest(a, snap(200, 500_000, 0)).unwrap();
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 2_000_000);
        // Raw back to 1 Mb/s; smoothed to 1.5 Mb/s.
        m.ingest(a, snap(300, 625_000, 0)).unwrap();
        assert_eq!(m.if_rates(a, IfIx(0)).unwrap().in_bps, 1_500_000);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        let (t, _, _) = topo();
        let mut m = NetworkMonitor::new(t);
        m.set_smoothing(Smoothing { alpha: 0.0 });
    }

    #[test]
    fn unknown_interface_rejected() {
        let (t, a, _) = topo();
        let mut m = NetworkMonitor::new(t);
        let mk = |uptime| DeviceSnapshot {
            uptime_ticks: uptime,
            interfaces: vec![IfSample {
                if_index: 9,
                descr: "mystery9".into(),
                speed_bps: 1,
                in_octets: 0,
                out_octets: 0,
                in_ucast_pkts: 0,
                out_nucast_pkts: 0,
            }],
        };
        m.ingest(a, mk(0)).unwrap();
        let err = m.ingest(a, mk(100)).unwrap_err();
        assert!(matches!(err, MonitorError::UnknownInterface { .. }));
    }
}
