//! The high-level monitoring service: everything the paper's monitoring
//! *program* did, behind one API.
//!
//! [`MonitoringService`] owns the simulated network, the monitor state,
//! the QoS evaluator, and a time-series recorder. Each [`tick`] advances
//! simulated time by one poll period, polls every agent, re-evaluates the
//! qospath requirements, records samples, and — when violations begin or
//! clear — emits SNMPv1 enterprise traps (kept in an outbox, and
//! optionally transmitted through the simulated network to a management
//! station).
//!
//! [`tick`]: MonitoringService::tick

use crate::error::MonitorError;
use crate::live::{unix_now_ns, LiveStatus};
use crate::monitor::NetworkMonitor;
use crate::qos::{self, QosEvent, QosMonitor};
use crate::report::{PathSample, SeriesRecorder};
use crate::simnet::{SimNetwork, SimNetworkOptions};
use crate::telemetry::MonitorTelemetry;
use bytes::Bytes;
use netqos_sim::time::{SimDuration, SimTime};
use netqos_sim::Ipv4Addr;
use netqos_telemetry::{
    builtin_alert_rules, fields, report_flush, to_otlp, transitions_to_json, AdaptiveConfig,
    AlertContext, AlertEngine, AlertRule, AlertScope, CycleTrace, EventSink, FlightRecorder,
    FlushReport, Level, LtsConfig, LtsCounters, LtsReader, LtsSource, LtsStore, OtlpPusher,
    PointValue, ProfileHub, PushConfig, PushCounters, QuantileBaseline, QueryEngine, RecordRule,
    RecordingCounters, Registry, RegistrySampler, RetentionPolicy, SampleAnnotation, SampleConfig,
    SampleDecision, Sampler, SnapshotPaths, Tracer, WebhookNotifier, DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_PROFILE_WINDOW, DEFAULT_WINDOW,
};
use netqos_topology::bandwidth::BandwidthRule;
use netqos_topology::path::CommPath;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// SNMP trap port.
pub const TRAP_PORT: u16 = 162;

/// Baseline samples required before anomaly warnings can fire — a young
/// baseline ranks everything at the extremes.
pub const MIN_BASELINE_HISTORY: u64 = 16;

/// Percentile rank above which a bandwidth sample is "anomalous vs.
/// baseline" (a pre-violation warning, not a QoS violation).
pub const ANOMALY_RANK: f64 = 0.99;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Poll period.
    pub poll_period: SimDuration,
    /// Community stamped on emitted traps.
    pub trap_community: String,
    /// If set, traps are also transmitted through the simulated network
    /// to this address's UDP port 162 (a management station).
    pub trap_destination: Option<Ipv4Addr>,
    /// Maximum traps kept in the outbox; when full, the oldest trap is
    /// evicted (and counted as dropped in telemetry).
    pub trap_outbox_capacity: usize,
    /// Cycle traces kept in the flight-recorder ring.
    pub flight_capacity: usize,
    /// If set, the flight recorder is snapshotted to this directory
    /// (JSONL + Chrome `trace_event` JSON) whenever a QoS violation
    /// begins.
    pub flight_dir: Option<PathBuf>,
    /// Samples per window of the per-connection bandwidth baselines.
    pub baseline_window: u64,
    /// Cap on on-disk flight snapshots (count and bytes), enforced after
    /// every snapshot write. The newest snapshot is never deleted.
    pub retention: RetentionPolicy,
    /// Head/tail trace sampling thresholds. The default keeps every
    /// cycle (the pre-sampling behaviour).
    pub sample: SampleConfig,
    /// If set, the sampler's head stride adapts to flight-ring
    /// pressure: a window keeping too many cycles doubles `head_every`,
    /// a quiet one halves it back toward the configured base rate.
    pub adaptive_sample: Option<AdaptiveConfig>,
    /// If set, per-path bandwidth baselines are restored from this file
    /// at startup and saved back periodically and via
    /// [`MonitoringService::persist_baselines`].
    pub baseline_state: Option<PathBuf>,
    /// Alert rules evaluated once per tick. Defaults to the built-in
    /// set; user rules appended after a builtin with the same name
    /// override it.
    pub alert_rules: Vec<AlertRule>,
    /// Delta temporality for OTLP push: deliver only cycles newer than
    /// the last acknowledged push instead of the whole flight ring, so
    /// collectors without trace-id dedupe stop double-counting.
    pub otlp_push_delta: bool,
    /// If set, a long-term stats store under this directory samples the
    /// registry and per-path QoS signals every tick at 1s resolution
    /// (downsampled on flush to 1m and 1h).
    pub lts_dir: Option<PathBuf>,
    /// Retention for the long-term store (age and size caps, mirroring
    /// the flight recorder's [`RetentionPolicy`] shape).
    pub lts_retention: netqos_telemetry::LtsRetention,
    /// Ticks between automatic baseline saves (when `baseline_state` is
    /// set) — also the long-term store's flush cadence (when `lts_dir`
    /// is set). Zero behaves as one.
    pub baseline_save_ticks: u64,
    /// Compact the long-term store on every save tick instead of only
    /// flushing it: open tails fold into one sealed segment per
    /// series/resolution, so read amplification stays flat on long
    /// runs. Queries are unaffected — readers canonicalize, so results
    /// are byte-identical across a compaction.
    pub lts_compact: bool,
    /// Recording rules evaluated against the long-term store on every
    /// save tick (after the flush, so each pass sees its own tick's
    /// data). Results append back as first-class derived gauge series.
    /// Requires `lts_dir`.
    pub record_rules: Vec<RecordRule>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            poll_period: SimDuration::from_secs(1),
            trap_community: "public".to_owned(),
            trap_destination: None,
            trap_outbox_capacity: 256,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_dir: None,
            baseline_window: DEFAULT_WINDOW,
            retention: RetentionPolicy::default(),
            sample: SampleConfig::keep_all(),
            adaptive_sample: None,
            baseline_state: None,
            alert_rules: builtin_alert_rules(),
            otlp_push_delta: false,
            lts_dir: None,
            lts_retention: netqos_telemetry::LtsRetention::default(),
            baseline_save_ticks: 60,
            lts_compact: false,
            record_rules: Vec::new(),
        }
    }
}

/// The assembled monitoring program.
pub struct MonitoringService {
    net: SimNetwork,
    monitor: NetworkMonitor,
    qos: QosMonitor,
    recorder: SeriesRecorder,
    paths: Vec<(String, CommPath)>,
    config: ServiceConfig,
    start: SimTime,
    traps: Vec<Vec<u8>>,
    telemetry: MonitorTelemetry,
    events: Arc<EventSink>,
    tracer: Tracer,
    flight: FlightRecorder,
    /// Rolling tick-phase profile aggregated from the tracer's spans
    /// (populated only while tracing is on; serves `GET /profile`).
    profile: Arc<ProfileHub>,
    /// Used-bandwidth baseline per qospath (the bottleneck sample the
    /// recorder also tracks), so each tick can be ranked against recent
    /// history.
    path_baselines: HashMap<String, QuantileBaseline>,
    /// Snapshots written this session (newest last).
    snapshots: Vec<SnapshotPaths>,
    /// Wall-clock nanoseconds of the tracer's origin: added to monotonic
    /// span offsets to place traces on the Unix timeline (OTLP export).
    epoch_unix_ns: u64,
    /// Head/tail trace sampling state.
    sampler: Sampler,
    /// Status shared with HTTP endpoint threads.
    live: Arc<LiveStatus>,
    /// Push-based OTLP delivery of flight snapshots at violation time.
    pusher: Option<Arc<OtlpPusher>>,
    /// Why restoring `baseline_state` failed, if it did (the service
    /// starts cold rather than refusing to run).
    baseline_load_warning: Option<String>,
    /// Per-tick alert rule evaluation (pending/firing/resolved).
    alerts: AlertEngine,
    /// Webhook delivery of alert transition batches.
    webhook: Option<Arc<WebhookNotifier>>,
    /// Per-qospath demand from the spec: `(min_available_bps,
    /// max_utilization)` — the thresholds alert signals are derived
    /// from.
    path_rules: HashMap<String, (Option<u64>, Option<f64>)>,
    /// First flight-ring sequence number not yet delivered by OTLP push
    /// (the delta-temporality cursor).
    next_push_seq: u64,
    /// Wall-clock anchor for `netqos_monitor_uptime_seconds`.
    wall_start: Instant,
    /// Long-term stats store (when `lts_dir` is set) and the delta
    /// sampler that feeds it from the registry each tick.
    lts: Option<LtsStore>,
    lts_sampler: RegistrySampler,
    /// Why opening `lts_dir` failed, if it did (the service runs without
    /// durable stats rather than refusing to start).
    lts_open_warning: Option<String>,
    /// Self-metrics for the recording-rule engine (registered only when
    /// rules are configured).
    record_counters: RecordingCounters,
}

impl MonitoringService {
    /// Builds the service from specification source text.
    pub fn from_spec(
        spec_src: &str,
        net_options: SimNetworkOptions,
        config: ServiceConfig,
    ) -> Result<Self, MonitorError> {
        let model = netqos_spec::parse_and_validate(spec_src)
            .map_err(|e| MonitorError::Topology(e.to_string()))?;
        Self::from_model(model, net_options, config)
    }

    /// Builds the service from an already-validated model.
    pub fn from_model(
        model: netqos_spec::SpecModel,
        net_options: SimNetworkOptions,
        config: ServiceConfig,
    ) -> Result<Self, MonitorError> {
        Self::from_model_with(model, net_options, config, |_, _, _| {})
    }

    /// Like [`MonitoringService::from_model`], with a hook to install
    /// extra apps (load generators, custom services) before the network
    /// is finalized — same signature as [`SimNetwork::from_model_with`].
    pub fn from_model_with<F>(
        model: netqos_spec::SpecModel,
        net_options: SimNetworkOptions,
        config: ServiceConfig,
        extra: F,
    ) -> Result<Self, MonitorError>
    where
        F: FnOnce(
            &mut netqos_sim::builder::LanBuilder,
            &std::collections::HashMap<netqos_topology::NodeId, netqos_sim::DeviceId>,
            &netqos_spec::SpecModel,
        ),
    {
        let topology = model.topology.clone();
        let qos_specs = model.qos_paths.clone();
        let mut net_options = net_options;
        // Service and poll runtime share one registry, so `registry()`
        // exposes the whole pipeline's metrics in a single snapshot.
        if net_options.registry.is_none() {
            net_options.registry = Some(Registry::new());
        }
        let net = SimNetwork::from_model_with(model, net_options, extra)?;
        let monitor = NetworkMonitor::new(topology);
        let qos = QosMonitor::new(&monitor, &qos_specs)?;
        let mut paths = Vec::with_capacity(qos_specs.len());
        for q in &qos_specs {
            paths.push((q.name.clone(), monitor.path(q.from, q.to)?));
        }
        let names: Vec<&str> = paths.iter().map(|(n, _)| n.as_str()).collect();
        let recorder = SeriesRecorder::new(&names);
        let start = net.lan.now();
        let telemetry = net.telemetry().clone();
        // One tracer, shared by every pipeline stage so their spans land
        // in the same per-tick cycle buffer and nest causally. Disabled
        // until `set_tracing(true)`: each stage then pays one relaxed
        // atomic load per span site.
        let tracer = Tracer::disabled();
        let mut net = net;
        net.set_tracer(tracer.clone());
        let mut monitor = monitor;
        monitor.set_tracer(tracer.clone());
        monitor.set_health_counters(
            telemetry.uptime_resets.clone(),
            telemetry.counter_wraps.clone(),
        );
        let flight = FlightRecorder::new(config.flight_capacity);
        // Anchor the tracer's monotonic origin on the Unix timeline once;
        // every cycle carries this epoch so OTLP timestamps are absolute.
        let epoch_unix_ns = unix_now_ns().saturating_sub(tracer.now_ns());
        let sampler = Sampler::new(config.sample);
        // Restore persisted baselines (if configured and present); a
        // missing or corrupt state file degrades to a cold start.
        let mut path_baselines = HashMap::new();
        let mut baseline_load_warning = None;
        if let Some(state_path) = &config.baseline_state {
            if state_path.exists() {
                match netqos_telemetry::load_baselines(state_path) {
                    Ok(loaded) => path_baselines.extend(loaded),
                    Err(e) => baseline_load_warning = Some(e),
                }
            }
        }
        let path_rules = qos_specs
            .iter()
            .map(|q| (q.name.clone(), (q.min_available_bps, q.max_utilization)))
            .collect();
        let alerts = AlertEngine::new(config.alert_rules.clone());
        // Open the long-term store (if configured); its own health
        // counters land in the shared registry, so the store samples the
        // cost of its existence. Failure degrades to a stats-less run.
        let mut lts = None;
        let mut lts_open_warning = None;
        if let Some(dir) = &config.lts_dir {
            let lts_config = LtsConfig {
                retention: config.lts_retention,
                ..LtsConfig::default()
            };
            let counters = LtsCounters::register_in(telemetry.registry());
            match LtsStore::open(dir, lts_config, counters) {
                Ok(store) => lts = Some(store),
                Err(e) => {
                    lts_open_warning =
                        Some(format!("lts store at {} unavailable: {e}", dir.display()));
                }
            }
        }
        let record_counters = if config.record_rules.is_empty() {
            RecordingCounters::detached()
        } else {
            RecordingCounters::register_in(telemetry.registry())
        };
        let profile =
            ProfileHub::with_registry(DEFAULT_PROFILE_WINDOW, telemetry.registry().clone());
        Ok(MonitoringService {
            net,
            monitor,
            qos,
            recorder,
            paths,
            config,
            start,
            traps: Vec::new(),
            telemetry,
            events: Arc::new(EventSink::null()),
            tracer,
            flight,
            profile,
            path_baselines,
            snapshots: Vec::new(),
            epoch_unix_ns,
            sampler,
            live: LiveStatus::new(),
            pusher: None,
            baseline_load_warning,
            alerts,
            webhook: None,
            path_rules,
            next_push_seq: 0,
            wall_start: Instant::now(),
            lts,
            lts_sampler: RegistrySampler::new(),
            lts_open_warning,
            record_counters,
        })
    }

    /// The registry holding this service's pipeline metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        self.telemetry.registry()
    }

    /// The service's telemetry handles.
    pub fn telemetry(&self) -> &MonitorTelemetry {
        &self.telemetry
    }

    /// Routes structured events (ticks, violations, trap drops) to `sink`.
    pub fn set_event_sink(&mut self, sink: Arc<EventSink>) {
        self.events = sink;
    }

    /// The current event sink.
    pub fn event_sink(&self) -> &Arc<EventSink> {
        &self.events
    }

    /// Turns causal span recording on or off. Costs nothing measurable
    /// when off (one relaxed atomic load per instrumented site).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// The pipeline-wide tracer (fork it for worker threads).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The flight-recorder ring of recent cycle traces.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The rolling tick-phase profile (fed from the tracer's spans while
    /// tracing is on; share it with the export plane for `/profile`).
    pub fn profile(&self) -> &Arc<ProfileHub> {
        &self.profile
    }

    /// Flight-recorder snapshots written to disk so far (newest last).
    pub fn snapshots(&self) -> &[SnapshotPaths] {
        &self.snapshots
    }

    /// The used-bandwidth baseline for a qospath, if any samples have
    /// been recorded.
    pub fn path_baseline(&self, path_name: &str) -> Option<&QuantileBaseline> {
        self.path_baselines.get(path_name)
    }

    /// The trace sampler (decision counters for tests and status).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Starts a background OTLP pusher delivering the flight snapshot
    /// whenever a QoS violation begins. Delivery counters land in this
    /// service's registry (`netqos_monitor_otlp_*`). Implies nothing
    /// about tracing — enable it too, or the snapshots will be empty.
    pub fn enable_otlp_push(&mut self, config: PushConfig) -> Arc<OtlpPusher> {
        let counters = PushCounters {
            pushed: self.telemetry.otlp_pushed.clone(),
            retries: self.telemetry.otlp_push_retries.clone(),
            dropped: self.telemetry.otlp_push_dropped.clone(),
        };
        let pusher = Arc::new(OtlpPusher::start(config, counters));
        self.pusher = Some(pusher.clone());
        pusher
    }

    /// The OTLP pusher, when push delivery is enabled.
    pub fn otlp_pusher(&self) -> Option<&Arc<OtlpPusher>> {
        self.pusher.as_ref()
    }

    /// Starts a background webhook notifier: every tick with alert
    /// transitions POSTs one JSON batch to the configured endpoint.
    /// Delivery counters land in this service's registry
    /// (`netqos_alert_webhook_*`).
    pub fn enable_alert_webhook(&mut self, config: PushConfig) -> Arc<WebhookNotifier> {
        let counters = PushCounters {
            pushed: self.telemetry.alert_webhook_delivered.clone(),
            retries: self.telemetry.alert_webhook_retries.clone(),
            dropped: self.telemetry.alert_webhook_dropped.clone(),
        };
        let hook = Arc::new(WebhookNotifier::start(config, counters));
        self.webhook = Some(hook.clone());
        hook
    }

    /// The webhook notifier, when transition delivery is enabled.
    pub fn alert_webhook(&self) -> Option<&Arc<WebhookNotifier>> {
        self.webhook.as_ref()
    }

    /// The alert engine's current state (rules, active alerts, history).
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// Cycles the OTLP pusher still owes the collector, and the cursor
    /// value to store once they are accepted. Full temporality returns
    /// the whole ring every time; delta temporality only what landed
    /// after the last accepted push.
    fn pending_push_cycles(&self) -> (Vec<CycleTrace>, u64) {
        let snapshot = self.flight.snapshot();
        let cycles: Vec<CycleTrace> = if self.config.otlp_push_delta {
            snapshot
                .into_iter()
                .filter(|c| c.seq >= self.next_push_seq)
                .collect()
        } else {
            snapshot
        };
        let next = cycles
            .iter()
            .map(|c| c.seq + 1)
            .max()
            .unwrap_or(self.next_push_seq);
        (cycles, next)
    }

    /// Pushes the cycles the collector has not seen yet (the whole ring
    /// unless delta temporality already delivered a prefix) and returns
    /// the number of cycles enqueued. `None` when push is disabled,
    /// nothing is pending, or the queue is full.
    pub fn flush_otlp_push(&mut self) -> Option<usize> {
        let pusher = self.pusher.clone()?;
        let (cycles, next_seq) = self.pending_push_cycles();
        if cycles.is_empty() {
            return None;
        }
        if pusher.enqueue(to_otlp(&cycles)) {
            self.next_push_seq = next_seq;
            Some(cycles.len())
        } else {
            None
        }
    }

    /// The status handle the HTTP endpoints read; share it with
    /// [`crate::live::build_router`] to serve `/healthz` and `/snapshot`.
    pub fn live(&self) -> &Arc<LiveStatus> {
        &self.live
    }

    /// Why restoring `baseline_state` failed at startup, if it did.
    pub fn baseline_load_warning(&self) -> Option<&str> {
        self.baseline_load_warning.as_deref()
    }

    /// Number of baselines restored from `baseline_state` at startup.
    pub fn restored_baselines(&self) -> usize {
        self.path_baselines.len()
    }

    /// Why opening `lts_dir` failed at startup, if it did.
    pub fn lts_open_warning(&self) -> Option<&str> {
        self.lts_open_warning.as_deref()
    }

    /// Whether a long-term store is attached and healthy.
    pub fn lts_enabled(&self) -> bool {
        self.lts.is_some()
    }

    /// Flushes the long-term store: buffered points are written, completed
    /// `1m`/`1h` windows fold, oversized tails seal, and retention runs —
    /// with one JSONL event per deletion and per recovery warning.
    /// Returns `None` when no store is attached or the flush failed (the
    /// failure is reported on the event sink).
    pub fn flush_lts(&mut self) -> Option<FlushReport> {
        let store = self.lts.as_mut()?;
        match store.flush() {
            Ok(report) => {
                let warnings = store.take_warnings();
                report_flush(
                    &self.events,
                    &self.telemetry.retention_deleted,
                    &report,
                    &warnings,
                );
                Some(report)
            }
            Err(e) => {
                self.events.emit(
                    Level::Warn,
                    "monitor.lts",
                    "flush_failed",
                    fields!["error" => e.to_string()],
                );
                None
            }
        }
    }

    /// Compacts the long-term store in place: a flush, then every
    /// series/resolution rewritten as one sealed segment. Runs between
    /// ticks on the service thread, so no query ever observes a
    /// half-compacted store through this process — and readers
    /// canonicalize anyway, so results are byte-identical across it.
    /// Returns `None` when no store is attached or compaction failed
    /// (the failure is reported on the event sink).
    pub fn compact_lts(&mut self) -> Option<netqos_telemetry::CompactReport> {
        self.flush_lts()?;
        let store = self.lts.as_mut()?;
        match store.compact() {
            Ok(report) => {
                self.events.emit(
                    Level::Info,
                    "monitor.lts",
                    "compacted",
                    fields![
                        "segments_before" => report.segments_before,
                        "segments_after" => report.segments_after,
                        "bytes_before" => report.bytes_before,
                        "bytes_after" => report.bytes_after,
                    ],
                );
                Some(report)
            }
            Err(e) => {
                self.events.emit(
                    Level::Warn,
                    "monitor.lts",
                    "compact_failed",
                    fields!["error" => e.to_string()],
                );
                None
            }
        }
    }

    /// Evaluates the configured recording rules against the long-term
    /// store and appends the results as derived gauge series, then
    /// flushes so the derived points are durable and queryable
    /// immediately. Runs on the save-tick cadence, after the regular
    /// flush, so each pass sees the data of its own tick. The pass is
    /// traced (`record.rules/evaluate`), counted
    /// (`netqos_recording_rules_{evals,failures}_total`), and reported
    /// as a `record_rules` JSONL event with one `record_rule_failed`
    /// warning per broken rule. A failed rule never stops the rest.
    pub fn run_record_rules(&mut self) -> Option<netqos_telemetry::RecordReport> {
        if self.config.record_rules.is_empty() {
            return None;
        }
        let store = self.lts.as_mut()?;
        let reader = LtsReader::open(store.dir());
        // Evaluate at the newest stored instant, not the wall clock:
        // derived points then line up with the data they summarize.
        let t = reader.newest_t()?;
        let engine = QueryEngine::new().with_source(None, Arc::new(LtsSource::new(reader)));
        let mut span = self.tracer.span("record.rules", "evaluate");
        let report = netqos_telemetry::evaluate_record_rules(
            &self.config.record_rules,
            &engine,
            store,
            t,
            &self.record_counters,
        );
        span.set_attr("rules", report.evals);
        span.set_attr("points", report.points);
        span.set_attr("failures", report.failures);
        drop(span);
        for (rule, error) in &report.errors {
            self.events.emit(
                Level::Warn,
                "monitor.record",
                "record_rule_failed",
                fields!["rule" => rule.as_str(), "error" => error.as_str()],
            );
        }
        self.events.emit(
            Level::Info,
            "monitor.record",
            "record_rules",
            fields![
                "t" => t,
                "rules" => report.evals,
                "points" => report.points,
                "failures" => report.failures,
            ],
        );
        self.flush_lts();
        Some(report)
    }

    /// Saves the per-path baselines to `config.baseline_state` (atomic
    /// write). Returns `Ok(false)` when no state path is configured.
    pub fn persist_baselines(&self) -> std::io::Result<bool> {
        let Some(path) = &self.config.baseline_state else {
            return Ok(false);
        };
        let mut entries: Vec<(&str, &QuantileBaseline)> = self
            .path_baselines
            .iter()
            .map(|(n, b)| (n.as_str(), b))
            .collect();
        entries.sort_by_key(|(n, _)| *n);
        netqos_telemetry::save_baselines(path, entries)?;
        Ok(true)
    }

    /// Renders the `/snapshot` JSON digest for the current tick.
    fn status_json(
        &self,
        t_s: f64,
        path_status: &[(String, u64, u64, f64, u64, u64, u64)],
    ) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"t_s\":{t_s:.3},\"ticks\":{}",
            self.telemetry.ticks.get()
        );
        out.push_str(",\"paths\":[");
        for (i, (name, used, avail, rank, count, p50, p99)) in path_status.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{name:?},\"used_bps\":{used},\"available_bps\":{avail},\
                 \"rank\":{rank:.4},\"baseline\":{{\"count\":{count},\"p50\":{p50},\
                 \"p99\":{p99}}}}}"
            );
        }
        out.push_str("],\"violated\":[");
        for (i, name) in self.qos.violated_paths().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{name:?}");
        }
        let _ = write!(
            out,
            "],\"flight\":{{\"cycles\":{},\"capacity\":{},\"snapshots\":{}}}",
            self.flight.len(),
            self.config.flight_capacity,
            self.snapshots.len(),
        );
        let _ = write!(
            out,
            ",\"sampler\":{{\"seen\":{},\"kept_head\":{},\"kept_tail\":{},\"dropped\":{},\
             \"head_every\":{}}}",
            self.sampler.cycles_seen(),
            self.sampler.kept_head(),
            self.sampler.kept_tail(),
            self.sampler.dropped(),
            self.sampler.head_every().max(1),
        );
        let _ = write!(
            out,
            ",\"alerts\":{{\"pending\":{},\"firing\":{}}}}}",
            self.alerts.pending_count(),
            self.alerts.firing_count(),
        );
        out
    }

    /// Advances one poll period: runs the network, polls every agent,
    /// records samples, evaluates QoS, and emits traps for state changes.
    /// Returns the QoS events of this tick.
    pub fn tick(&mut self) -> Result<Vec<QosEvent>, MonitorError> {
        let wall_timer = self.telemetry.tick_ns.start_timer();
        let trace_id = self.tracer.begin_cycle();
        let cycle_start_ns = self.tracer.now_ns();
        let cycle_span = self.tracer.span("monitor", "cycle");
        let next = self.net.lan.now() + self.config.poll_period;
        self.net.run_until(next);
        let polled = self.net.poll_round(&mut self.monitor)?;

        let t_s = self.net.lan.now().duration_since(self.start).as_secs_f64();
        let mut samples = Vec::new();
        let mut cycle_events = Vec::new();
        let mut alert_scopes = Vec::with_capacity(self.paths.len());
        let mut path_status = Vec::with_capacity(self.paths.len());
        let mut max_rank = 0.0f64;
        let window = self.config.baseline_window;
        let tracing = self.tracer.is_enabled();
        for (name, path) in &self.paths {
            if let Ok(bw) = self.monitor.path_bandwidth_of(path) {
                self.recorder.push(name, PathSample::at(t_s, &bw));
                // Rank against history *before* folding the sample in, so
                // the sample cannot vouch for itself.
                let baseline = self
                    .path_baselines
                    .entry(name.clone())
                    .or_insert_with(|| QuantileBaseline::new(window));
                let rank = baseline.rank(bw.used_bps);
                let history = baseline.count();
                let p50 = baseline.quantile(0.5);
                let p99 = baseline.quantile(0.99);
                baseline.record(bw.used_bps);
                path_status.push((
                    name.clone(),
                    bw.used_bps,
                    bw.available_bps,
                    rank,
                    history + 1,
                    p50,
                    p99,
                ));
                // A mature baseline's rank feeds the sampler's tail
                // trigger; a young one ranks everything at the extremes.
                if history >= MIN_BASELINE_HISTORY {
                    max_rank = max_rank.max(rank);
                }
                if history >= MIN_BASELINE_HISTORY && rank > ANOMALY_RANK {
                    // Pre-violation warning: usage is extreme for *this*
                    // connection even if no QoS rule has tripped yet.
                    self.telemetry.anomaly_warnings.inc();
                    self.events.emit(
                        Level::Warn,
                        "monitor.baseline",
                        "anomalous",
                        fields![
                            "path" => name.as_str(),
                            "used_bps" => bw.used_bps,
                            "rank" => rank,
                            "baseline_p99" => p99,
                        ],
                    );
                    cycle_events.push(format!("baseline_anomaly {name}"));
                }
                if tracing {
                    samples.push(SampleAnnotation {
                        path: name.clone(),
                        connection: self.monitor.topology().describe_connection(bw.bottleneck),
                        used_bps: bw.used_bps,
                        available_bps: bw.available_bps,
                        used_rank: rank,
                        baseline_p50: p50,
                        baseline_p99: p99,
                    });
                }
                // One alert scope per qospath: the signals user rules can
                // test, plus the bottleneck diagnosis (the paper's §3
                // model names the worst connection and whether a shared
                // medium or a switched link is the constraint) carried as
                // annotations onto any alert raised here.
                let mut scope = AlertScope::labelled("path", name);
                scope.set("path_used_bps", bw.used_bps as f64);
                scope.set("path_available_bps", bw.available_bps as f64);
                scope.set("path_rank", rank);
                scope.set("path_baseline_p50_bps", p50 as f64);
                scope.set("path_baseline_p99_bps", p99 as f64);
                let worst_util = bw
                    .connections
                    .iter()
                    .map(|c| c.utilization())
                    .fold(0.0f64, f64::max);
                scope.set("path_utilization", worst_util);
                if let Some((min_avail, max_util)) = self.path_rules.get(name) {
                    if let Some(min) = min_avail {
                        scope.set("path_min_available_bps", *min as f64);
                        scope.set("path_headroom_bps", bw.available_bps as f64 - *min as f64);
                    }
                    if let Some(limit) = max_util {
                        scope.set("path_max_utilization", *limit);
                    }
                }
                if let Some(cb) = bw.connections.iter().find(|c| c.conn == bw.bottleneck) {
                    scope.annotate(
                        "bottleneck",
                        self.monitor.topology().describe_connection(cb.conn),
                    );
                    scope.annotate(
                        "bottleneck_kind",
                        match cb.rule {
                            BandwidthRule::SharedMedium => "shared_medium",
                            BandwidthRule::PointToPoint => "point_to_point",
                        },
                    );
                    scope.annotate("bottleneck_available_bps", cb.available_bps.to_string());
                    scope.annotate("bottleneck_capacity_bps", cb.capacity_bps.to_string());
                    scope.annotate("bottleneck_utilization", format!("{:.3}", cb.utilization()));
                }
                alert_scopes.push(scope);
            }
        }

        let events = {
            let mut qos_span = self.tracer.span("monitor.qos", "evaluate");
            let events = self.qos.evaluate(&self.monitor);
            qos_span.set_attr("events", events.len());
            events
        };
        if !events.is_empty() {
            let monitor_node = self.net.monitor_node();
            let agent_addr = self
                .net
                .model()
                .addresses
                .get(&monitor_node)
                .and_then(|a| a.parse::<Ipv4Addr>().ok())
                .map(|ip| ip.octets())
                .unwrap_or([0, 0, 0, 0]);
            let uptime = (t_s * 100.0) as u32;
            for event in &events {
                match event {
                    QosEvent::Violated { path_name, .. } => {
                        self.telemetry.qos_violations.inc();
                        cycle_events.push(format!("qos_violation {path_name}"));
                        self.events.emit(
                            Level::Warn,
                            "monitor.qos",
                            "violation",
                            fields!["path" => path_name.as_str(), "t_s" => t_s],
                        );
                    }
                    QosEvent::Cleared { path_name, .. } => {
                        self.telemetry.qos_cleared.inc();
                        cycle_events.push(format!("qos_cleared {path_name}"));
                        self.events.emit(
                            Level::Info,
                            "monitor.qos",
                            "cleared",
                            fields!["path" => path_name.as_str(), "t_s" => t_s],
                        );
                    }
                }
                let bytes =
                    qos::encode_trap(event, &self.config.trap_community, agent_addr, uptime)?;
                if let Some(dst) = self.config.trap_destination {
                    let monitor_dev = self
                        .net
                        .device_of(monitor_node)
                        .ok_or_else(|| MonitorError::Sim("monitor device missing".into()))?;
                    // Trap transmission is fire-and-forget UDP.
                    let _ = self.net.lan.post_udp(
                        monitor_dev,
                        TRAP_PORT,
                        dst,
                        TRAP_PORT,
                        Bytes::from(bytes.clone()),
                    );
                }
                self.telemetry.traps_emitted.inc();
                // Bounded outbox: evict oldest rather than grow forever.
                if self.traps.len() >= self.config.trap_outbox_capacity.max(1) {
                    self.traps.remove(0);
                    self.telemetry.traps_dropped.inc();
                    self.events.emit(
                        Level::Warn,
                        "monitor.traps",
                        "outbox_full",
                        fields!["capacity" => self.config.trap_outbox_capacity],
                    );
                }
                self.traps.push(bytes);
            }
        }
        self.telemetry.ticks.inc();
        self.telemetry
            .trap_outbox_depth
            .set(self.traps.len() as i64);

        // Alert pass: rules see the registry (every self-telemetry
        // counter and gauge) plus one labelled scope per qospath. The
        // evaluation happens inside the traced cycle so transitions land
        // as cycle events and wake the sampler's tail trigger.
        {
            let violated: std::collections::HashSet<&str> =
                self.qos.violated_paths().into_iter().collect();
            for scope in &mut alert_scopes {
                let is_violated = scope
                    .labels
                    .iter()
                    .any(|(k, v)| k == "path" && violated.contains(v.as_str()));
                scope.set("path_violated", if is_violated { 1.0 } else { 0.0 });
            }
            self.telemetry
                .uptime_seconds
                .set(self.wall_start.elapsed().as_secs().min(i64::MAX as u64) as i64);
            let tick_no = self.telemetry.ticks.get();
            let mut ctx = AlertContext::new(tick_no);
            ctx.add_registry(self.telemetry.registry());
            ctx.scopes.append(&mut alert_scopes);
            let transitions = self.alerts.evaluate(&ctx);
            for tr in &transitions {
                match tr.to {
                    "pending" => self.telemetry.alerts_pending_total.inc(),
                    "firing" => self.telemetry.alerts_firing_total.inc(),
                    _ => self.telemetry.alerts_resolved_total.inc(),
                }
                cycle_events.push(format!("alert_{} {}", tr.to, tr.fingerprint));
                let level = if tr.to == "firing" {
                    Level::Warn
                } else {
                    Level::Info
                };
                self.events.emit(
                    level,
                    "monitor.alerts",
                    tr.to,
                    fields![
                        "rule" => tr.rule.as_str(),
                        "fingerprint" => tr.fingerprint.as_str(),
                        "from" => tr.from,
                        "value" => tr.value,
                    ],
                );
            }
            let pending = self.alerts.pending_count();
            let firing = self.alerts.firing_count();
            self.telemetry
                .alerts_pending
                .set(pending.min(i64::MAX as u64) as i64);
            self.telemetry
                .alerts_firing
                .set(firing.min(i64::MAX as u64) as i64);
            if !transitions.is_empty() {
                if let Some(hook) = &self.webhook {
                    hook.enqueue(transitions_to_json("netqos", tick_no, &transitions));
                }
            }
            self.live.record_alerts(
                self.alerts.render_json(),
                pending,
                firing,
                transitions.len() as u64,
            );
        }

        // Long-term stats: one sample per tick at 1s resolution, placed
        // at sim-anchored Unix seconds so a restarted run extends the
        // same series instead of starting a parallel timeline.
        if let Some(store) = self.lts.as_mut() {
            let t_unix = self.epoch_unix_ns / 1_000_000_000 + t_s as u64;
            for (name, used, avail, rank, _count, p50, p99) in &path_status {
                let as_i64 = |v: u64| v.min(i64::MAX as u64) as i64;
                store.append(
                    &format!("netqos_path_used_bps{{path=\"{name}\"}}"),
                    t_unix,
                    PointValue::Gauge(as_i64(*used)),
                );
                store.append(
                    &format!("netqos_path_available_bps{{path=\"{name}\"}}"),
                    t_unix,
                    PointValue::Gauge(as_i64(*avail)),
                );
                store.append(
                    &format!("netqos_path_used_rank_permille{{path=\"{name}\"}}"),
                    t_unix,
                    PointValue::Gauge((rank * 1000.0) as i64),
                );
                store.append(
                    &format!("netqos_path_baseline_p50_bps{{path=\"{name}\"}}"),
                    t_unix,
                    PointValue::Gauge(as_i64(*p50)),
                );
                store.append(
                    &format!("netqos_path_baseline_p99_bps{{path=\"{name}\"}}"),
                    t_unix,
                    PointValue::Gauge(as_i64(*p99)),
                );
            }
            self.lts_sampler
                .sample(self.telemetry.registry(), store, t_unix);
        }
        let save_every = self.config.baseline_save_ticks.max(1);
        let on_save_tick = self.telemetry.ticks.get().is_multiple_of(save_every);
        if self.config.baseline_state.is_some() && on_save_tick {
            if let Err(e) = self.persist_baselines() {
                self.events.emit(
                    Level::Warn,
                    "monitor.baseline",
                    "persist_failed",
                    fields!["error" => e.to_string()],
                );
            }
        }
        if on_save_tick {
            if self.config.lts_compact {
                self.compact_lts();
            } else {
                self.flush_lts();
            }
            self.run_record_rules();
        }
        drop(cycle_span);
        if tracing {
            let cycle_end_ns = self.tracer.now_ns();
            // The sampler decides *after* the cycle completes: tail
            // triggers need its outcome (duration, ranks, QoS events).
            let decision = self.sampler.decide(
                cycle_end_ns.saturating_sub(cycle_start_ns),
                max_rank,
                !cycle_events.is_empty(),
            );
            match decision {
                SampleDecision::Head => self.telemetry.trace_kept_head.inc(),
                SampleDecision::Tail(trigger) => {
                    self.telemetry.trace_kept_tail.inc();
                    self.events.emit(
                        Level::Debug,
                        "monitor.trace",
                        "tail_sampled",
                        fields!["trigger" => trigger],
                    );
                }
                SampleDecision::Drop => self.telemetry.trace_dropped.inc(),
            }
            // Feedback loop: under flight-ring pressure (too many kept
            // cycles per window) the head stride backs off; when the
            // keep rate falls again it relaxes toward the base rate.
            if let Some(policy) = &self.config.adaptive_sample {
                if let Some(next) = self.sampler.adapt(policy) {
                    self.events.emit(
                        Level::Info,
                        "monitor.trace",
                        "head_every_adapted",
                        fields!["head_every" => next],
                    );
                }
            }
            self.telemetry
                .trace_head_every
                .set(self.sampler.head_every().min(i64::MAX as u64) as i64);
            let spans = self.tracer.end_cycle();
            // Every traced cycle feeds the rolling phase profile, even
            // ones the sampler drops from the flight ring — profiling
            // wants the full population, not the kept forensic subset.
            self.profile.record_spans(&spans);
            if decision.keep() {
                let cycle = CycleTrace {
                    seq: 0, // assigned by the recorder
                    trace_id,
                    start_ns: cycle_start_ns,
                    end_ns: cycle_end_ns,
                    epoch_unix_ns: self.epoch_unix_ns,
                    spans,
                    samples,
                    events: cycle_events,
                };
                // Push before snapshotting so the violating cycle itself
                // is part of the forensic record.
                let seq = self.flight.push(cycle);
                let violated = events
                    .iter()
                    .any(|e| matches!(e, QosEvent::Violated { .. }));
                if violated {
                    if let Some(pusher) = self.pusher.clone() {
                        // Push the forensic record to the collector; a
                        // full queue counts a drop instead of blocking
                        // the tick. Under delta temporality only cycles
                        // newer than the last acked push are shipped.
                        let (cycles, next_seq) = self.pending_push_cycles();
                        if !cycles.is_empty() && pusher.enqueue(to_otlp(&cycles)) {
                            self.next_push_seq = next_seq;
                            self.events.emit(
                                Level::Debug,
                                "monitor.flight",
                                "otlp_push_enqueued",
                                fields!["cycles" => cycles.len() as u64],
                            );
                        }
                    }
                    if let Some(dir) = self.config.flight_dir.clone() {
                        match netqos_telemetry::write_snapshot(&dir, seq, &self.flight.snapshot()) {
                            Ok(paths) => {
                                self.telemetry.flight_snapshots.inc();
                                self.events.emit(
                                    Level::Info,
                                    "monitor.flight",
                                    "snapshot",
                                    fields![
                                        "cycles" => self.flight.len(),
                                        "path" => paths.chrome.display().to_string(),
                                    ],
                                );
                                self.snapshots.push(paths);
                            }
                            Err(e) => self.events.emit(
                                Level::Warn,
                                "monitor.flight",
                                "snapshot_failed",
                                fields!["error" => e.to_string()],
                            ),
                        }
                        // Keep the snapshot directory within budget now
                        // that a new snapshot landed.
                        match netqos_telemetry::enforce_retention(&dir, self.config.retention) {
                            Ok(deleted) => {
                                for d in &deleted {
                                    // One event per deleted snapshot so
                                    // reclaimed history is auditable, and
                                    // the cross-plane deletion total the
                                    // LTS retention also feeds.
                                    self.telemetry.flight_retention_deleted.inc();
                                    self.telemetry.retention_deleted.inc();
                                    self.events.emit(
                                        Level::Info,
                                        "monitor.flight",
                                        "retention_delete",
                                        fields![
                                            "tag" => d.tag,
                                            "files" => d.files as u64,
                                            "bytes" => d.bytes,
                                            "reason" => d.reason,
                                        ],
                                    );
                                }
                            }
                            Err(e) => self.events.emit(
                                Level::Warn,
                                "monitor.flight",
                                "retention_failed",
                                fields!["error" => e.to_string()],
                            ),
                        }
                    }
                }
            }
        }

        let wall = wall_timer.stop();
        // Publish this tick to the live endpoints and, periodically, the
        // baselines to their state file.
        let status = self.status_json(t_s, &path_status);
        self.live.record_tick(
            self.epoch_unix_ns.saturating_add(self.tracer.now_ns()),
            status,
        );
        self.events.emit(
            Level::Debug,
            "monitor.tick",
            "tick",
            fields![
                "t_s" => t_s,
                "polled" => polled,
                "events" => events.len(),
                "wall_us" => (wall.as_nanos() / 1_000) as u64,
            ],
        );
        Ok(events)
    }

    /// Runs `n` ticks, collecting all events.
    pub fn run_ticks(&mut self, n: usize) -> Result<Vec<QosEvent>, MonitorError> {
        let mut all = Vec::new();
        for _ in 0..n {
            all.extend(self.tick()?);
        }
        Ok(all)
    }

    /// The monitor state (rates, path bandwidth queries).
    pub fn monitor(&self) -> &NetworkMonitor {
        &self.monitor
    }

    /// The simulated network (to install extra state or read counters).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// The recorded per-path time series.
    pub fn recorder(&self) -> &SeriesRecorder {
        &self.recorder
    }

    /// All traps emitted so far (encoded SNMPv1 messages, newest last).
    pub fn traps(&self) -> &[Vec<u8>] {
        &self.traps
    }

    /// Names of paths currently in violation.
    pub fn violated_paths(&self) -> Vec<&str> {
        self.qos.violated_paths()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        host M { address 10.0.0.1; snmp community "public"; interface eth0 { speed 10Mbps; } }
        host W { address 10.0.0.2; snmp community "public"; interface eth0 { speed 10Mbps; } }
        connection M.eth0 <-> W.eth0;
        qospath mw from M to W { min_available 9Mbps; }
    "#;

    fn idle_service() -> MonitoringService {
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        MonitoringService::from_model(model, options, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn ticks_record_series() {
        let mut svc = idle_service();
        svc.run_ticks(3).unwrap();
        let series = svc.recorder().get("mw").unwrap();
        assert!(!series.samples.is_empty());
        // Idle network: usage is tiny (just SNMP chatter).
        assert!(series.samples.last().unwrap().used_kbytes_per_sec() < 10.0);
        assert!(svc.violated_paths().is_empty());
        assert!(svc.traps().is_empty());
    }

    #[test]
    fn violation_emits_decodable_trap() {
        let mut svc = idle_service();
        svc.run_ticks(2).unwrap();
        // Saturate the 10 Mb/s link directly: 2 MB instantly queued.
        let m = svc.monitor().topology().node_by_name("M").unwrap();
        let m_dev = svc.net_mut().device_of(m).unwrap();
        for _ in 0..40 {
            svc.net_mut()
                .lan
                .post_udp(
                    m_dev,
                    5000,
                    "10.0.0.2".parse().unwrap(),
                    9,
                    vec![0u8; 50_000].into(),
                )
                .unwrap();
        }
        let events = svc.run_ticks(3).unwrap();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, QosEvent::Violated { .. })),
            "expected a violation; events: {events:?}"
        );
        assert!(!svc.traps().is_empty());
        let (specific, name) = qos::decode_trap(&svc.traps()[0]).unwrap();
        assert_eq!(specific, qos::TRAP_QOS_VIOLATED);
        assert_eq!(name, "mw");
        // The one-shot blast drains within the window, so by now the path
        // may already have recovered — in which case a Cleared trap
        // follows the Violated one.
        if svc.violated_paths().is_empty() {
            let (last, _) = qos::decode_trap(svc.traps().last().unwrap()).unwrap();
            assert_eq!(last, qos::TRAP_QOS_CLEARED);
        }
    }

    #[test]
    fn traced_ticks_fill_flight_ring_with_nested_cycles() {
        let mut svc = idle_service();
        svc.set_tracing(true);
        svc.run_ticks(3).unwrap();
        assert_eq!(svc.flight().len(), 3);
        let cycles = svc.flight().snapshot();
        for cycle in &cycles {
            assert_ne!(cycle.trace_id, 0);
            let root = cycle
                .spans
                .iter()
                .find(|s| s.name == "cycle")
                .expect("root span");
            assert!(root.parent.is_none());
            // Poll round, per-device polls, codec stages, path bandwidth,
            // and QoS evaluation all land in the same cycle.
            for name in [
                "round",
                "device",
                "encode",
                "decode",
                "evaluate",
                "bandwidth",
            ] {
                assert!(
                    cycle.spans.iter().any(|s| s.name == name),
                    "missing span {name}"
                );
            }
            // Every non-root span's parent exists in the same cycle.
            for s in &cycle.spans {
                if let Some(p) = s.parent {
                    assert!(cycle.spans.iter().any(|t| t.span_id == p));
                }
            }
        }
        // The first tick has no rates yet (rates need two polls); every
        // later cycle carries the qospath's annotated sample.
        assert!(cycles[0].samples.is_empty());
        let last = cycles.last().unwrap();
        assert_eq!(last.samples.len(), 1, "one qospath sample per tick");
        assert_eq!(last.samples[0].path, "mw");
        assert!(last.samples[0].used_rank >= 0.0);
        // Disabled tracing stops recording (and costs nothing).
        svc.set_tracing(false);
        svc.run_ticks(2).unwrap();
        assert_eq!(svc.flight().len(), 3);
    }

    #[test]
    fn sampler_thins_flight_ring_but_keeps_qos_cycles() {
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        let config = ServiceConfig {
            sample: netqos_telemetry::SampleConfig {
                head_every: 4,
                slow_tick_ns: 0,
                tail_rank: f64::INFINITY,
            },
            ..ServiceConfig::default()
        };
        let mut svc = MonitoringService::from_model(model, options, config).unwrap();
        svc.set_tracing(true);
        svc.run_ticks(8).unwrap();
        // Head keeps ticks 0 and 4; the other six are dropped.
        assert_eq!(svc.flight().len(), 2);
        assert_eq!(svc.sampler().kept_head(), 2);
        assert_eq!(svc.sampler().dropped(), 6);
        assert_eq!(svc.telemetry().trace_dropped.get(), 6);
        // Force a violation: the qos_event tail trigger must keep it.
        let m = svc.monitor().topology().node_by_name("M").unwrap();
        let m_dev = svc.net_mut().device_of(m).unwrap();
        for _ in 0..40 {
            svc.net_mut()
                .lan
                .post_udp(
                    m_dev,
                    5000,
                    "10.0.0.2".parse().unwrap(),
                    9,
                    vec![0u8; 50_000].into(),
                )
                .unwrap();
        }
        let before = svc.flight().len();
        let events = svc.run_ticks(3).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, QosEvent::Violated { .. })));
        assert!(
            svc.sampler().kept_tail() >= 1,
            "violation cycle sampled out"
        );
        assert!(svc.flight().len() > before);
        let violation_kept = svc
            .flight()
            .snapshot()
            .iter()
            .any(|c| c.events.iter().any(|e| e.starts_with("qos_violation")));
        assert!(violation_kept, "violating cycle missing from the ring");
    }

    #[test]
    fn adaptive_sampling_backs_off_under_keep_pressure() {
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        let config = ServiceConfig {
            // keep_all keeps every cycle, so every 4-tick window is at
            // 100% keep rate: the stride must double per window.
            sample: SampleConfig::keep_all(),
            adaptive_sample: Some(AdaptiveConfig {
                window: 4,
                raise_above: 0.4,
                relax_below: 0.05,
                max_head_every: 8,
            }),
            ..ServiceConfig::default()
        };
        let mut svc = MonitoringService::from_model(model, options, config).unwrap();
        svc.set_tracing(true);
        svc.run_ticks(8).unwrap();
        // Two full windows of pure keeps: 1 -> 2 -> 4.
        assert_eq!(svc.sampler().head_every(), 4);
        assert_eq!(svc.telemetry().trace_head_every.get(), 4);
        // The stride is visible in the live snapshot too.
        let snap = svc.live().snapshot_response();
        let doc = netqos_telemetry::parse_json(&snap.body).unwrap();
        assert_eq!(
            doc.get("sampler")
                .and_then(|s| s.get("head_every"))
                .and_then(|v| v.as_u64()),
            Some(4)
        );
    }

    #[test]
    fn live_status_publishes_snapshot_json() {
        let mut svc = idle_service();
        svc.run_ticks(3).unwrap();
        let live = svc.live().clone();
        assert_eq!(live.ticks(), 3);
        let snap = live.snapshot_response();
        assert_eq!(snap.status, 200);
        let doc = netqos_telemetry::parse_json(&snap.body).unwrap();
        assert_eq!(doc.get("ticks").and_then(|v| v.as_u64()), Some(3));
        let paths = doc.get("paths").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            paths[0].get("name").and_then(|v| v.as_str()),
            Some("mw"),
            "snapshot lists the qospath"
        );
        assert!(doc.get("sampler").is_some());
        // Healthz sees the recent tick.
        let h = live.healthz(crate::live::unix_now_ns());
        assert_eq!(h.status, 200);
    }

    #[test]
    fn baselines_survive_a_service_restart() {
        let dir = std::env::temp_dir().join(format!("netqos-svc-baseline-{}", std::process::id()));
        let state = dir.join("baselines.json");
        std::fs::create_dir_all(&dir).unwrap();
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = || SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        let config = ServiceConfig {
            baseline_state: Some(state.clone()),
            ..ServiceConfig::default()
        };
        let mut svc =
            MonitoringService::from_model(model.clone(), options(), config.clone()).unwrap();
        assert_eq!(svc.restored_baselines(), 0);
        svc.run_ticks(5).unwrap();
        let count = svc.path_baseline("mw").unwrap().count();
        assert!(count > 0);
        assert!(svc.persist_baselines().unwrap());

        // "Restart": a fresh service from the same config resumes with
        // the recorded history instead of a cold baseline.
        let svc2 = MonitoringService::from_model(model, options(), config).unwrap();
        assert_eq!(svc2.baseline_load_warning(), None);
        assert_eq!(svc2.restored_baselines(), 1);
        assert_eq!(svc2.path_baseline("mw").unwrap().count(), count);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trap_destination_generates_network_traffic() {
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        let config = ServiceConfig {
            trap_destination: Some("10.0.0.2".parse().unwrap()),
            ..ServiceConfig::default()
        };
        let mut svc = MonitoringService::from_model(model, options, config).unwrap();
        svc.run_ticks(2).unwrap();
        let m = svc.monitor().topology().node_by_name("M").unwrap();
        let m_dev = svc.net_mut().device_of(m).unwrap();
        for _ in 0..40 {
            svc.net_mut()
                .lan
                .post_udp(
                    m_dev,
                    5000,
                    "10.0.0.2".parse().unwrap(),
                    9,
                    vec![0u8; 50_000].into(),
                )
                .unwrap();
        }
        let before = svc.net_mut().lan.stats().datagrams_unbound;
        svc.run_ticks(3).unwrap();
        // Nothing listens on W:162, so the trap datagram lands unbound —
        // proof it actually crossed the simulated wire.
        let after = svc.net_mut().lan.stats().datagrams_unbound;
        assert!(after > before, "trap never hit the wire");
    }

    /// Keeps `svc`'s 10 Mb/s link saturated for one tick: 1 MB queued
    /// instantly is 8 Mb/s over the 1 s poll period.
    fn saturate_link(svc: &mut MonitoringService) {
        let m = svc.monitor().topology().node_by_name("M").unwrap();
        let m_dev = svc.net_mut().device_of(m).unwrap();
        for _ in 0..20 {
            svc.net_mut()
                .lan
                .post_udp(
                    m_dev,
                    5000,
                    "10.0.0.2".parse().unwrap(),
                    9,
                    vec![0u8; 50_000].into(),
                )
                .unwrap();
        }
    }

    #[test]
    fn sustained_violation_fires_diagnosed_alert_then_resolves() {
        let mut svc = idle_service();
        svc.set_tracing(true);
        svc.run_ticks(2).unwrap();
        // Keep the link saturated across several ticks so the builtin
        // path_qos_violation rule (for 2) crosses its hysteresis.
        for _ in 0..4 {
            saturate_link(&mut svc);
            svc.run_ticks(1).unwrap();
        }
        assert!(svc.alerts().firing_count() >= 1, "alert never fired");
        assert_eq!(svc.telemetry().alerts_firing.get(), 1);
        assert!(svc.telemetry().alerts_pending_total.get() >= 1);
        assert!(svc.telemetry().alerts_firing_total.get() >= 1);
        // The firing alert names the rule and diagnoses the bottleneck.
        let doc = netqos_telemetry::parse_json(&svc.alerts().render_json()).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(1));
        let alerts = doc.get("alerts").and_then(|v| v.as_array()).unwrap();
        let firing = alerts
            .iter()
            .find(|a| a.get("state").and_then(|v| v.as_str()) == Some("firing"))
            .expect("firing alert in render_json");
        assert_eq!(
            firing.get("rule").and_then(|v| v.as_str()),
            Some("path_qos_violation")
        );
        let bottleneck = firing
            .get("annotations")
            .and_then(|a| a.get("bottleneck"))
            .and_then(|v| v.as_str())
            .expect("bottleneck annotation");
        assert!(
            bottleneck.contains("M.eth0"),
            "diagnosis names the saturated link: {bottleneck}"
        );
        // Transition landed in the flight ring as a cycle event.
        assert!(
            svc.flight()
                .snapshot()
                .iter()
                .any(|c| c.events.iter().any(|e| e.starts_with("alert_firing"))),
            "alert_firing missing from the flight ring"
        );
        // And in the live plane: /alerts body plus the /healthz summary.
        let live_doc = netqos_telemetry::parse_json(&svc.live().alerts_json()).unwrap();
        assert_eq!(live_doc.get("firing").and_then(|v| v.as_u64()), Some(1));
        let h = svc.live().healthz(crate::live::unix_now_ns());
        let h_doc = netqos_telemetry::parse_json(&h.body).unwrap();
        assert_eq!(
            h_doc
                .get("alerts")
                .and_then(|a| a.get("firing"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        // Load stops: the alert resolves once the condition clears.
        svc.run_ticks(4).unwrap();
        assert_eq!(svc.alerts().firing_count(), 0);
        assert!(svc.telemetry().alerts_resolved_total.get() >= 1);
        let doc = netqos_telemetry::parse_json(&svc.alerts().render_json()).unwrap();
        let resolved = doc.get("resolved").and_then(|v| v.as_array()).unwrap();
        assert!(
            resolved
                .iter()
                .any(|r| r.get("rule").and_then(|v| v.as_str()) == Some("path_qos_violation")),
            "resolved history records the episode"
        );
        // The snapshot digest carries the summary too.
        let status = svc.status_json(0.0, &[]);
        let s_doc = netqos_telemetry::parse_json(&status).unwrap();
        assert_eq!(
            s_doc
                .get("alerts")
                .and_then(|a| a.get("firing"))
                .and_then(|v| v.as_u64()),
            Some(0)
        );
    }

    #[test]
    fn delta_push_cursor_only_ships_new_cycles() {
        let model = netqos_spec::parse_and_validate(SPEC).unwrap();
        let options = SimNetworkOptions {
            monitor_host: "M".into(),
            ..SimNetworkOptions::default()
        };
        let config = ServiceConfig {
            otlp_push_delta: true,
            ..ServiceConfig::default()
        };
        let mut svc = MonitoringService::from_model(model, options, config).unwrap();
        svc.set_tracing(true);
        svc.run_ticks(3).unwrap();
        let (cycles, next) = svc.pending_push_cycles();
        assert_eq!(cycles.len(), 3, "all cycles pending before first push");
        // Simulate an acked push: the cursor advances past what shipped.
        svc.next_push_seq = next;
        let (cycles, _) = svc.pending_push_cycles();
        assert!(cycles.is_empty(), "acked cycles must not ship again");
        svc.run_ticks(2).unwrap();
        let (cycles, _) = svc.pending_push_cycles();
        assert_eq!(cycles.len(), 2, "only post-ack cycles are pending");
        // Full temporality ignores the cursor and re-ships the ring.
        svc.config.otlp_push_delta = false;
        let (cycles, _) = svc.pending_push_cycles();
        assert_eq!(cycles.len(), 5);
    }
}
