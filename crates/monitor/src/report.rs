//! Time-series recording and rendering for experiments and the RM feed.

use netqos_topology::bandwidth::PathBandwidth;
use serde::{Deserialize, Serialize};

/// One sample of one monitored path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSample {
    /// Sample time, seconds from experiment start.
    pub t_s: f64,
    /// Used bandwidth at the bottleneck, bits/s.
    pub used_bps: u64,
    /// Available bandwidth of the path, bits/s.
    pub available_bps: u64,
}

impl PathSample {
    /// Builds a sample from a path-bandwidth evaluation.
    pub fn at(t_s: f64, bw: &PathBandwidth) -> Self {
        PathSample {
            t_s,
            used_bps: bw.used_bps,
            available_bps: bw.available_bps,
        }
    }

    /// Used bandwidth in Kbytes/second — the unit of the paper's figures.
    pub fn used_kbytes_per_sec(&self) -> f64 {
        self.used_bps as f64 / 8.0 / 1000.0
    }
}

/// A named series of samples (one monitored path).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    /// Series label, e.g. `S1<->N1`.
    pub name: String,
    /// The samples in time order.
    pub samples: Vec<PathSample>,
}

impl Series {
    /// Mean used bandwidth (Kbytes/s) over samples in `[from_s, to_s)`.
    pub fn mean_used_kbps(&self, from_s: f64, to_s: f64) -> Option<f64> {
        let window: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.t_s >= from_s && s.t_s < to_s)
            .map(|s| s.used_kbytes_per_sec())
            .collect();
        if window.is_empty() {
            None
        } else {
            Some(window.iter().sum::<f64>() / window.len() as f64)
        }
    }

    /// Maximum used bandwidth (Kbytes/s) over samples in `[from_s, to_s)`.
    pub fn max_used_kbps(&self, from_s: f64, to_s: f64) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.t_s >= from_s && s.t_s < to_s)
            .map(|s| s.used_kbytes_per_sec())
            .max_by(|a, b| a.total_cmp(b))
    }
}

/// Collects several named series and renders them as CSV.
#[derive(Debug, Clone, Default)]
pub struct SeriesRecorder {
    series: Vec<Series>,
}

impl SeriesRecorder {
    /// Creates a recorder with the given series names.
    pub fn new(names: &[&str]) -> Self {
        SeriesRecorder {
            series: names
                .iter()
                .map(|n| Series {
                    name: (*n).to_owned(),
                    samples: Vec::new(),
                })
                .collect(),
        }
    }

    /// Appends a sample to the named series (creating it if new).
    pub fn push(&mut self, name: &str, sample: PathSample) {
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.samples.push(sample),
            None => self.series.push(Series {
                name: name.to_owned(),
                samples: vec![sample],
            }),
        }
    }

    /// The recorded series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// A series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Renders all series as CSV: `t_s,<name1>_used_kBps,<name2>_used_kBps,…`,
    /// sampling on the union of time points (blank when a series lacks a
    /// point).
    pub fn to_csv(&self) -> String {
        let mut header = String::from("t_s");
        for s in &self.series {
            header.push_str(&format!(",{}_used_kBps", s.name));
        }
        header.push('\n');

        let mut times: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.samples.iter().map(|p| p.t_s))
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = header;
        for t in times {
            out.push_str(&format!("{t:.2}"));
            for s in &self.series {
                match s.samples.iter().find(|p| (p.t_s - t).abs() < 1e-9) {
                    Some(p) => out.push_str(&format!(",{:.3}", p.used_kbytes_per_sec())),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, used_kbps: f64) -> PathSample {
        PathSample {
            t_s: t,
            used_bps: (used_kbps * 8000.0) as u64,
            available_bps: 0,
        }
    }

    #[test]
    fn unit_conversion() {
        let s = sample(0.0, 100.0);
        assert!((s.used_kbytes_per_sec() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_max_windows() {
        let mut series = Series {
            name: "x".into(),
            samples: vec![],
        };
        for t in 0..10 {
            series.samples.push(sample(t as f64, t as f64 * 10.0));
        }
        let mean = series.mean_used_kbps(2.0, 5.0).unwrap(); // 20,30,40
        assert!((mean - 30.0).abs() < 1e-9);
        let max = series.max_used_kbps(2.0, 5.0).unwrap();
        assert!((max - 40.0).abs() < 1e-9);
        assert!(series.mean_used_kbps(100.0, 200.0).is_none());
    }

    #[test]
    fn csv_renders_all_series() {
        let mut rec = SeriesRecorder::new(&["a", "b"]);
        rec.push("a", sample(0.0, 1.0));
        rec.push("b", sample(0.0, 2.0));
        rec.push("a", sample(1.0, 3.0));
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_s,a_used_kBps,b_used_kBps");
        assert_eq!(lines[1], "0.00,1.000,2.000");
        assert_eq!(lines[2], "1.00,3.000,"); // b missing at t=1
    }

    #[test]
    fn push_creates_unknown_series() {
        let mut rec = SeriesRecorder::default();
        rec.push("new", sample(0.0, 1.0));
        assert!(rec.get("new").is_some());
        assert_eq!(rec.series().len(), 1);
    }
}
