//! Counter and uptime delta arithmetic (paper §3.1).
//!
//! MIB-II counters are cumulative and wrap at 2^32; `sysUpTime` is in
//! hundredths of a second and also wraps (after ~497 days). The monitor
//! subtracts consecutive polls of both to obtain per-interval rates:
//!
//! > "Because the polling results are cumulative numbers, this data has to
//! > be polled periodically. The old value is subtracted from the new one
//! > to determine statistics for the polling interval. The time interval
//! > between two polling processes can be found using the system uptime
//! > data."

/// Wrap-safe difference of two Counter32 samples: the delta modulo 2^32,
/// so a rollover (`new < old`) still yields the true increment as long as
/// the counter wrapped at most once between polls.
#[inline]
pub fn counter_delta(old: u32, new: u32) -> u32 {
    new.wrapping_sub(old)
}

/// Whether two consecutive Counter32 samples crossed the 2^32 boundary.
/// At 100 Mb/s an `ifInOctets` counter wraps every ~5.7 minutes, so this
/// is routine operation, not an anomaly — but it is worth counting, since
/// a poll period longer than one wrap interval silently undercounts.
#[inline]
pub fn counter_wrapped(old: u32, new: u32) -> bool {
    new < old
}

/// Wrap-safe difference of two TimeTicks samples, in ticks (10 ms units).
#[inline]
pub fn ticks_delta(old: u32, new: u32) -> u32 {
    new.wrapping_sub(old)
}

/// Longest plausible gap between two polls of the same device: one hour
/// in TimeTicks. Distinguishes the ~497-day `sysUpTime` wrap from a
/// reboot: a genuine wrap crossed by a poll yields a wrapping delta of at
/// most the poll interval (old hugs `u32::MAX`, new sits just past zero),
/// while a reboot resets uptime to ~0 from an arbitrary point, making the
/// wrapping delta `2^32 - old + new` — far beyond any real interval
/// unless the device happened to reboot right at the wrap boundary,
/// where the two cases are genuinely indistinguishable.
const MAX_PLAUSIBLE_INTERVAL_TICKS: u32 = 360_000;

/// Whether a `sysUpTime` step indicates the device rebooted between
/// polls. Rates must not be formed across a reboot: the counters
/// restarted from zero, so their deltas are garbage and the real elapsed
/// time is unknowable (the uptime delta is non-positive in real time
/// even though the wrapping tick delta is huge).
#[inline]
pub fn uptime_reset(old: u32, new: u32) -> bool {
    new < old && ticks_delta(old, new) > MAX_PLAUSIBLE_INTERVAL_TICKS
}

/// Converts an octet delta over a tick interval into bits per second.
/// Returns `None` when the interval is zero (two polls inside the same
/// 10 ms tick cannot produce a rate).
#[inline]
pub fn rate_bps(octets_delta: u32, interval_ticks: u32) -> Option<u64> {
    if interval_ticks == 0 {
        return None;
    }
    // bits = octets * 8; seconds = ticks / 100.
    Some((octets_delta as u64 * 8 * 100) / interval_ticks as u64)
}

/// Converts a packet-count delta over a tick interval into packets/second
/// (rounded down).
#[inline]
pub fn pps(pkts_delta: u32, interval_ticks: u32) -> Option<u64> {
    if interval_ticks == 0 {
        return None;
    }
    Some((pkts_delta as u64 * 100) / interval_ticks as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_delta() {
        assert_eq!(counter_delta(1000, 2500), 1500);
    }

    #[test]
    fn wrap_delta() {
        assert_eq!(counter_delta(u32::MAX - 99, 100), 200);
        assert_eq!(ticks_delta(u32::MAX, 9), 10);
    }

    #[test]
    fn rate_conversion() {
        // 125_000 octets in 100 ticks (1 s) = 1 Mb/s.
        assert_eq!(rate_bps(125_000, 100), Some(1_000_000));
        // Same octets in 2 s = 500 kb/s.
        assert_eq!(rate_bps(125_000, 200), Some(500_000));
        // 10 ms interval scales up.
        assert_eq!(rate_bps(1_250, 1), Some(1_000_000));
    }

    #[test]
    fn zero_interval_yields_none() {
        assert_eq!(rate_bps(1000, 0), None);
        assert_eq!(pps(10, 0), None);
    }

    #[test]
    fn pps_conversion() {
        assert_eq!(pps(500, 100), Some(500));
        assert_eq!(pps(500, 50), Some(1000));
    }

    #[test]
    fn wrap_detection() {
        assert!(!counter_wrapped(1000, 2500));
        assert!(counter_wrapped(u32::MAX - 99, 100));
        // A counter standing still did not wrap.
        assert!(!counter_wrapped(500, 500));
    }

    #[test]
    fn rate_across_wrap_boundary() {
        // ifInOctets rolls over between polls: old near the top, new past
        // zero. The modular delta is 125_000 octets over 1 s = 1 Mb/s —
        // not the huge value a naive `new - old` as i64 would produce.
        let old = u32::MAX - 100_000;
        let new = 24_999u32;
        assert!(counter_wrapped(old, new));
        let d = counter_delta(old, new);
        assert_eq!(d, 125_000);
        assert_eq!(rate_bps(d, 100), Some(1_000_000));
    }

    #[test]
    fn reboot_vs_genuine_uptime_wrap() {
        // Reboot: uptime fell backwards from anywhere in the range.
        assert!(uptime_reset(1_000_000, 50));
        assert!(uptime_reset(u32::MAX / 2, 100));
        assert!(uptime_reset(3_000_000_000, 0));
        // Genuine 497-day wrap: old hugs the boundary, delta is small.
        assert!(!uptime_reset(u32::MAX - 49, 50));
        assert!(!uptime_reset(u32::MAX - 100, 359_000));
        // Normal forward progress.
        assert!(!uptime_reset(100, 200));
        assert!(!uptime_reset(100, 100));
    }

    #[test]
    fn rate_handles_max_counter_delta() {
        // Full 2^32-1 octet wrap in one second must not overflow u64.
        let r = rate_bps(u32::MAX, 100).unwrap();
        assert_eq!(r, u32::MAX as u64 * 8);
    }
}
