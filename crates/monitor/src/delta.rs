//! Counter and uptime delta arithmetic (paper §3.1).
//!
//! MIB-II counters are cumulative and wrap at 2^32; `sysUpTime` is in
//! hundredths of a second and also wraps (after ~497 days). The monitor
//! subtracts consecutive polls of both to obtain per-interval rates:
//!
//! > "Because the polling results are cumulative numbers, this data has to
//! > be polled periodically. The old value is subtracted from the new one
//! > to determine statistics for the polling interval. The time interval
//! > between two polling processes can be found using the system uptime
//! > data."

/// Wrap-safe difference of two Counter32 samples.
#[inline]
pub fn counter_delta(old: u32, new: u32) -> u32 {
    new.wrapping_sub(old)
}

/// Wrap-safe difference of two TimeTicks samples, in ticks (10 ms units).
#[inline]
pub fn ticks_delta(old: u32, new: u32) -> u32 {
    new.wrapping_sub(old)
}

/// Converts an octet delta over a tick interval into bits per second.
/// Returns `None` when the interval is zero (two polls inside the same
/// 10 ms tick cannot produce a rate).
#[inline]
pub fn rate_bps(octets_delta: u32, interval_ticks: u32) -> Option<u64> {
    if interval_ticks == 0 {
        return None;
    }
    // bits = octets * 8; seconds = ticks / 100.
    Some((octets_delta as u64 * 8 * 100) / interval_ticks as u64)
}

/// Converts a packet-count delta over a tick interval into packets/second
/// (rounded down).
#[inline]
pub fn pps(pkts_delta: u32, interval_ticks: u32) -> Option<u64> {
    if interval_ticks == 0 {
        return None;
    }
    Some((pkts_delta as u64 * 100) / interval_ticks as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_delta() {
        assert_eq!(counter_delta(1000, 2500), 1500);
    }

    #[test]
    fn wrap_delta() {
        assert_eq!(counter_delta(u32::MAX - 99, 100), 200);
        assert_eq!(ticks_delta(u32::MAX, 9), 10);
    }

    #[test]
    fn rate_conversion() {
        // 125_000 octets in 100 ticks (1 s) = 1 Mb/s.
        assert_eq!(rate_bps(125_000, 100), Some(1_000_000));
        // Same octets in 2 s = 500 kb/s.
        assert_eq!(rate_bps(125_000, 200), Some(500_000));
        // 10 ms interval scales up.
        assert_eq!(rate_bps(1_250, 1), Some(1_000_000));
    }

    #[test]
    fn zero_interval_yields_none() {
        assert_eq!(rate_bps(1000, 0), None);
        assert_eq!(pps(10, 0), None);
    }

    #[test]
    fn pps_conversion() {
        assert_eq!(pps(500, 100), Some(500));
        assert_eq!(pps(500, 50), Some(1000));
    }

    #[test]
    fn rate_handles_max_counter_delta() {
        // Full 2^32-1 octet wrap in one second must not overflow u64.
        let r = rate_bps(u32::MAX, 100).unwrap();
        assert_eq!(r, u32::MAX as u64 * 8);
    }
}
