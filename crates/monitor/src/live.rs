//! Live export plane: the status shared between the tick loop and the
//! HTTP endpoints.
//!
//! [`LiveStatus`] is the bridge between the single-threaded
//! [`MonitoringService`](crate::service::MonitoringService) and the
//! telemetry crate's [`HttpServer`](netqos_telemetry::HttpServer), whose
//! handlers run on connection threads: every tick publishes its outcome
//! (wall-clock instant, a pre-rendered JSON digest of path bandwidths
//! and baselines) into atomics and a mutex-guarded string, and the
//! router built by [`build_router`] reads them without ever touching the
//! service. Three endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition of the shared registry;
//! * `GET /healthz` — tick-loop liveness: age of the last tick against a
//!   staleness budget (`503` when stale, `200` otherwise);
//! * `GET /snapshot` — the latest tick digest (paths, baselines, flight
//!   recorder and sampler state) as JSON; with `Accept:
//!   text/event-stream` (or `?follow=1`) it upgrades to a server-sent
//!   event stream delivering one event per tick, `id:` = tick number;
//! * `GET /alerts` — the alert engine's document (active alerts with
//!   bottleneck diagnoses, resolved history); SSE follow mode streams a
//!   fresh document whenever a transition lands, `id:` = transition
//!   epoch.
//!
//! [`shard_for`] adapts a `(name, registry, live)` triple into a
//! federation [`Shard`](netqos_telemetry::Shard) so N of these planes
//! can sit behind one merged export surface (`netqos federate`).

use netqos_telemetry::{
    api_query_outcome, fields, json_escape, parse_range, profile_response, wants_stats, EventSink,
    EventSource, HttpRequest, HttpResponse, HttpRoute, Level, LtsReader, LtsSource, ProfileHub,
    QueryEngine, Registry, RegistrySource, Resolution, Router, SeriesSource, Shard, ShardHealth,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Nanoseconds since the Unix epoch, saturating (never panics even on a
/// pre-1970 clock).
pub fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Default staleness budget for `/healthz`: a tick loop quiet for longer
/// than this is reported unhealthy (unless it finished cleanly).
pub const DEFAULT_STALE_AFTER_NS: u64 = 2_000_000_000;

/// Tick-loop status shared with HTTP handler threads.
pub struct LiveStatus {
    started_unix_ns: u64,
    stale_after_ns: AtomicU64,
    last_tick_unix_ns: AtomicU64,
    ticks: AtomicU64,
    finished: AtomicBool,
    snapshot_json: Mutex<String>,
    alerts_json: Mutex<String>,
    alerts_pending: AtomicU64,
    alerts_firing: AtomicU64,
    // Bumps only when a tick produced at least one alert transition, so
    // SSE followers of /alerts wake on lifecycle edges, not every tick.
    alerts_epoch: AtomicU64,
}

impl LiveStatus {
    /// A fresh status anchored at the current wall clock.
    pub fn new() -> Arc<Self> {
        Arc::new(LiveStatus {
            started_unix_ns: unix_now_ns(),
            stale_after_ns: AtomicU64::new(DEFAULT_STALE_AFTER_NS),
            last_tick_unix_ns: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            snapshot_json: Mutex::new(String::from("{\"ticks\":0,\"paths\":[]}")),
            alerts_json: Mutex::new(String::from(
                "{\"tick\":0,\"pending\":0,\"firing\":0,\"alerts\":[],\"resolved\":[]}",
            )),
            alerts_pending: AtomicU64::new(0),
            alerts_firing: AtomicU64::new(0),
            alerts_epoch: AtomicU64::new(0),
        })
    }

    /// Adjusts the `/healthz` staleness budget (e.g. to a multiple of
    /// the loop's wall-clock pacing). Zero means "never stale".
    pub fn set_stale_after_ns(&self, ns: u64) {
        self.stale_after_ns.store(ns, Ordering::Relaxed);
    }

    /// Publishes one tick's outcome.
    pub fn record_tick(&self, unix_ns: u64, snapshot_json: String) {
        self.last_tick_unix_ns.store(unix_ns, Ordering::Relaxed);
        // Snapshot first, tick count second: an SSE poller that sees
        // tick N is guaranteed the snapshot is at least as new as N.
        *self.snapshot_json.lock() = snapshot_json;
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the alert engine's state after one evaluation. The
    /// epoch (the `/alerts` SSE cursor) advances only when `transitions`
    /// is non-zero, so followers see exactly the lifecycle edges.
    pub fn record_alerts(&self, alerts_json: String, pending: u64, firing: u64, transitions: u64) {
        *self.alerts_json.lock() = alerts_json;
        self.alerts_pending.store(pending, Ordering::Relaxed);
        self.alerts_firing.store(firing, Ordering::Relaxed);
        if transitions > 0 {
            self.alerts_epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Currently `(pending, firing)` alert counts.
    pub fn alert_counts(&self) -> (u64, u64) {
        (
            self.alerts_pending.load(Ordering::Relaxed),
            self.alerts_firing.load(Ordering::Relaxed),
        )
    }

    /// The latest alert document without response framing.
    pub fn alerts_json(&self) -> String {
        self.alerts_json.lock().clone()
    }

    /// The `/alerts` response: the latest published alert document.
    pub fn alerts_response(&self) -> HttpResponse {
        let mut body = self.alerts_json.lock().clone();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        HttpResponse::json(200, body)
    }

    /// Marks the run as cleanly finished: `/healthz` stays `200` even
    /// though no further ticks will arrive, and SSE followers are
    /// released.
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// Whether the run finished cleanly.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Ticks published so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Whether the loop is currently healthy (starting, ticking within
    /// budget, or cleanly finished) as of `now_unix_ns`.
    pub fn is_healthy(&self, now_unix_ns: u64) -> bool {
        self.healthz(now_unix_ns).status == 200
    }

    /// The `/healthz` response as of `now_unix_ns`.
    pub fn healthz(&self, now_unix_ns: u64) -> HttpResponse {
        let ticks = self.ticks();
        let last = self.last_tick_unix_ns.load(Ordering::Relaxed);
        let reference = if ticks == 0 {
            self.started_unix_ns
        } else {
            last
        };
        let age_ns = now_unix_ns.saturating_sub(reference);
        let budget = self.stale_after_ns.load(Ordering::Relaxed);
        let finished = self.finished.load(Ordering::Relaxed);
        let status = if finished {
            "finished"
        } else if budget > 0 && age_ns > budget {
            "stale"
        } else if ticks == 0 {
            "starting"
        } else {
            "ok"
        };
        let code = if status == "stale" { 503 } else { 200 };
        let (pending, firing) = self.alert_counts();
        let body = format!(
            "{{\"status\":\"{status}\",\"ticks\":{ticks},\
             \"last_tick_age_ms\":{},\"stale_after_ms\":{},\
             \"alerts\":{{\"pending\":{pending},\"firing\":{firing}}}}}\n",
            age_ns / 1_000_000,
            budget / 1_000_000,
        );
        HttpResponse::json(code, body)
    }

    /// The `/snapshot` response: the latest published tick digest.
    pub fn snapshot_response(&self) -> HttpResponse {
        let mut body = self.snapshot_json.lock().clone();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        HttpResponse::json(200, body)
    }

    /// The latest snapshot document without response framing (what an
    /// SSE event or a federation digest carries).
    pub fn snapshot_json(&self) -> String {
        self.snapshot_json.lock().clone()
    }
}

/// `/snapshot?follow=1` streams ticks: the cursor is the tick count, so
/// a follower never sees the same tick twice and picks up exactly where
/// its last event left off.
impl EventSource for LiveStatus {
    fn next_after(&self, cursor: u64) -> Option<(u64, String)> {
        let ticks = self.ticks();
        if ticks <= cursor {
            return None;
        }
        Some((ticks, self.snapshot_json()))
    }

    fn finished(&self) -> bool {
        self.is_finished()
    }
}

/// `/alerts?follow=1` streams alert documents: the cursor is the
/// transition epoch, so followers wake exactly when an alert changes
/// state and a slow follower skips straight to the current document.
pub struct AlertsFollow(pub Arc<LiveStatus>);

impl EventSource for AlertsFollow {
    fn next_after(&self, cursor: u64) -> Option<(u64, String)> {
        let epoch = self.0.alerts_epoch.load(Ordering::Relaxed);
        if epoch <= cursor {
            return None;
        }
        Some((epoch, self.0.alerts_json()))
    }

    fn finished(&self) -> bool {
        self.0.is_finished()
    }
}

/// Serves one `GET /query` request against a long-term store: `series=`
/// is a `*`-wildcard selector (default `*`), `range=` is `start:end` in
/// Unix seconds with either side optional (default `:`, everything), and
/// `step=` picks the resolution (`1s`, `1m` or `1h`; default `1s`).
/// Malformed parameters get a `400` with a JSON error body.
pub fn query_response(reader: &LtsReader, req: &HttpRequest) -> HttpResponse {
    let selector = req.query_param("series").unwrap_or_else(|| "*".into());
    let range = req.query_param("range").unwrap_or_else(|| ":".into());
    let step = req.query_param("step").unwrap_or_else(|| "1s".into());
    let Some((start, end)) = parse_range(&range) else {
        return HttpResponse::json(
            400,
            format!(
                "{{\"error\":\"bad range; expected start:end in unix seconds\",\"got\":{}}}\n",
                json_escape(&range)
            ),
        );
    };
    let Some(res) = Resolution::parse(&step) else {
        return HttpResponse::json(
            400,
            format!(
                "{{\"error\":\"bad step; expected 1s, 1m or 1h\",\"got\":{}}}\n",
                json_escape(&step)
            ),
        );
    };
    let mut body = reader.query(&selector, start, end, res);
    if !body.ends_with('\n') {
        body.push('\n');
    }
    HttpResponse::json(200, body)
}

/// Default slow-query threshold: a `/api/v1/query` evaluation slower
/// than this is worth a JSONL event and a response warning. 50 ms is two
/// orders of magnitude above a typical store scan; override it with
/// `--slow-query-ms`.
pub const SLOW_QUERY_NS: u64 = 50_000_000;

/// Serves one `/api/v1/query[_range]` request and instruments it:
/// `netqos_query_requests_total{endpoint,status}` counts outcomes, the
/// `netqos_query_eval_ns` histogram tracks wall-clock evaluation time,
/// and evaluations past `slow_query_ns` (default [`SLOW_QUERY_NS`])
/// emit a `slow_query` event and carry a `warnings` entry in the
/// response body. A zero threshold flags every evaluation.
pub fn instrumented_query_response(
    engine: &QueryEngine,
    registry: &Registry,
    events: Option<&EventSink>,
    req: &HttpRequest,
    range: bool,
    slow_query_ns: u64,
) -> HttpResponse {
    let endpoint = if range { "query_range" } else { "query" };
    let started = Instant::now();
    let outcome = api_query_outcome(engine, req, range, unix_now_ns() / 1_000_000_000);
    let elapsed_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let status = if outcome.is_ok() { "ok" } else { "bad_request" };
    registry
        .counter(&format!(
            "netqos_query_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}}"
        ))
        .inc();
    registry
        .histogram("netqos_query_eval_ns")
        .record(elapsed_ns);
    let slow = elapsed_ns >= slow_query_ns;
    if slow {
        // Stats come from the evaluation itself; a rejected request
        // touched nothing, so its stats stay zero.
        let stats = outcome.as_ref().map(|o| o.stats).unwrap_or_default();
        if let Some(sink) = events {
            sink.emit(
                Level::Warn,
                "monitor.query",
                "slow_query",
                fields![
                    "endpoint" => endpoint,
                    "query" => req.query_param("query").unwrap_or_default(),
                    "eval_ms" => elapsed_ns / 1_000_000,
                    "threshold_ms" => slow_query_ns / 1_000_000,
                    "series" => stats.series,
                    "points_scanned" => stats.points_scanned,
                    "pushdown_evals" => stats.pushdown_evals,
                ],
            );
        }
    }
    match outcome {
        Ok(mut o) => {
            if slow {
                o.warnings.push(format!(
                    "slow query: `{}` took {} ms (threshold {} ms); {} series, {} points scanned, {} pushdown evals",
                    req.query_param("query").unwrap_or_default(),
                    elapsed_ns / 1_000_000,
                    slow_query_ns / 1_000_000,
                    o.stats.series,
                    o.stats.points_scanned,
                    o.stats.pushdown_evals,
                ));
            }
            HttpResponse::json(200, format!("{}\n", o.to_api_json_with(wants_stats(req))))
        }
        Err(resp) => resp,
    }
}

/// Everything [`build_router_full`] can wire into the export plane.
/// `registry` and `live` are mandatory; the rest default off.
pub struct RouterOptions {
    /// The registry behind `/metrics` and registry-backed queries.
    pub registry: Arc<Registry>,
    /// The tick-loop status behind `/healthz` and `/snapshot`.
    pub live: Arc<LiveStatus>,
    /// Long-term store behind `/query` (and the `/api/v1` source).
    pub lts: Option<LtsReader>,
    /// Event sink for slow-query JSONL events.
    pub events: Option<Arc<EventSink>>,
    /// Tick-phase profiler behind `/profile`.
    pub profile: Option<Arc<ProfileHub>>,
    /// Slow-query threshold for the `/api/v1` plane, nanoseconds.
    pub slow_query_ns: u64,
}

impl RouterOptions {
    /// The minimal plane: metrics, health, snapshot, alerts, and
    /// registry-backed `/api/v1` queries at the default slow-query
    /// threshold.
    pub fn new(registry: Arc<Registry>, live: Arc<LiveStatus>) -> RouterOptions {
        RouterOptions {
            registry,
            live,
            lts: None,
            events: None,
            profile: None,
            slow_query_ns: SLOW_QUERY_NS,
        }
    }
}

/// Builds the endpoint router for [`HttpServer::serve`]
/// (`netqos_telemetry::HttpServer`): `/metrics`, `/healthz`,
/// `/snapshot` and `/alerts` (buffered or SSE), `/query` (when a
/// long-term store is attached), `/api/v1/query` and
/// `/api/v1/query_range` (PromQL-subset evaluation over the store when
/// attached, else over the live registry), and `/` (a tiny index).
/// Unknown paths return `None` (404).
pub fn build_router(
    registry: Arc<Registry>,
    live: Arc<LiveStatus>,
    lts: Option<LtsReader>,
) -> Arc<Router> {
    build_router_with_events(registry, live, lts, None)
}

/// [`build_router`] with an optional event sink wired into the query
/// path, so slow `/api/v1/query` evaluations land in the JSONL stream.
pub fn build_router_with_events(
    registry: Arc<Registry>,
    live: Arc<LiveStatus>,
    lts: Option<LtsReader>,
    events: Option<Arc<EventSink>>,
) -> Arc<Router> {
    build_router_full(RouterOptions {
        lts,
        events,
        ..RouterOptions::new(registry, live)
    })
}

/// [`build_router`] with every optional plane explicit: the long-term
/// store, the slow-query event sink and threshold, and the tick-phase
/// profiler behind `GET /profile` (JSON phase tree, or folded stacks
/// with `?format=folded`).
pub fn build_router_full(opts: RouterOptions) -> Arc<Router> {
    let RouterOptions {
        registry,
        live,
        lts,
        events,
        profile,
        slow_query_ns,
    } = opts;
    let index = {
        let mut endpoints = vec!["/metrics", "/healthz", "/snapshot", "/alerts"];
        if lts.is_some() {
            endpoints.push("/query");
        }
        if profile.is_some() {
            endpoints.push("/profile");
        }
        endpoints.push("/api/v1/query");
        endpoints.push("/api/v1/query_range");
        let quoted: Vec<String> = endpoints.iter().map(|e| format!("\"{e}\"")).collect();
        format!("{{\"endpoints\":[{}]}}\n", quoted.join(","))
    };
    // One source, never both: with a store attached its history is the
    // query surface (the live registry feeds it anyway); without one the
    // registry's current values answer instant queries.
    let engine = {
        let source: Arc<dyn SeriesSource> = match &lts {
            Some(reader) => Arc::new(LtsSource::new(reader.clone())),
            None => Arc::new(RegistrySource::new(registry.clone())),
        };
        Arc::new(QueryEngine::new().with_source(None, source))
    };
    Arc::new(move |req: &HttpRequest| match req.path.as_str() {
        "/metrics" => Some(HttpResponse::prometheus(registry.render_prometheus()).into()),
        "/healthz" => Some(live.healthz(unix_now_ns()).into()),
        "/snapshot" if req.wants_event_stream() => {
            Some(HttpRoute::EventStream(live.clone() as Arc<dyn EventSource>))
        }
        "/snapshot" => Some(live.snapshot_response().into()),
        "/alerts" if req.wants_event_stream() => Some(HttpRoute::EventStream(
            Arc::new(AlertsFollow(live.clone())) as Arc<dyn EventSource>,
        )),
        "/alerts" => Some(live.alerts_response().into()),
        "/query" => Some(match &lts {
            Some(reader) => query_response(reader, req).into(),
            None => HttpResponse::json(
                404,
                "{\"error\":\"no long-term store attached (run with --lts DIR)\"}\n".into(),
            )
            .into(),
        }),
        "/profile" => Some(match &profile {
            Some(hub) => profile_response(hub, req).into(),
            None => HttpResponse::json(
                404,
                "{\"error\":\"no profiler attached (run with tracing enabled)\"}\n".into(),
            )
            .into(),
        }),
        "/api/v1/query" => Some(
            instrumented_query_response(
                &engine,
                &registry,
                events.as_deref(),
                req,
                false,
                slow_query_ns,
            )
            .into(),
        ),
        "/api/v1/query_range" => Some(
            instrumented_query_response(
                &engine,
                &registry,
                events.as_deref(),
                req,
                true,
                slow_query_ns,
            )
            .into(),
        ),
        "/" => Some(HttpResponse::json(200, index.clone()).into()),
        _ => None,
    })
}

/// Adapts one export plane into a federation member: health comes from
/// the live `/healthz` verdict, the digest from the latest snapshot.
pub fn shard_for(name: impl Into<String>, registry: Arc<Registry>, live: Arc<LiveStatus>) -> Shard {
    let health_live = live.clone();
    let snap_live = live.clone();
    let alerts_live = live.clone();
    Shard::new(
        name,
        registry,
        move || {
            let resp = health_live.healthz(unix_now_ns());
            ShardHealth {
                healthy: resp.status == 200,
                detail: resp.body.trim_end().to_string(),
            }
        },
        move || snap_live.snapshot_json(),
    )
    .with_alerts(move || alerts_live.alerts_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_telemetry::parse_json;

    fn get(path: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            path: path.into(),
            query: String::new(),
            accept: String::new(),
        }
    }

    #[test]
    fn healthz_lifecycle() {
        let live = LiveStatus::new();
        let t0 = live.started_unix_ns;
        // Before any tick, within budget: starting.
        let r = live.healthz(t0 + 1_000_000);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"starting\""));
        // A tick arrives: ok.
        live.record_tick(t0 + 5_000_000, "{\"ticks\":1}".into());
        let r = live.healthz(t0 + 6_000_000);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"ok\""));
        assert!(live.is_healthy(t0 + 6_000_000));
        // Budget exceeded: stale, 503.
        let r = live.healthz(t0 + 5_000_000 + DEFAULT_STALE_AFTER_NS + 1);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"status\":\"stale\""));
        // A clean finish overrides staleness.
        live.mark_finished();
        let r = live.healthz(t0 + 60 * DEFAULT_STALE_AFTER_NS);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"finished\""));
    }

    #[test]
    fn router_serves_all_endpoints() {
        let registry = Registry::new();
        registry.counter("netqos_monitor_ticks_total").add(3);
        let live = LiveStatus::new();
        live.record_tick(unix_now_ns(), "{\"ticks\":1,\"paths\":[]}".into());
        let router = build_router(registry, live, None);
        let Some(HttpRoute::Response(metrics)) = router(&get("/metrics")) else {
            panic!("no /metrics route");
        };
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("netqos_monitor_ticks_total 3"));
        let Some(HttpRoute::Response(health)) = router(&get("/healthz")) else {
            panic!("no /healthz route");
        };
        assert_eq!(health.status, 200);
        let Some(HttpRoute::Response(snap)) = router(&get("/snapshot")) else {
            panic!("no /snapshot route");
        };
        assert!(parse_json(&snap.body).is_ok(), "snapshot must be JSON");
        assert!(router(&get("/nope")).is_none());
    }

    #[test]
    fn snapshot_follow_upgrades_to_event_stream() {
        let live = LiveStatus::new();
        let router = build_router(Registry::new(), live.clone(), None);
        let mut req = get("/snapshot");
        req.query = "follow=1".into();
        assert!(matches!(router(&req), Some(HttpRoute::EventStream(_))));
        // Plain GET still buffers.
        assert!(matches!(
            router(&get("/snapshot")),
            Some(HttpRoute::Response(_))
        ));
    }

    #[test]
    fn event_source_cursor_tracks_ticks() {
        let live = LiveStatus::new();
        assert!(live.next_after(0).is_none(), "no tick yet");
        live.record_tick(unix_now_ns(), "{\"ticks\":1}".into());
        let (cursor, payload) = live.next_after(0).unwrap();
        assert_eq!(cursor, 1);
        assert_eq!(payload, "{\"ticks\":1}");
        assert!(live.next_after(cursor).is_none(), "tick 1 already seen");
        live.record_tick(unix_now_ns(), "{\"ticks\":2}".into());
        live.record_tick(unix_now_ns(), "{\"ticks\":3}".into());
        // A slow follower skips to the freshest tick rather than
        // replaying history.
        let (cursor, payload) = live.next_after(cursor).unwrap();
        assert_eq!(cursor, 3);
        assert_eq!(payload, "{\"ticks\":3}");
        assert!(!EventSource::finished(&*live));
        live.mark_finished();
        assert!(EventSource::finished(&*live));
    }

    #[test]
    fn alerts_endpoint_and_healthz_summary() {
        let live = LiveStatus::new();
        let router = build_router(Registry::new(), live.clone(), None);
        // Empty engine state before the first evaluation.
        let Some(HttpRoute::Response(resp)) = router(&get("/alerts")) else {
            panic!("no /alerts route");
        };
        let doc = parse_json(&resp.body).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(0));
        // Publish an evaluation: /alerts and the /healthz summary update.
        live.record_alerts(
            "{\"tick\":3,\"pending\":1,\"firing\":2,\"alerts\":[],\"resolved\":[]}".into(),
            1,
            2,
            1,
        );
        let Some(HttpRoute::Response(resp)) = router(&get("/alerts")) else {
            panic!("no /alerts route");
        };
        assert!(resp.body.contains("\"firing\":2"), "{}", resp.body);
        let Some(HttpRoute::Response(health)) = router(&get("/healthz")) else {
            panic!("no /healthz route");
        };
        let doc = parse_json(&health.body).unwrap();
        let alerts = doc.get("alerts").unwrap();
        assert_eq!(alerts.get("pending").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(alerts.get("firing").and_then(|v| v.as_u64()), Some(2));
        // The index advertises /alerts; follow mode upgrades to SSE.
        let Some(HttpRoute::Response(index)) = router(&get("/")) else {
            panic!("no / route");
        };
        assert!(index.body.contains("/alerts"));
        let mut req = get("/alerts");
        req.query = "follow=1".into();
        assert!(matches!(router(&req), Some(HttpRoute::EventStream(_))));
    }

    #[test]
    fn alerts_follow_wakes_only_on_transitions() {
        let live = LiveStatus::new();
        let follow = AlertsFollow(live.clone());
        assert!(follow.next_after(0).is_none(), "no transition yet");
        // A transition-free evaluation refreshes the doc but not the epoch.
        live.record_alerts("{\"pending\":0,\"firing\":0}".into(), 0, 0, 0);
        assert!(follow.next_after(0).is_none());
        // A transition bumps the epoch and delivers the fresh document.
        live.record_alerts("{\"pending\":1,\"firing\":0}".into(), 1, 0, 1);
        let (cursor, payload) = follow.next_after(0).unwrap();
        assert_eq!(cursor, 1);
        assert!(payload.contains("\"pending\":1"));
        assert!(follow.next_after(cursor).is_none(), "epoch already seen");
        // Two more transition ticks: a slow follower skips to freshest.
        live.record_alerts("{\"pending\":0,\"firing\":1}".into(), 0, 1, 2);
        live.record_alerts("{\"pending\":0,\"firing\":0}".into(), 0, 0, 1);
        let (cursor, payload) = follow.next_after(cursor).unwrap();
        assert_eq!(cursor, 3);
        assert!(payload.contains("\"firing\":0"));
    }

    #[test]
    fn shard_for_reflects_live_state() {
        let registry = Registry::new();
        registry.counter("netqos_monitor_ticks_total").inc();
        let live = LiveStatus::new();
        live.record_tick(unix_now_ns(), "{\"ticks\":1,\"paths\":[]}".into());
        live.record_alerts(
            "{\"tick\":1,\"pending\":0,\"firing\":1,\"alerts\":[],\"resolved\":[]}".into(),
            0,
            1,
            1,
        );
        let shard = shard_for("subnet-a", registry, live.clone());
        assert_eq!(shard.name(), "subnet-a");
        let fed = netqos_telemetry::ShardRegistry::new();
        fed.register(shard).unwrap();
        let text = fed.render_merged_prometheus();
        assert!(
            text.contains("netqos_monitor_ticks_total{shard=\"subnet-a\"} 1"),
            "{text}"
        );
        let health = fed.healthz_response();
        assert_eq!(health.status, 200, "{}", health.body);
        let snap = fed.snapshot_response();
        let doc = parse_json(&snap.body).unwrap();
        let shards = doc.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            shards[0]
                .get("snapshot")
                .and_then(|s| s.get("ticks"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        // The alerts hook feeds the merged federation view.
        let alerts = fed.alerts_response();
        let doc = parse_json(&alerts.body).unwrap();
        assert_eq!(doc.get("firing").and_then(|v| v.as_u64()), Some(1));
    }
}
