//! Live export plane: the status shared between the tick loop and the
//! HTTP endpoints.
//!
//! [`LiveStatus`] is the bridge between the single-threaded
//! [`MonitoringService`](crate::service::MonitoringService) and the
//! telemetry crate's [`HttpServer`](netqos_telemetry::HttpServer), whose
//! handlers run on connection threads: every tick publishes its outcome
//! (wall-clock instant, a pre-rendered JSON digest of path bandwidths
//! and baselines) into atomics and a mutex-guarded string, and the
//! router built by [`build_router`] reads them without ever touching the
//! service. Three endpoints:
//!
//! * `GET /metrics` — Prometheus text exposition of the shared registry;
//! * `GET /healthz` — tick-loop liveness: age of the last tick against a
//!   staleness budget (`503` when stale, `200` otherwise);
//! * `GET /snapshot` — the latest tick digest (paths, baselines, flight
//!   recorder and sampler state) as JSON.

use netqos_telemetry::{HttpResponse, Registry, Router};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Nanoseconds since the Unix epoch, saturating (never panics even on a
/// pre-1970 clock).
pub fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Default staleness budget for `/healthz`: a tick loop quiet for longer
/// than this is reported unhealthy (unless it finished cleanly).
pub const DEFAULT_STALE_AFTER_NS: u64 = 2_000_000_000;

/// Tick-loop status shared with HTTP handler threads.
pub struct LiveStatus {
    started_unix_ns: u64,
    stale_after_ns: AtomicU64,
    last_tick_unix_ns: AtomicU64,
    ticks: AtomicU64,
    finished: AtomicBool,
    snapshot_json: Mutex<String>,
}

impl LiveStatus {
    /// A fresh status anchored at the current wall clock.
    pub fn new() -> Arc<Self> {
        Arc::new(LiveStatus {
            started_unix_ns: unix_now_ns(),
            stale_after_ns: AtomicU64::new(DEFAULT_STALE_AFTER_NS),
            last_tick_unix_ns: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            snapshot_json: Mutex::new(String::from("{\"ticks\":0,\"paths\":[]}")),
        })
    }

    /// Adjusts the `/healthz` staleness budget (e.g. to a multiple of
    /// the loop's wall-clock pacing). Zero means "never stale".
    pub fn set_stale_after_ns(&self, ns: u64) {
        self.stale_after_ns.store(ns, Ordering::Relaxed);
    }

    /// Publishes one tick's outcome.
    pub fn record_tick(&self, unix_ns: u64, snapshot_json: String) {
        self.last_tick_unix_ns.store(unix_ns, Ordering::Relaxed);
        self.ticks.fetch_add(1, Ordering::Relaxed);
        *self.snapshot_json.lock() = snapshot_json;
    }

    /// Marks the run as cleanly finished: `/healthz` stays `200` even
    /// though no further ticks will arrive.
    pub fn mark_finished(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }

    /// Ticks published so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// The `/healthz` response as of `now_unix_ns`.
    pub fn healthz(&self, now_unix_ns: u64) -> HttpResponse {
        let ticks = self.ticks();
        let last = self.last_tick_unix_ns.load(Ordering::Relaxed);
        let reference = if ticks == 0 {
            self.started_unix_ns
        } else {
            last
        };
        let age_ns = now_unix_ns.saturating_sub(reference);
        let budget = self.stale_after_ns.load(Ordering::Relaxed);
        let finished = self.finished.load(Ordering::Relaxed);
        let status = if finished {
            "finished"
        } else if budget > 0 && age_ns > budget {
            "stale"
        } else if ticks == 0 {
            "starting"
        } else {
            "ok"
        };
        let code = if status == "stale" { 503 } else { 200 };
        let body = format!(
            "{{\"status\":\"{status}\",\"ticks\":{ticks},\
             \"last_tick_age_ms\":{},\"stale_after_ms\":{}}}\n",
            age_ns / 1_000_000,
            budget / 1_000_000,
        );
        HttpResponse::json(code, body)
    }

    /// The `/snapshot` response: the latest published tick digest.
    pub fn snapshot_response(&self) -> HttpResponse {
        let mut body = self.snapshot_json.lock().clone();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        HttpResponse::json(200, body)
    }
}

/// Builds the endpoint router for [`HttpServer::serve`]
/// (`netqos_telemetry::HttpServer`): `/metrics`, `/healthz`,
/// `/snapshot`, and `/` (a tiny index). Unknown paths return `None`
/// (404).
pub fn build_router(registry: Arc<Registry>, live: Arc<LiveStatus>) -> Arc<Router> {
    Arc::new(move |path: &str| match path {
        "/metrics" => Some(HttpResponse::prometheus(registry.render_prometheus())),
        "/healthz" => Some(live.healthz(unix_now_ns())),
        "/snapshot" => Some(live.snapshot_response()),
        "/" => Some(HttpResponse::json(
            200,
            "{\"endpoints\":[\"/metrics\",\"/healthz\",\"/snapshot\"]}\n".into(),
        )),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netqos_telemetry::parse_json;

    #[test]
    fn healthz_lifecycle() {
        let live = LiveStatus::new();
        let t0 = live.started_unix_ns;
        // Before any tick, within budget: starting.
        let r = live.healthz(t0 + 1_000_000);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"starting\""));
        // A tick arrives: ok.
        live.record_tick(t0 + 5_000_000, "{\"ticks\":1}".into());
        let r = live.healthz(t0 + 6_000_000);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"ok\""));
        // Budget exceeded: stale, 503.
        let r = live.healthz(t0 + 5_000_000 + DEFAULT_STALE_AFTER_NS + 1);
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"status\":\"stale\""));
        // A clean finish overrides staleness.
        live.mark_finished();
        let r = live.healthz(t0 + 60 * DEFAULT_STALE_AFTER_NS);
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"finished\""));
    }

    #[test]
    fn router_serves_all_endpoints() {
        let registry = Registry::new();
        registry.counter("netqos_monitor_ticks_total").add(3);
        let live = LiveStatus::new();
        live.record_tick(unix_now_ns(), "{\"ticks\":1,\"paths\":[]}".into());
        let router = build_router(registry, live);
        let metrics = router("/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("netqos_monitor_ticks_total 3"));
        assert_eq!(router("/healthz").unwrap().status, 200);
        let snap = router("/snapshot").unwrap();
        assert!(parse_json(&snap.body).is_ok(), "snapshot must be JSON");
        assert!(router("/nope").is_none());
    }
}
