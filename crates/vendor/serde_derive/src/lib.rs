//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never drives an actual serializer (the one "round-trip" test formats
//! through `Debug`). This proc-macro therefore only has to *accept* the
//! derive syntax — including inert `#[serde(...)]` field attributes — and
//! may expand to nothing. If a future PR adds a real serializer, replace
//! this crate with a genuine implementation or a vendored serde.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
