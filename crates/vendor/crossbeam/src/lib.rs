//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s unbounded MPMC channel with the API
//! subset the workspace uses: cloneable senders *and* receivers,
//! `send`/`recv`/`try_recv`/`recv_timeout`, a `len()` probe (used by the
//! telemetry queue-depth gauge), and disconnection semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error: the message could not be delivered because all receivers
    /// are gone. Carries the message back, like crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty; senders still connected.
        Empty,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    /// Error for blocking receive: every sender dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for receive with timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived in time.
        Timeout,
        /// Queue empty and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when all receivers are dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                if let Ok(v) = rx.recv() {
                    got.push(v);
                }
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
