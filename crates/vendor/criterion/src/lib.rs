//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `netqos-bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, `Bencher::{iter, iter_batched}`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical analysis. Each
//! benchmark prints one line: mean ns/iter (and throughput when set).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized; the stand-in sizes batches itself, so
/// the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units processed per iteration, reported alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A benchmark identifier of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The printable identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    /// Mean nanoseconds per iteration from the last `iter*` call.
    ns_per_iter: f64,
    /// Total wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            ns_per_iter: 0.0,
            budget,
        }
    }

    /// Times `routine` in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how long does one call take?
        let cal_start = Instant::now();
        black_box(routine());
        let one = cal_start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / one.as_nanos()).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is inside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let cal_input = setup();
        let cal_start = Instant::now();
        black_box(routine(cal_input));
        let one = cal_start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut done = 0u64;
        while done < iters {
            let batch = (iters - done).min(1024);
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += start.elapsed();
            done += batch;
        }
        self.ns_per_iter = total.as_nanos() as f64 / done as f64;
    }
}

fn report(group: Option<&str>, id: &str, ns: f64, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            // bytes per second = n / (ns * 1e-9)
            format!("  {:.1} MiB/s", n as f64 / (ns * 1e-9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.2} Melem/s", n as f64 / (ns * 1e-9) / 1e6)
        }
        None => String::new(),
    };
    println!("{full:<56} {ns:>14.1} ns/iter{rate}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(None, &id.into_id(), b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            budget,
            throughput: None,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a wall-clock
    /// budget rather than a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Reports units processed per iteration with the timing line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(
            Some(&self.name),
            &id.into_id(),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(Some(&self.name), &id.id, b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter(|| black_box(2u64).wrapping_mul(3));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.ns_per_iter > 0.0);
    }
}
