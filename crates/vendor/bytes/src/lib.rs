//! Offline stand-in for the `bytes` crate.
//!
//! The container image cannot reach a crates.io registry, so the workspace
//! vendors the narrow API slice it actually uses: [`Bytes`], an immutable,
//! cheaply-cloneable byte buffer. Static slices are kept as `&'static`
//! references (no allocation); owned buffers are shared through an `Arc`
//! so cloning a payload never copies the bytes.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from static storage (`Bytes::from_static`).
    Static(&'static [u8]),
    /// Shared ownership of a heap buffer.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Wraps a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::Static(bytes)
    }

    /// The number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(a) => a,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a new buffer over the given subrange.
    ///
    /// Unlike upstream `bytes` this copies the range (the workspace only
    /// slices small payloads); panics when the range is out of bounds,
    /// matching upstream behaviour.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        match self {
            Bytes::Static(s) => Bytes::Static(&s[start..end]),
            Bytes::Shared(a) => Bytes::Shared(Arc::from(&a[start..end])),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::Static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_compares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..2], &[1, 2]);
    }

    #[test]
    fn static_and_slice() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.slice(1..4).as_slice(), b"ell");
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), b"hello".to_vec());
    }
}
