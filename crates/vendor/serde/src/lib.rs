//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros from the sibling `serde_derive`
//! shim. The workspace only *derives* the traits (the derives are kept so
//! type definitions stay source-compatible with real serde); nothing
//! consumes them, so no serializer machinery is provided.

pub use serde_derive::{Deserialize, Serialize};

/// Marker module mirroring serde's layout for the rare `serde::ser::...`
/// path mention.
pub mod ser {}

/// Marker module mirroring serde's layout.
pub mod de {}
